"""Top-level cycle-driven simulator.

Phases run in reverse pipeline order each cycle so a value never flows
through two stages in one cycle:

1. apply pending mispredict squashes (effective one cycle after the
   branch resolved at exec),
2. commit (per-thread, in order),
3. execute (branch resolution, D-cache access, optimistic squash),
4. issue (policy selection, wakeup),
5. rename + dispatch into the instruction queues,
6. decode,
7. fetch (partitioning + thread choice),
8. statistics sampling.

The conventional-superscalar baseline is the same machine with
``smt_pipeline=False`` (one register-read stage, 6-cycle mispredict
penalty) and one thread.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import SMTConfig
from repro.core.execute import ExecuteUnit
from repro.core.fetch import FetchUnit
from repro.core.issue import IssueUnit
from repro.core.queues import InstructionQueue
from repro.core.rename import Renamer
from repro.core.retire import RetireUnit
from repro.core.stats import Stats
from repro.core.thread import ThreadContext
from repro.core.uop import (
    S_DECODED,
    S_DONE,
    S_FETCHED,
    S_ISSUED,
    S_QUEUED,
    S_SQUASHED,
    Uop,
)
from repro.branch.predictor import BranchPredictor
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy


@dataclass
class CacheStats:
    accesses: int
    misses: int
    miss_rate: float
    mpki: float


class SimulationAborted(RuntimeError):
    """Raised by an abort hook to stop a run before it completes.

    Picklable, so it propagates cleanly out of pool/supervisor workers
    (the experiment supervisor converts it into a ``timeout`` failure
    record rather than losing the whole campaign).
    """

    def __init__(self, reason: str, cycle: int = 0):
        super().__init__(reason)
        self.reason = reason
        self.cycle = cycle

    def __reduce__(self):
        return (SimulationAborted, (self.reason, self.cycle))


class Watchdog:
    """Wall-clock and cycle-budget guard, installable as a simulator's
    abort hook.

    The hook is polled every :data:`ABORT_CHECK_INTERVAL` cycles from
    :meth:`Simulator.step` (and once per interleave round during
    functional warmup), so a pathological configuration aborts with a
    structured :class:`SimulationAborted` instead of hanging a campaign.
    Either guard may be ``None`` (disabled).
    """

    __slots__ = ("deadline", "wall_seconds", "max_cycles")

    def __init__(self, wall_seconds: Optional[float] = None,
                 max_cycles: Optional[int] = None):
        self.wall_seconds = wall_seconds
        self.deadline = (
            time.monotonic() + wall_seconds if wall_seconds else None
        )
        self.max_cycles = max_cycles

    def attach(self, sim: "Simulator") -> None:
        sim.abort_hook = self

    def __call__(self, sim: "Simulator") -> None:
        if self.max_cycles is not None and sim.cycle >= self.max_cycles:
            raise SimulationAborted(
                f"cycle budget exceeded ({sim.cycle} >= "
                f"{self.max_cycles} cycles)", sim.cycle,
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise SimulationAborted(
                f"wall-clock timeout after {self.wall_seconds}s "
                f"(cycle {sim.cycle})", sim.cycle,
            )


#: How often (in cycles) ``Simulator.step`` polls the abort hook.
ABORT_CHECK_INTERVAL = 256


def _fast_step_disabled() -> bool:
    """Environment kill switch: REPRO_NO_FAST_STEP=1 forces the
    reference step loop everywhere (used by the equivalence tests and
    as an escape hatch while debugging)."""
    from repro.envutil import env_flag
    return env_flag("REPRO_NO_FAST_STEP")


class ListenerChain:
    """Fan-out dispatcher for commit/squash listeners.

    Several observers (tracer, telemetry, metrics, sanitizer) may need
    the same event stream; a chain calls each registered listener in
    attach order.  Managed through ``Simulator.add_commit_listener`` /
    ``remove_commit_listener`` (and the squash equivalents), which keep
    the single-listener fast path — a bare callable — until a second
    observer actually attaches.
    """

    __slots__ = ("listeners",)

    def __init__(self, listeners):
        self.listeners = list(listeners)

    def __call__(self, uop) -> None:
        for listener in self.listeners:
            listener(uop)


def _chain_add(current, listener):
    """Compose ``listener`` onto ``current`` (None, callable, or chain)."""
    if current is None:
        return listener
    if isinstance(current, ListenerChain):
        current.listeners.append(listener)
        return current
    return ListenerChain([current, listener])


def _chain_remove(current, listener):
    """Detach ``listener``, collapsing one-element chains back to the
    bare callable (so round trips preserve listener identity).

    Matches by equality, not identity: observers register bound methods,
    and each ``obj.method`` access creates a fresh (but ``==``) object.
    """
    if current is listener or current == listener:
        return None
    if isinstance(current, ListenerChain):
        try:
            current.listeners.remove(listener)
        except ValueError:
            return current
        if len(current.listeners) == 1:
            return current.listeners[0]
        if not current.listeners:
            return None
    return current


@dataclass
class SimResult:
    """Everything a run produces, in the units the paper reports."""

    config_name: str
    n_threads: int
    cycles: int
    committed: int
    ipc: float
    useful_fetch_per_cycle: float
    fetch_per_cycle: float
    wrong_path_fetched_frac: float
    wrong_path_issued_frac: float
    squashed_optimistic_frac: float
    int_iq_full_frac: float
    fp_iq_full_frac: float
    avg_queue_population: float
    out_of_registers_frac: float
    branch_mispredict_rate: float
    jump_mispredict_rate: float
    fetch_active_frac: float = 0.0     # cycles with >= 1 instruction fetched
    icache_miss_stall_events: int = 0  # fetch stalls started on I-cache misses
    icache: Optional[CacheStats] = None
    dcache: Optional[CacheStats] = None
    l2: Optional[CacheStats] = None
    l3: Optional[CacheStats] = None
    committed_per_thread: Dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.config_name}: T={self.n_threads} IPC={self.ipc:.2f} "
            f"fetch/cyc={self.useful_fetch_per_cycle:.2f} "
            f"wpf={self.wrong_path_fetched_frac:.1%} "
            f"iqfull(int/fp)={self.int_iq_full_frac:.0%}/{self.fp_iq_full_frac:.0%}"
        )


class Simulator:
    """One machine configuration running one multiprogrammed workload."""

    def __init__(self, config: SMTConfig, programs: List[Program]):
        if len(programs) != config.n_threads:
            raise ValueError(
                f"config has {config.n_threads} contexts but "
                f"{len(programs)} programs were supplied"
            )
        self.cfg = config
        self.threads = [
            ThreadContext(tid, prog) for tid, prog in enumerate(programs)
        ]
        self.predictor = BranchPredictor(
            config.n_threads,
            btb_entries=config.btb_entries,
            btb_assoc=config.btb_assoc,
            pht_entries=config.pht_entries,
            history_bits=config.history_bits,
            ras_depth=config.ras_depth,
            tag_thread=config.btb_thread_tags,
            shared_history=config.shared_history,
            perfect=config.perfect_branch_prediction,
        )
        self.hierarchy = MemoryHierarchy(
            infinite_bandwidth=config.infinite_memory_bandwidth
        )
        self.renamer = Renamer(config.n_threads, config.physical_registers)
        self.int_queue = InstructionQueue(
            "int", config.iq_capacity, config.iq_size
        )
        self.fp_queue = InstructionQueue(
            "fp", config.iq_capacity, config.iq_size
        )
        # Deques: decode and rename consume from the front every cycle,
        # and list.pop(0) is O(n) per uop.
        self.fetch_buffer: Deque[Uop] = deque()
        self.decode_buffer: Deque[Uop] = deque()
        self.pending_exec: Dict[int, List[Uop]] = {}
        self.pending_squashes: List[Tuple[Uop, int]] = []
        self.pending_stores: List[List[Uop]] = [[] for _ in range(config.n_threads)]
        self.pending_branches: List[List[Uop]] = [[] for _ in range(config.n_threads)]
        #: Optional hook called with every committing uop (tracing,
        #: verification against the architectural stream).  Prefer
        #: :meth:`add_commit_listener` so observers compose.
        self.commit_listener = None
        #: Optional hook called with every squashed uop (tracing).
        self.squash_listener = None
        #: Optional attached TelemetrySampler (interval time series).
        self.telemetry = None
        #: Optional attached PipelineSanitizer (per-cycle invariants).
        self.sanitizer = None
        #: Optional abort hook (e.g. a :class:`Watchdog`), polled every
        #: ABORT_CHECK_INTERVAL cycles with the simulator; raises
        #: :class:`SimulationAborted` to stop a runaway run.
        self.abort_hook = None
        #: When False, :meth:`run_cycles` always uses the reference
        #: :meth:`step` loop (also forced by REPRO_NO_FAST_STEP=1).
        self.use_fast_step = True
        self.stats = Stats()
        self.cycle = 0
        self.measuring = False
        # Units last: an adaptive fetch policy binds commit/squash
        # listeners at construction, so the observer slots and clock
        # above must already exist.
        self.fetch_unit = FetchUnit(self)
        self.issue_unit = IssueUnit(self)
        self.execute_unit = ExecuteUnit(self)
        self.retire_unit = RetireUnit(self)

    # ------------------------------------------------------------------
    @property
    def policy_engine(self):
        """The fetch unit's :class:`~repro.policy.base.FetchPolicy`
        object (static ranker or stateful meta-policy)."""
        return self.fetch_unit.policy

    # ==================================================================
    # Observer registration.  Several observers can watch the same run:
    # listeners registered here are chained (fan-out in attach order)
    # instead of overwriting each other.  Direct assignment to
    # ``commit_listener`` / ``squash_listener`` still works and replaces
    # the whole chain (single-observer code and tests rely on it).
    # ==================================================================
    def add_commit_listener(self, listener) -> None:
        self.commit_listener = _chain_add(self.commit_listener, listener)

    def remove_commit_listener(self, listener) -> None:
        self.commit_listener = _chain_remove(self.commit_listener, listener)

    def add_squash_listener(self, listener) -> None:
        self.squash_listener = _chain_add(self.squash_listener, listener)

    def remove_squash_listener(self, listener) -> None:
        self.squash_listener = _chain_remove(self.squash_listener, listener)

    # ==================================================================
    # Scheduling helpers used by the pipeline units.
    # ==================================================================
    def schedule_exec(self, uop: Uop) -> None:
        self.pending_exec.setdefault(uop.exec_c, []).append(uop)

    def in_flight_issued(self, cycle: int) -> List[Uop]:
        """Uops issued but not yet at their execute stage.

        The scan is bounded to the issue-to-execute window (a uop issued
        at ``t`` executes at ``t + exec_offset``), so only that many
        event lists are ever touched.
        """
        out: List[Uop] = []
        pending_get = self.pending_exec.get
        for c in range(cycle, cycle + self.cfg.exec_offset + 1):
            uops = pending_get(c)
            if not uops:
                continue
            for uop in uops:
                if uop.state == S_ISSUED and uop.exec_c == c:
                    out.append(uop)
        return out

    def schedule_mispredict_squash(self, uop: Uop, effective_cycle: int) -> None:
        self.pending_squashes.append((uop, effective_cycle))

    def prune_pending_branch(self, uop: Uop) -> None:
        branches = self.pending_branches[uop.tid]
        if uop in branches:
            branches.remove(uop)

    # ==================================================================
    # Squash.
    # ==================================================================
    def _apply_squashes(self, cycle: int) -> None:
        if not self.pending_squashes:
            return
        remaining = []
        for branch, effective in self.pending_squashes:
            if effective <= cycle:
                self._squash_after(branch, cycle)
            else:
                remaining.append((branch, effective))
        # In place: the fast-step loop holds a binding to this list.
        self.pending_squashes[:] = remaining

    def _squash_after(self, branch: Uop, cycle: int) -> None:
        """Squash everything younger than ``branch`` in its thread and
        redirect fetch to the branch's actual target."""
        thread = self.threads[branch.tid]
        # Repair speculative predictor state (history register, return
        # stack) now that the last wrong-path fetch has happened.
        self.predictor.recover(
            branch.tid, branch.pc, branch.instr, branch.prediction,
            bool(branch.actual_taken),
        )
        rob = thread.rob
        squashed_any = False
        while rob and rob[-1].seq > branch.seq:
            self._undo(rob.pop())
            squashed_any = True
        if squashed_any:
            # All four containers are filtered *in place* so that long-lived
            # bindings (the fast-step loop's locals) stay valid.
            survivors = [u for u in self.fetch_buffer if u.state != S_SQUASHED]
            self.fetch_buffer.clear()
            self.fetch_buffer.extend(survivors)
            survivors = [u for u in self.decode_buffer if u.state != S_SQUASHED]
            self.decode_buffer.clear()
            self.decode_buffer.extend(survivors)
            stores = self.pending_stores[branch.tid]
            if stores:
                stores[:] = [u for u in stores if u.state != S_SQUASHED]
            branches = self.pending_branches[branch.tid]
            if branches:
                branches[:] = [u for u in branches if u.state != S_SQUASHED]
        thread.on_correct_path = True
        thread.fetch_pc = branch.actual_target
        thread.fetch_blocked_until = cycle + (1 if self.cfg.itag else 0)
        thread.pending_ifill_line = None  # any delivered block is moot now

    def _undo(self, uop: Uop) -> None:
        """Reverse one squashed uop (called youngest-first)."""
        thread = self.threads[uop.tid]
        state = uop.state
        if state in (S_FETCHED, S_DECODED, S_QUEUED):
            thread.unissued_count -= 1
        if uop.is_control and state != S_DONE:
            thread.unresolved_branches -= 1
        if state in (S_QUEUED, S_ISSUED, S_DONE):
            queue = self.fp_queue if uop.is_fp_op else self.int_queue
            queue.remove(uop)
            self.renamer.retract_wakeup(uop)
            self.renamer.rollback(uop)
        uop.state = S_SQUASHED
        if self.squash_listener is not None:
            self.squash_listener(uop)

    # ==================================================================
    # Rename / dispatch and decode phases.
    # ==================================================================
    def _rename_cycle(self, cycle: int) -> None:
        buffer = self.decode_buffer
        rename_width = self.cfg.rename_width
        rename = self.renamer.rename
        renamed = 0
        blocked_int = blocked_fp = blocked_regs = False
        while buffer and renamed < rename_width:
            uop = buffer[0]
            if uop.state == S_SQUASHED:
                buffer.popleft()
                continue
            if uop.decode_c >= cycle:
                break
            queue = self.fp_queue if uop.is_fp_op else self.int_queue
            if queue.full:
                if uop.is_fp_op:
                    blocked_fp = True
                else:
                    blocked_int = True
                break
            if not rename(uop):
                blocked_regs = True
                break
            buffer.popleft()
            uop.dispatch_c = cycle
            uop.state = S_QUEUED
            queue.add(uop)
            if uop.is_store:
                self.pending_stores[uop.tid].append(uop)
            if uop.is_control:
                self.pending_branches[uop.tid].append(uop)
            renamed += 1
        if self.measuring:
            if blocked_int:
                self.stats.int_iq_full_cycles += 1
            if blocked_fp:
                self.stats.fp_iq_full_cycles += 1
            if blocked_regs:
                self.stats.out_of_registers_cycles += 1

    def _decode_cycle(self, cycle: int) -> None:
        buffer = self.fetch_buffer
        decode_buffer = self.decode_buffer
        decode_width = self.cfg.decode_width
        decoded = 0
        while buffer and decoded < decode_width:
            uop = buffer[0]
            if uop.state == S_SQUASHED:
                buffer.popleft()
                continue
            if uop.fetch_c >= cycle:
                break
            if len(decode_buffer) >= decode_width:
                break
            buffer.popleft()
            uop.decode_c = cycle
            uop.state = S_DECODED
            decode_buffer.append(uop)
            decoded += 1

    # ==================================================================
    # The cycle loop.
    # ==================================================================
    def step(self) -> None:
        cycle = self.cycle
        int_queue = self.int_queue
        fp_queue = self.fp_queue
        self._apply_squashes(cycle)
        self.retire_unit.commit_cycle(cycle)
        self.execute_unit.execute_cycle(cycle)
        int_queue.release_freed()
        fp_queue.release_freed()
        self.issue_unit.issue_cycle(cycle)
        self._rename_cycle(cycle)
        self._decode_cycle(cycle)
        self.fetch_unit.fetch_cycle(cycle)
        if self.measuring:
            stats = self.stats
            stats.cycles += 1
            stats.queue_population_sum += (
                len(int_queue.entries) + len(fp_queue.entries)
            )
        if cycle & 1023 == 0 and self.pending_exec:
            self._gc_pending_exec()
        abort_hook = self.abort_hook
        if abort_hook is not None and cycle & (ABORT_CHECK_INTERVAL - 1) == 0:
            abort_hook(self)
        telemetry = self.telemetry
        if telemetry is not None and cycle >= telemetry.next_sample_cycle:
            telemetry.sample(cycle)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.check_cycle(cycle)
        self.cycle += 1

    # ------------------------------------------------------------------
    def run_cycles(self, n: int) -> None:
        """Advance the machine by ``n`` cycles.

        Dispatches to the specialized fast-step loop
        (:mod:`repro.core.faststep`) when no per-cycle observer needs the
        reference loop's cycle-granular hooks: telemetry sampling and the
        sanitizer both inspect intermediate state every cycle, so their
        presence forces the reference path.  Commit/squash listeners,
        abort hooks, and adaptive fetch policies are all dispatched
        faithfully inside the fast loop.  The two paths are bit-identical
        (enforced by ``tests/core/test_faststep_equivalence.py``).
        """
        if n <= 0:
            return
        if (self.use_fast_step
                and self.telemetry is None
                and self.sanitizer is None
                and not _fast_step_disabled()):
            from repro.core.faststep import run_cycles_fast
            run_cycles_fast(self, n)
        else:
            step = self.step
            for _ in range(n):
                step()

    # ------------------------------------------------------------------
    def functional_warmup(self, instructions_per_thread: int = 60000,
                          chunk: int = 500) -> None:
        """Timing-free warmup: run each thread's emulator forward,
        training caches, TLBs, and the branch predictor in program order.

        The paper measures 300M-instruction runs where caches and
        predictors are at steady state; cycle-accurate simulation in
        Python cannot affordably reach that point, so (as is standard in
        architecture simulators) tag/predictor state is warmed
        functionally and the timed simulation continues from the warmed
        architectural state.  Threads are interleaved in chunks so the
        shared caches see a mixed access stream.
        """
        if self.cycle != 0:
            raise RuntimeError("functional warmup must precede timed simulation")
        # Steady-state L3 contents: after hundreds of millions of
        # instructions every thread's text and data image has long been
        # resident in the 2MB L3; preload it so first-touches in the
        # measured window pay an L3 hit, not a memory round trip.
        for thread in self.threads:
            program = thread.program
            for pc in range(program.text_start, program.text_end, 64):
                self.hierarchy.l3.warm_touch(thread.phys_addr(pc))
            data_start = 0x0100_0000  # DATA_BASE
            for addr in range(data_start, data_start + program.data.size, 64):
                self.hierarchy.l3.warm_touch(thread.phys_addr(addr))
        remaining = [instructions_per_thread] * len(self.threads)
        while any(remaining):
            abort_hook = self.abort_hook
            if abort_hook is not None:
                abort_hook(self)
            for thread in self.threads:
                budget = min(chunk, remaining[thread.tid])
                remaining[thread.tid] -= budget
                for _ in range(budget):
                    record = thread.oracle_pop()
                    instr = record.instr
                    self.hierarchy.warm_access(
                        thread.tid, thread.phys_addr(record.pc), True
                    )
                    if record.eff_addr is not None:
                        self.hierarchy.warm_access(
                            thread.tid, thread.phys_addr(record.eff_addr), False
                        )
                        thread.last_data_addr = record.eff_addr
                    if instr.is_control:
                        self.predictor.warm(
                            thread.tid, record.pc, instr, record.taken,
                            record.next_pc,
                        )
                thread.fetch_pc = thread.emulator.pc
        self.hierarchy.reset_stats()

    # ------------------------------------------------------------------
    def run(
        self,
        warmup_cycles: int = 3000,
        measure_cycles: int = 20000,
        functional_warmup_instructions: int = 60000,
    ) -> SimResult:
        """Warm up (functionally, then a short timed ramp), then measure."""
        if functional_warmup_instructions and self.cycle == 0:
            self.functional_warmup(functional_warmup_instructions)
        self.measuring = False
        self.run_cycles(warmup_cycles)
        self.measuring = True
        self.stats = Stats()
        self.hierarchy.reset_stats()
        self.run_cycles(measure_cycles)
        self.measuring = False
        return self.result()

    # ------------------------------------------------------------------
    def result(self) -> SimResult:
        s = self.stats

        def cache_stats(cache) -> CacheStats:
            return CacheStats(
                accesses=cache.accesses,
                misses=cache.misses,
                miss_rate=cache.miss_rate,
                mpki=s.mpki(cache.misses),
            )

        return SimResult(
            config_name=self.cfg.scheme_name,
            n_threads=self.cfg.n_threads,
            cycles=s.cycles,
            committed=s.committed,
            ipc=s.ipc,
            useful_fetch_per_cycle=s.useful_fetch_per_cycle,
            fetch_per_cycle=s.fetch_per_cycle,
            wrong_path_fetched_frac=s.wrong_path_fetched_frac,
            wrong_path_issued_frac=s.wrong_path_issued_frac,
            squashed_optimistic_frac=s.squashed_optimistic_frac,
            int_iq_full_frac=s.int_iq_full_frac,
            fp_iq_full_frac=s.fp_iq_full_frac,
            avg_queue_population=s.avg_queue_population,
            out_of_registers_frac=s.out_of_registers_frac,
            branch_mispredict_rate=s.branch_mispredict_rate,
            jump_mispredict_rate=s.jump_mispredict_rate,
            fetch_active_frac=s.fetch_active_frac,
            icache_miss_stall_events=s.icache_miss_stall_events,
            icache=cache_stats(self.hierarchy.icache),
            dcache=cache_stats(self.hierarchy.dcache),
            l2=cache_stats(self.hierarchy.l2),
            l3=cache_stats(self.hierarchy.l3),
            committed_per_thread=dict(s.committed_per_thread),
        )

    # ------------------------------------------------------------------
    def _gc_pending_exec(self) -> None:
        """Drop exec-event lists strictly in the past (bounded memory)."""
        stale = [c for c in self.pending_exec if c < self.cycle]
        for c in stale:
            del self.pending_exec[c]
