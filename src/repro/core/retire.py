"""Per-thread in-order retirement (Section 2).

Instruction retirement is per-thread: each context retires its own
instructions in program order once they have executed and written back.
Retirement frees the physical register previously mapped to the
instruction's destination.  The commit bandwidth is shared, rotated
round-robin across threads each cycle so no context starves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.uop import S_COMMITTED, S_DONE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


class RetireUnit:
    """In-order, per-thread commit."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    def commit_cycle(self, cycle: int) -> None:
        sim = self.sim
        budget = sim.cfg.commit_width
        n = sim.cfg.n_threads
        start = cycle % n
        for i in range(n):
            if budget <= 0:
                break
            thread = sim.threads[(start + i) % n]
            rob = thread.rob
            while budget > 0 and rob:
                uop = rob[0]
                if uop.state != S_DONE or uop.commit_ready_c > cycle:
                    break
                rob.popleft()
                uop.state = S_COMMITTED
                sim.renamer.commit(uop)
                budget -= 1
                if sim.commit_listener is not None:
                    sim.commit_listener(uop)
                if sim.measuring:
                    sim.stats.committed += 1
                    per_thread = sim.stats.committed_per_thread
                    per_thread[uop.tid] = per_thread.get(uop.tid, 0) + 1
