"""The dynamic instruction record (uop) that flows down the pipeline.

A uop is created at fetch and lives until it commits or is squashed.
Plain attributes + ``__slots__`` keep per-instruction overhead low — the
simulator creates hundreds of thousands of these per run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.branch.predictor import Prediction
from repro.isa.instructions import Instruction

# Pipeline states.
S_FETCHED = 0    # in the fetch buffer
S_DECODED = 1    # decoded, waiting for rename
S_QUEUED = 2     # renamed and in an instruction queue, waiting to issue
S_ISSUED = 3     # issued to a functional unit
S_DONE = 4       # executed; waiting to commit in order
S_COMMITTED = 5
S_SQUASHED = 6

STATE_NAMES = {
    S_FETCHED: "fetched",
    S_DECODED: "decoded",
    S_QUEUED: "queued",
    S_ISSUED: "issued",
    S_DONE: "done",
    S_COMMITTED: "committed",
    S_SQUASHED: "squashed",
}


class Uop:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "tid", "seq", "pc", "instr", "wrong_path",
        # oracle truth (None on wrong paths)
        "actual_taken", "actual_target", "eff_addr",
        # branch prediction state
        "prediction", "mispredicted",
        # renaming
        "dest_preg", "old_preg", "src_pregs", "dest_is_fp",
        # memory
        "mem_key", "dcache_hit",
        # timing
        "fetch_c", "decode_c", "dispatch_c", "issue_c", "exec_c",
        "complete_c", "commit_ready_c",
        # issue bookkeeping
        "state", "optimistic", "squash_count", "iq_freed",
        # cached static predicates (attribute lookups beat properties here)
        "is_load", "is_store", "is_control", "is_cond_branch", "is_fp_op",
        "latency",
    )

    def __init__(
        self,
        tid: int,
        seq: int,
        pc: int,
        instr: Instruction,
        wrong_path: bool,
        actual_taken: Optional[bool] = None,
        actual_target: Optional[int] = None,
        eff_addr: Optional[int] = None,
    ):
        self.tid = tid
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.wrong_path = wrong_path
        self.actual_taken = actual_taken
        self.actual_target = actual_target
        self.eff_addr = eff_addr
        self.prediction: Optional[Prediction] = None
        self.mispredicted = False
        self.dest_preg: Optional[int] = None
        self.old_preg: Optional[int] = None
        self.src_pregs: Tuple[Tuple[int, bool], ...] = ()
        self.dest_is_fp = False
        self.mem_key: Optional[int] = None
        self.dcache_hit: Optional[bool] = None
        self.fetch_c = -1
        self.decode_c = -1
        self.dispatch_c = -1
        self.issue_c = -1
        self.exec_c = -1
        self.complete_c = -1
        self.commit_ready_c = -1
        self.state = S_FETCHED
        self.optimistic = False
        self.squash_count = 0   # times returned to the queue (optimistic squash)
        self.iq_freed = False
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_control = instr.is_control
        self.is_cond_branch = instr.is_cond_branch
        self.is_fp_op = instr.is_fp
        self.latency = instr.latency

    def __repr__(self) -> str:
        wp = " WP" if self.wrong_path else ""
        return (
            f"Uop(t{self.tid} #{self.seq} pc={self.pc:#x} {self.instr!s}"
            f" {STATE_NAMES[self.state]}{wp})"
        )
