"""Specialized fast-step cycle loop.

:func:`run_cycles_fast` advances a :class:`~repro.core.simulator.Simulator`
by ``n`` cycles, producing **bit-identical** results to ``n`` calls of the
reference :meth:`Simulator.step` (enforced by
``tests/core/test_faststep_equivalence.py``).  It is a *transcription* of
the reference phases — same data structures, same event order, same
arithmetic — with the per-cycle interpretation overhead removed:

* every pipeline constant (widths, unit counts, queue capacities) and
  every hot container (buffers, queue entry lists, register-file arrays)
  is bound to a local once, outside the loop;
* the commit, execute-completion, issue, rename, and decode phases are
  inlined, eliminating several function calls *per instruction*;
* ``measuring`` statistics accumulate in local integers and flush to the
  ``Stats`` object once, in a ``finally`` block (so aborts flush too).

Rare or stateful paths — mispredict squash application, load/store
execution, branch resolution, I-tag filtering, fetch-policy ordering,
branch prediction — delegate to the reference implementations, which
keeps this module honest: it specializes control flow, it does not fork
semantics.

Because the loop holds direct references to the mutable containers, the
reference code paths it delegates to must mutate those containers **in
place** (``deque.clear``/``extend``, slice assignment) rather than
rebinding attributes; see ``Simulator._squash_after``,
``Simulator._apply_squashes``, and ``InstructionQueue.release_freed``.

Eligibility is decided by :meth:`Simulator.run_cycles`: telemetry and the
sanitizer need cycle-granular hooks the fast loop does not emit, so their
presence selects the reference loop.  Commit/squash listeners, abort
hooks (watchdogs), and adaptive fetch policies all work here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.thread import BLOCKED, _PAGE_MASK, _PAGE_SHIFT
from repro.core.uop import Uop
from repro.isa.program import TEXT_BASE
from repro.policy.static import Brcount, Icount, IcountBrcount, RoundRobin

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator

#: Readiness sentinel, mirrored from repro.core.rename.NEVER.
_NEVER = 1 << 60


def run_cycles_fast(sim: "Simulator", n: int) -> None:
    """Advance ``sim`` by ``n`` cycles on the specialized loop."""
    # ------------------------------------------------------------------
    # Per-config constants.
    # ------------------------------------------------------------------
    cfg = sim.cfg
    n_threads = cfg.n_threads
    fetch_width = cfg.fetch_width
    fetch_threads = cfg.fetch_threads
    fetch_per_thread = cfg.fetch_per_thread
    decode_width = cfg.decode_width
    rename_width = cfg.rename_width
    commit_width = cfg.commit_width
    iq_capacity = cfg.iq_capacity
    search_window = cfg.iq_size
    int_units = cfg.int_units
    ls_units = cfg.ls_units
    fp_units = cfg.fp_units
    infinite_fus = cfg.infinite_fus
    exec_offset = cfg.exec_offset
    itag = cfg.itag
    misfetch_penalty = cfg.misfetch_penalty
    optimistic_issue = cfg.optimistic_issue
    spec_full = cfg.speculation == "full"
    dis_mask = (1 << cfg.disambiguation_bits) - 1
    measuring = sim.measuring

    # ------------------------------------------------------------------
    # Hot containers and delegated callables (identity-stable).
    # ------------------------------------------------------------------
    threads = sim.threads
    fetch_buffer = sim.fetch_buffer
    decode_buffer = sim.decode_buffer
    fetch_pop = fetch_buffer.popleft
    fetch_append = fetch_buffer.append
    decode_pop = decode_buffer.popleft
    decode_append = decode_buffer.append
    int_queue = sim.int_queue
    fp_queue = sim.fp_queue
    int_entries = int_queue.entries
    fp_entries = fp_queue.entries
    pending_exec = sim.pending_exec
    pending_pop = pending_exec.pop
    pending_squashes = sim.pending_squashes
    pending_stores = sim.pending_stores
    pending_branches = sim.pending_branches
    apply_squashes = sim._apply_squashes
    renamer = sim.renamer
    int_file = renamer.int_file
    fp_file = renamer.fp_file
    int_ready = int_file.ready
    fp_ready = fp_file.ready
    int_producer = int_file.producer
    fp_producer = fp_file.producer
    int_free = int_file.free_list
    fp_free = fp_file.free_list
    int_maps = int_file.maps
    fp_maps = fp_file.maps
    fu = sim.fetch_unit
    policy = fu.policy
    policy_order = policy.order
    policy_tick = policy.tick
    adaptive = fu.adaptive
    # Inline thread-ordering for the ubiquitous cheap static policies.
    # Their sort keys are (metric, rr_rank) with rr_rank a permutation of
    # 0..n_threads-1, so a decorated tuple sort — (metric, rr_rank,
    # thread), where the unique rr_rank guarantees the thread object is
    # never compared — yields exactly the reference's stable keyed sort.
    # MISSCOUNT (stateful misscount()), IQPOSN, and adaptive meta-policies
    # keep delegating to policy.order.
    pcls = policy.__class__
    if pcls is Icount:
        fast_order = 1
    elif pcls is RoundRobin:
        fast_order = 2
    elif pcls is Brcount:
        fast_order = 3
    elif pcls is IcountBrcount:
        fast_order = 4
    else:
        fast_order = 0
    itag_filter = fu._itag_filter
    rr_offset = fu.rr_offset
    iu = sim.issue_unit
    static_key = iu._static_key
    policy_key = iu._policy_key
    speculation_allows = iu._speculation_allows
    ex = sim.execute_unit
    ex_load = ex._execute_load
    ex_store = ex._execute_store
    resolve_control = ex._resolve_control
    predictor_predict = sim.predictor.predict
    ifetch = sim.hierarchy.ifetch
    icache = sim.hierarchy.icache
    icache_line_shift = icache._line_shift
    icache_banks = icache._banks
    page_shift = _PAGE_SHIFT
    page_mask = _PAGE_MASK
    stats = sim.stats
    per_thread_committed = stats.committed_per_thread
    gc_pending = sim._gc_pending_exec

    # Batched statistics deltas (flushed in the finally block).  Counters
    # incremented by delegated helpers (branch resolution, optimistic
    # squash, I-cache stalls) are written straight to ``stats`` by that
    # code and are deliberately NOT duplicated here.
    cycles_d = 0
    qpop_d = 0
    committed_d = 0
    fetched_d = 0
    fetched_wp_d = 0
    fetch_active_d = 0
    issued_d = 0
    issued_wp_d = 0
    int_iq_full_d = 0
    fp_iq_full_d = 0
    out_of_regs_d = 0

    cycle = sim.cycle
    end = cycle + n
    try:
        while cycle < end:
            # Keep the public clock current: abort hooks, listeners and
            # delegated helpers may read it mid-cycle.
            sim.cycle = cycle

            # ---------------- squash application ----------------------
            if pending_squashes:
                apply_squashes(cycle)

            # ---------------- commit (per-thread, in order) -----------
            commit_listener = sim.commit_listener
            budget = commit_width
            idx = cycle % n_threads
            for _ in range(n_threads):
                if budget <= 0:
                    break
                thread = threads[idx]
                idx += 1
                if idx == n_threads:
                    idx = 0
                rob = thread.rob
                while budget > 0 and rob:
                    uop = rob[0]
                    if uop.state != 4 or uop.commit_ready_c > cycle:  # S_DONE
                        break
                    rob.popleft()
                    uop.state = 5  # S_COMMITTED
                    if uop.dest_preg is not None:
                        (fp_free if uop.dest_is_fp else int_free).append(
                            uop.old_preg
                        )
                    budget -= 1
                    if commit_listener is not None:
                        commit_listener(uop)
                    if measuring:
                        committed_d += 1
                        tid = uop.tid
                        per_thread_committed[tid] = (
                            per_thread_committed.get(tid, 0) + 1
                        )

            # ---------------- execute -------------------------------
            exec_uops = pending_pop(cycle, None)
            if exec_uops:
                for uop in exec_uops:
                    if uop.state != 3 or uop.exec_c != cycle:  # S_ISSUED
                        continue  # squashed, or optimistically re-queued
                    if uop.is_load:
                        ex_load(uop, cycle)
                    elif uop.is_store:
                        ex_store(uop, cycle)
                    else:
                        if uop.is_control:
                            resolve_control(uop, cycle)
                        # Inlined _finish(cycle + max(0, latency - 1)).
                        lat = uop.latency
                        cc = cycle + (lat - 1 if lat > 1 else 0)
                        uop.complete_c = cc
                        uop.commit_ready_c = cc + 1
                        uop.state = 4  # S_DONE
                        uop.iq_freed = True
                        dp = uop.dest_preg
                        if dp is not None:
                            (fp_producer if uop.dest_is_fp
                             else int_producer)[dp] = None
                        if uop.is_control:
                            threads[uop.tid].unresolved_branches -= 1
                            branches = pending_branches[uop.tid]
                            if uop in branches:
                                branches.remove(uop)

            # ---------------- IQ release + issue ----------------------
            # One pass per queue fuses slot release (drop iq_freed
            # entries) with issue-candidate collection.  The collection
            # predicate — waiting (state 2), inside the search window
            # *after* release, dispatched on an earlier cycle — is
            # walk-independent, so collecting before the priority sort
            # is exactly the reference's waiting() set.  Readiness is
            # NOT prefilterable: a latency-0 compare issuing this cycle
            # wakes same-cycle consumers later in the walk.
            candidates = []
            new_entries = []
            cand_append = candidates.append
            kept_append = new_entries.append
            pos = 0
            for uop in int_entries:
                if uop.iq_freed:
                    continue
                if (pos < search_window and uop.state == 2
                        and uop.dispatch_c < cycle):
                    cand_append(uop)
                kept_append(uop)
                pos += 1
            int_entries[:] = new_entries
            new_entries = []
            kept_append = new_entries.append
            pos = 0
            for uop in fp_entries:
                if uop.iq_freed:
                    continue
                if (pos < search_window and uop.state == 2
                        and uop.dispatch_c < cycle):
                    cand_append(uop)
                kept_append(uop)
                pos += 1
            fp_entries[:] = new_entries
            if candidates:
                candidates.sort(key=static_key or policy_key(cycle))
                int_left = int_units
                ls_left = ls_units
                fp_left = fp_units
                for uop in candidates:
                    is_fp_op = uop.is_fp_op
                    is_mem = uop.is_load or uop.is_store
                    if not infinite_fus:
                        if is_fp_op:
                            if fp_left <= 0:
                                continue
                        elif is_mem:
                            if ls_left <= 0 or int_left <= 0:
                                continue
                        elif int_left <= 0:
                            continue
                    ready = True
                    for preg, is_fp in uop.src_pregs:
                        if (fp_ready[preg] if is_fp
                                else int_ready[preg]) > cycle:
                            ready = False
                            break
                    if not ready:
                        continue
                    if uop.is_load:
                        mem_key = uop.mem_key
                        seq = uop.seq
                        for store in pending_stores[uop.tid]:
                            if store.seq >= seq:
                                break
                            if (store.mem_key == mem_key
                                    and store.dcache_hit is None):
                                ready = False
                                break
                        if not ready:
                            continue
                    if not spec_full and not speculation_allows(uop, cycle):
                        continue

                    # Inlined _do_issue.
                    optimistic = False
                    inflight = False
                    for preg, is_fp in uop.src_pregs:
                        p = (fp_producer if is_fp else int_producer)[preg]
                        if p is not None and p.state == 3:  # S_ISSUED
                            inflight = True
                            if p.is_load and p.dcache_hit is None:
                                optimistic = True
                                break
                    uop.optimistic = optimistic
                    uop.state = 3  # S_ISSUED
                    uop.issue_c = cycle
                    ec = cycle + exec_offset
                    uop.exec_c = ec
                    lst = pending_exec.get(ec)
                    if lst is None:
                        pending_exec[ec] = [uop]
                    else:
                        lst.append(uop)
                    threads[uop.tid].unissued_count -= 1
                    if measuring:
                        issued_d += 1
                        if uop.wrong_path:
                            issued_wp_d += 1
                    dp = uop.dest_preg
                    if dp is not None:
                        if uop.is_load:
                            if optimistic_issue:
                                (fp_ready if uop.dest_is_fp
                                 else int_ready)[dp] = cycle + 1
                        else:
                            (fp_ready if uop.dest_is_fp
                             else int_ready)[dp] = cycle + uop.latency
                    if not inflight:
                        uop.iq_freed = True
                    if not infinite_fus:
                        if is_fp_op:
                            fp_left -= 1
                        elif is_mem:
                            ls_left -= 1
                            int_left -= 1
                        else:
                            int_left -= 1

            # ---------------- rename / dispatch -----------------------
            renamed = 0
            blocked_int = blocked_fp = blocked_regs = False
            while decode_buffer and renamed < rename_width:
                uop = decode_buffer[0]
                if uop.state == 6:  # S_SQUASHED
                    decode_pop()
                    continue
                if uop.decode_c >= cycle:
                    break
                is_fp_op = uop.is_fp_op
                entries = fp_entries if is_fp_op else int_entries
                if len(entries) >= iq_capacity:
                    if is_fp_op:
                        blocked_fp = True
                    else:
                        blocked_int = True
                    break
                # Inlined Renamer.rename.
                instr = uop.instr
                tid = uop.tid
                srcs = [
                    ((fp_maps if is_fp else int_maps)[tid][logical], is_fp)
                    for logical, is_fp in instr._sources_fp
                ]
                rd = instr.rd
                if rd is not None:
                    dest_is_fp = instr._rd_is_fp
                    free = fp_free if dest_is_fp else int_free
                    if not free:
                        blocked_regs = True
                        break  # no side effects: srcs list is discarded
                    preg = free.pop()
                    (fp_ready if dest_is_fp else int_ready)[preg] = _NEVER
                    (fp_producer if dest_is_fp else int_producer)[preg] = uop
                    uop.dest_preg = preg
                    uop.dest_is_fp = dest_is_fp
                    maps_t = (fp_maps if dest_is_fp else int_maps)[tid]
                    uop.old_preg = maps_t[rd]
                    maps_t[rd] = preg
                uop.src_pregs = tuple(srcs)
                decode_pop()
                uop.dispatch_c = cycle
                uop.state = 2  # S_QUEUED
                entries.append(uop)
                if uop.is_store:
                    pending_stores[tid].append(uop)
                if uop.is_control:
                    pending_branches[tid].append(uop)
                renamed += 1
            if measuring:
                if blocked_int:
                    int_iq_full_d += 1
                if blocked_fp:
                    fp_iq_full_d += 1
                if blocked_regs:
                    out_of_regs_d += 1

            # ---------------- decode ----------------------------------
            decoded = 0
            while fetch_buffer and decoded < decode_width:
                uop = fetch_buffer[0]
                if uop.state == 6:  # S_SQUASHED
                    fetch_pop()
                    continue
                if uop.fetch_c >= cycle:
                    break
                if len(decode_buffer) >= decode_width:
                    break
                fetch_pop()
                uop.decode_c = cycle
                uop.state = 1  # S_DECODED
                decode_append(uop)
                decoded += 1

            # ---------------- fetch -----------------------------------
            if adaptive:
                policy_tick(cycle)
            buffer_room = fetch_width - len(fetch_buffer)
            if buffer_room > 0:
                candidates = [
                    t for t in threads if t.fetch_blocked_until <= cycle
                ]
                if itag:
                    candidates = itag_filter(candidates, cycle)
                if fast_order == 1:
                    dec = [
                        (t.unissued_count,
                         (t.tid - rr_offset) % n_threads, t)
                        for t in candidates
                    ]
                    dec.sort()
                    ordered = [d[2] for d in dec]
                elif fast_order == 2:
                    # Round-robin rotation: sorted by the (unique)
                    # rr_rank alone == rotate the tid-ordered list.
                    ordered = [
                        t for t in candidates if t.tid >= rr_offset
                    ]
                    ordered.extend(
                        t for t in candidates if t.tid < rr_offset
                    )
                elif fast_order == 3:
                    dec = [
                        (t.unresolved_branches,
                         (t.tid - rr_offset) % n_threads, t)
                        for t in candidates
                    ]
                    dec.sort()
                    ordered = [d[2] for d in dec]
                elif fast_order == 4:
                    dec = [
                        (t.unissued_count + 3 * t.unresolved_branches,
                         (t.tid - rr_offset) % n_threads, t)
                        for t in candidates
                    ]
                    dec.sort()
                    ordered = [d[2] for d in dec]
                else:
                    ordered = policy_order(
                        candidates, cycle, rr_offset, n_threads,
                        int_queue, fp_queue,
                    )
                selected = []
                banks_used = set()
                for thread in ordered:
                    if len(selected) >= fetch_threads:
                        break
                    # Inlined phys_addr + bank_of; the translation is
                    # carried along so the fetch loop below does not
                    # repeat it for the same PC.
                    pc = thread.fetch_pc
                    page = pc >> page_shift
                    frames = thread._frames
                    frame = frames.get(page)
                    if frame is None:
                        frame = page ^ (
                            (((page >> 3) * 1103515245
                              + thread.tid * 12345) >> 4) & 7
                        )
                        frames[page] = frame
                    phys = (thread.asid_offset + (frame << page_shift)
                            + (pc & page_mask))
                    bank = (phys >> icache_line_shift) % icache_banks
                    if bank in banks_used:
                        continue
                    banks_used.add(bank)
                    selected.append((thread, phys))
                total_budget = min(fetch_width, buffer_room)
                fetched_any = False
                for thread, phys in selected:
                    if total_budget <= 0:
                        break
                    # Inlined _fetch_from_thread.
                    pc = thread.fetch_pc
                    program = thread.program
                    text_end = program._text_end
                    if not TEXT_BASE <= pc < text_end or pc & 3:
                        thread.fetch_blocked_until = BLOCKED
                        continue
                    line = phys >> 6
                    if thread.pending_ifill_line == line:
                        thread.pending_ifill_line = None
                    elif not itag:
                        access = ifetch(thread.tid, phys, cycle)
                        if access.rejected:
                            continue  # bank busy with a fill
                        if not access.l1_hit:
                            thread.fetch_blocked_until = access.ready_cycle
                            thread.pending_ifill_line = line
                            if measuring:
                                stats.icache_miss_stall_events += 1
                            continue
                        if access.ready_cycle > cycle:
                            thread.fetch_blocked_until = access.ready_cycle
                            continue
                    budget = (fetch_per_thread
                              if fetch_per_thread < total_budget
                              else total_budget)
                    taken = 0
                    tid = thread.tid
                    rob_append = thread.rob.append
                    instructions = program.instructions
                    oracle_buf = thread._oracle_buf
                    emu_step = thread.emulator.step
                    while taken < budget:
                        # Inlined program.fetch + _make_uop.
                        if not TEXT_BASE <= pc < text_end or pc & 3:
                            thread.fetch_blocked_until = BLOCKED
                            break
                        instr = instructions[(pc - TEXT_BASE) >> 2]
                        seq = thread.next_seq
                        if thread.on_correct_path:
                            record = (oracle_buf.popleft() if oracle_buf
                                      else emu_step())
                            assert record.pc == pc, (
                                f"oracle desync: thread {tid} fetching "
                                f"{pc:#x}, oracle at {record.pc:#x}"
                            )
                            uop = Uop(
                                tid, seq, pc, instr, False,
                                record.taken, record.next_pc,
                                record.eff_addr,
                            )
                            ea = record.eff_addr
                            if ea is not None:
                                thread.last_data_addr = ea
                        else:
                            ea = (
                                thread.wrong_path_load_address(pc, seq)
                                if instr.is_mem else None
                            )
                            uop = Uop(tid, seq, pc, instr, True,
                                      eff_addr=ea)
                        if ea is not None:
                            uop.mem_key = (
                                thread.phys_addr(ea) >> 3
                            ) & dis_mask
                        uop.fetch_c = cycle
                        thread.next_seq = seq + 1
                        fetch_append(uop)
                        rob_append(uop)
                        thread.unissued_count += 1
                        is_control = uop.is_control
                        if is_control:
                            thread.unresolved_branches += 1
                        if measuring:
                            fetched_d += 1
                            if uop.wrong_path:
                                fetched_wp_d += 1
                        taken += 1

                        # Inlined _advance.
                        if not is_control:
                            next_pc = pc + 4
                            block_ends = False
                        else:
                            wp = uop.wrong_path
                            prediction = predictor_predict(
                                tid, pc, instr,
                                None if wp else uop.actual_taken,
                                None if wp else uop.actual_target,
                            )
                            uop.prediction = prediction
                            if prediction.resolve_at_exec:
                                thread.fetch_blocked_until = BLOCKED
                                uop.mispredicted = not wp
                                if not wp:
                                    thread.on_correct_path = False
                                next_pc = pc + 4
                                block_ends = True
                            else:
                                next_pc = (prediction.target
                                           if prediction.taken
                                           else pc + 4)
                                if not wp and next_pc != uop.actual_target:
                                    uop.mispredicted = True
                                    thread.on_correct_path = False
                                if prediction.redirect_at_decode:
                                    thread.fetch_blocked_until = (
                                        cycle + misfetch_penalty
                                    )
                                    block_ends = True
                                else:
                                    block_ends = prediction.taken
                        thread.fetch_pc = next_pc
                        pc = next_pc
                        if block_ends:
                            break
                        if not pc % 64:  # cache-line boundary
                            break
                    total_budget -= taken
                    if taken:
                        fetched_any = True
                if fetched_any and measuring:
                    fetch_active_d += 1
            rr_offset += 1
            if rr_offset == n_threads:
                rr_offset = 0

            # ---------------- bookkeeping -----------------------------
            if measuring:
                cycles_d += 1
                qpop_d += len(int_entries) + len(fp_entries)
            if not cycle & 1023 and pending_exec:
                gc_pending()
            if not cycle & 255:
                abort_hook = sim.abort_hook
                if abort_hook is not None:
                    abort_hook(sim)
            cycle += 1
    finally:
        sim.cycle = cycle
        fu.rr_offset = rr_offset
        if measuring:
            stats.cycles += cycles_d
            stats.queue_population_sum += qpop_d
            stats.committed += committed_d
            stats.fetched_total += fetched_d
            stats.fetched_wrong_path += fetched_wp_d
            stats.fetch_cycles_active += fetch_active_d
            stats.issued_total += issued_d
            stats.issued_wrong_path += issued_wp_d
            stats.int_iq_full_cycles += int_iq_full_d
            stats.fp_iq_full_cycles += fp_iq_full_d
            stats.out_of_registers_cycles += out_of_regs_d
