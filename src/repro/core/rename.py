"""Register renaming onto shared physical register files (Section 2).

Thread-specific logical registers map onto one completely shared physical
file per type (integer and FP).  The pool holds ``32 * n_threads``
architectural registers plus ``excess`` renaming registers.  A physical
register is allocated when an instruction with a destination renames,
and the *previous* mapping of that logical register is freed when the
instruction commits (or the allocation is undone if it squashes).

Readiness is a cycle number per physical register: the wakeup time the
producer advertised at issue.  ``OPTIMISTIC`` producers (loads issued
before hit/miss is known) may later *retract* their wakeup, squashing
consumers (see :mod:`repro.core.execute`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.uop import Uop
from repro.isa.instructions import RegFile

#: Readiness sentinel: "not ready until retracted/someone sets it".
NEVER = 1 << 60


class RegisterFile:
    """One shared physical register file (readiness + free list)."""

    def __init__(self, n_threads: int, physical: int):
        architectural = 32 * n_threads
        if physical <= architectural:
            raise ValueError(
                f"need more than {architectural} physical registers, got {physical}"
            )
        self.physical = physical
        self.n_threads = n_threads
        #: ready[p] = first cycle p's value is available to consumers.
        self.ready: List[int] = [0] * physical
        #: producer[p] = uop currently computing p (None once confirmed).
        self.producer: List[Optional[Uop]] = [None] * physical
        # Architectural registers p = tid*32 + logical start mapped & ready.
        self.maps: List[List[int]] = [
            [tid * 32 + i for i in range(32)] for tid in range(n_threads)
        ]
        self.free_list: List[int] = list(range(architectural, physical))

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self.free_list)

    def allocate(self) -> Optional[int]:
        if not self.free_list:
            return None
        preg = self.free_list.pop()
        self.ready[preg] = NEVER
        self.producer[preg] = None
        return preg

    def release(self, preg: int) -> None:
        self.free_list.append(preg)

    def lookup(self, tid: int, logical: int) -> int:
        return self.maps[tid][logical]


class Renamer:
    """The rename stage: map lookups, allocation, rollback."""

    def __init__(self, n_threads: int, physical_per_file: int):
        self.int_file = RegisterFile(n_threads, physical_per_file)
        self.fp_file = RegisterFile(n_threads, physical_per_file)

    def file_for(self, is_fp: bool) -> RegisterFile:
        return self.fp_file if is_fp else self.int_file

    # ------------------------------------------------------------------
    def rename(self, uop: Uop) -> bool:
        """Rename ``uop``'s sources and destination.

        Returns False (leaving no side effects) if no physical register
        is free for the destination — the out-of-registers stall.
        """
        instr = uop.instr
        srcs: List[Tuple[int, bool]] = []
        for logical, regfile in instr.sources():
            is_fp = regfile is RegFile.FP
            rf = self.file_for(is_fp)
            srcs.append((rf.lookup(uop.tid, logical), is_fp))
        if instr.rd is not None:
            dest_is_fp = instr.rd_file is RegFile.FP
            rf = self.file_for(dest_is_fp)
            preg = rf.allocate()
            if preg is None:
                return False
            uop.dest_preg = preg
            uop.dest_is_fp = dest_is_fp
            uop.old_preg = rf.lookup(uop.tid, instr.rd)
            rf.maps[uop.tid][instr.rd] = preg
            rf.producer[preg] = uop
        uop.src_pregs = tuple(srcs)
        return True

    # ------------------------------------------------------------------
    def commit(self, uop: Uop) -> None:
        """Free the previous mapping of the destination register."""
        if uop.dest_preg is not None:
            self.file_for(uop.dest_is_fp).release(uop.old_preg)

    def rollback(self, uop: Uop) -> None:
        """Undo ``uop``'s rename (squash path; call in reverse program
        order so mappings unwind correctly)."""
        if uop.dest_preg is not None:
            rf = self.file_for(uop.dest_is_fp)
            rf.maps[uop.tid][uop.instr.rd] = uop.old_preg
            rf.producer[uop.dest_preg] = None
            rf.release(uop.dest_preg)
            uop.dest_preg = None

    # ------------------------------------------------------------------
    def sources_ready(self, uop: Uop, cycle: int) -> bool:
        int_ready = self.int_file.ready
        fp_ready = self.fp_file.ready
        for preg, is_fp in uop.src_pregs:
            if (fp_ready[preg] if is_fp else int_ready[preg]) > cycle:
                return False
        return True

    def set_wakeup(self, uop: Uop, ready_cycle: int) -> None:
        if uop.dest_preg is not None:
            self.file_for(uop.dest_is_fp).ready[uop.dest_preg] = ready_cycle

    def retract_wakeup(self, uop: Uop) -> None:
        if uop.dest_preg is not None:
            self.file_for(uop.dest_is_fp).ready[uop.dest_preg] = NEVER

    def confirm_producer(self, uop: Uop) -> None:
        """Mark the destination as no longer speculative-in-flight."""
        if uop.dest_preg is not None:
            self.file_for(uop.dest_is_fp).producer[uop.dest_preg] = None

    # ------------------------------------------------------------------
    def check_conservation(self) -> bool:
        """Invariant: free + mapped + in-flight = physical (per file).

        Used by tests; every physical register must be accounted for:
        on the free list, or reachable as a current mapping or as some
        in-flight uop's old mapping.
        """
        for rf in (self.int_file, self.fp_file):
            mapped = {p for tmap in rf.maps for p in tmap}
            free = set(rf.free_list)
            if mapped & free:
                return False
            if len(rf.free_list) != len(free):
                return False  # duplicate frees
        return True
