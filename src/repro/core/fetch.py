"""The fetch unit (Section 5).

Implements the paper's ``alg.num1.num2`` partitioning: up to ``num1``
threads are selected each cycle by the fetch policy, each supplying up to
``num2`` instructions, with at most ``fetch_width`` total — filled in
priority order (so RR.2.8 takes as many as possible from the first
thread, then fills from the second).

Per-thread fetch-block termination reproduces fetch fragmentation: a
block ends at the cache-line boundary, after a predicted-taken control
instruction, on a misfetch (taken target only available at decode: the
thread stalls ``misfetch_penalty`` cycles), or on an unpredictable
indirect jump (the thread stalls until the jump executes).

Selected threads must target distinct I-cache banks; with ITAG enabled,
threads whose fetch PC misses the early tag probe are excluded from
selection (their miss is still started immediately).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.thread import BLOCKED, ThreadContext
from repro.core.uop import Uop
from repro.isa.program import INSTR_BYTES
from repro.policy.registry import make_policy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator

_LINE_BYTES = 64


class FetchUnit:
    """Thread selection + instruction supply, one call per cycle."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.rr_offset = 0
        #: The thread-choice policy object (static or meta), built from
        #: the config spec; meta-policies bind listeners to the live
        #: simulator and are ticked every cycle.
        self.policy = make_policy(sim.cfg.fetch_policy, seed=sim.cfg.seed)
        self.adaptive = self.policy.adaptive
        if self.adaptive:
            self.policy.bind(sim)

    # ------------------------------------------------------------------
    def fetch_cycle(self, cycle: int) -> None:
        sim = self.sim
        cfg = sim.cfg
        if self.adaptive:
            # Ticked unconditionally (even when the fetch buffer is
            # full), so interval boundaries — and therefore policy
            # decisions — depend only on the cycle count.
            self.policy.tick(cycle)
        buffer_room = cfg.fetch_width - len(sim.fetch_buffer)
        if buffer_room <= 0:
            self.rr_offset = (self.rr_offset + 1) % cfg.n_threads
            return

        candidates: List[ThreadContext] = [
            t for t in sim.threads if t.fetch_blocked_until <= cycle
        ]

        if cfg.itag:
            candidates = self._itag_filter(candidates, cycle)

        ordered = self.policy.order(
            candidates, cycle, self.rr_offset,
            cfg.n_threads, sim.int_queue, sim.fp_queue,
        )

        # Select up to num1 threads with pairwise-distinct I-cache banks.
        selected: List[ThreadContext] = []
        banks_used = set()
        for thread in ordered:
            if len(selected) >= cfg.fetch_threads:
                break
            bank = sim.hierarchy.icache.bank_of(thread.phys_addr(thread.fetch_pc))
            if bank in banks_used:
                continue
            banks_used.add(bank)
            selected.append(thread)

        total_budget = min(cfg.fetch_width, buffer_room)
        fetched_any = False
        for thread in selected:
            if total_budget <= 0:
                break
            taken = self._fetch_from_thread(thread, cycle, total_budget)
            total_budget -= taken
            fetched_any = fetched_any or taken > 0

        if fetched_any and sim.measuring:
            sim.stats.fetch_cycles_active += 1
        self.rr_offset = (self.rr_offset + 1) % cfg.n_threads

    # ------------------------------------------------------------------
    def _itag_filter(
        self, candidates: List[ThreadContext], cycle: int
    ) -> List[ThreadContext]:
        """Early tag lookup: exclude missing threads, starting their
        misses immediately so the fetch slot isn't wasted later."""
        sim = self.sim
        passing = []
        for thread in candidates:
            if not thread.program.in_text(thread.fetch_pc):
                continue  # wrong path off the text segment: wait for squash
            addr = thread.phys_addr(thread.fetch_pc)
            if thread.pending_ifill_line == (addr >> 6):
                passing.append(thread)  # fill delivered; fetch consumes it
            elif sim.hierarchy.icache_probe(addr):
                passing.append(thread)
            else:
                access = sim.hierarchy.ifetch(thread.tid, addr, cycle)
                if not access.rejected and not access.l1_hit:
                    thread.fetch_blocked_until = access.ready_cycle
                    thread.pending_ifill_line = addr >> 6
                    if sim.measuring:
                        sim.stats.icache_miss_stall_events += 1
                # On rejection (or a racing hit) the probe retries next cycle.
        return passing

    # ------------------------------------------------------------------
    def _fetch_from_thread(
        self, thread: ThreadContext, cycle: int, total_budget: int
    ) -> int:
        """Fetch one block from ``thread``; returns instructions taken."""
        sim = self.sim
        cfg = sim.cfg
        pc = thread.fetch_pc

        if not thread.program.in_text(pc):
            # Only possible on a wrong path: stall until the squash.
            thread.fetch_blocked_until = BLOCKED
            return 0

        phys = thread.phys_addr(pc)
        if thread.pending_ifill_line == (phys >> 6):
            # A completed miss delivers its block straight to the fetch
            # unit; no tag re-check (the line may already be evicted).
            thread.pending_ifill_line = None
        elif not cfg.itag:
            access = sim.hierarchy.ifetch(thread.tid, phys, cycle)
            if access.rejected:
                return 0  # bank busy with a fill: lost opportunity
            if not access.l1_hit:
                thread.fetch_blocked_until = access.ready_cycle
                thread.pending_ifill_line = phys >> 6
                if sim.measuring:
                    sim.stats.icache_miss_stall_events += 1
                return 0
            if access.ready_cycle > cycle:
                # Hit but TLB refill pushed data availability out.
                thread.fetch_blocked_until = access.ready_cycle
                return 0

        budget = min(cfg.fetch_per_thread, total_budget)
        taken = 0
        while taken < budget:
            instr = thread.program.fetch(pc)
            if instr is None:
                thread.fetch_blocked_until = BLOCKED
                break
            uop = self._make_uop(thread, pc, instr, cycle)
            sim.fetch_buffer.append(uop)
            thread.rob.append(uop)
            thread.unissued_count += 1
            if uop.is_control:
                thread.unresolved_branches += 1
            if sim.measuring:
                sim.stats.fetched_total += 1
                if uop.wrong_path:
                    sim.stats.fetched_wrong_path += 1
            taken += 1

            next_pc, block_ends = self._advance(thread, uop, cycle)
            thread.fetch_pc = next_pc
            pc = next_pc
            if block_ends:
                break
            # A fetch block cannot cross the cache line.
            if pc % _LINE_BYTES == 0:
                break
        return taken

    # ------------------------------------------------------------------
    def _make_uop(self, thread: ThreadContext, pc: int, instr, cycle: int) -> Uop:
        """Create the dynamic instruction, consuming the oracle when on
        the correct path."""
        if thread.on_correct_path:
            record = thread.oracle_pop()
            assert record.pc == pc, (
                f"oracle desync: thread {thread.tid} fetching {pc:#x}, "
                f"oracle at {record.pc:#x}"
            )
            uop = Uop(
                thread.tid, thread.next_seq, pc, instr, wrong_path=False,
                actual_taken=record.taken, actual_target=record.next_pc,
                eff_addr=record.eff_addr,
            )
            if record.eff_addr is not None:
                thread.last_data_addr = record.eff_addr
        else:
            eff_addr = (
                thread.wrong_path_load_address(pc, thread.next_seq)
                if instr.is_mem else None
            )
            uop = Uop(
                thread.tid, thread.next_seq, pc, instr, wrong_path=True,
                eff_addr=eff_addr,
            )
        if uop.eff_addr is not None:
            uop.mem_key = (thread.phys_addr(uop.eff_addr) >> 3) & (
                (1 << self.sim.cfg.disambiguation_bits) - 1
            )
        uop.fetch_c = cycle
        uop.state = 0  # S_FETCHED
        thread.next_seq += 1
        return uop

    # ------------------------------------------------------------------
    def _advance(self, thread: ThreadContext, uop: Uop, cycle: int):
        """Predict through ``uop`` and compute the thread's next fetch PC.

        Returns (next_pc, block_ends)."""
        sim = self.sim
        cfg = sim.cfg
        instr = uop.instr
        pc = uop.pc

        if not uop.is_control:
            return pc + INSTR_BYTES, False

        prediction = sim.predictor.predict(
            thread.tid, pc, instr,
            oracle_taken=uop.actual_taken if not uop.wrong_path else None,
            oracle_target=uop.actual_target if not uop.wrong_path else None,
        )
        uop.prediction = prediction

        if prediction.resolve_at_exec:
            # No target available: the thread stalls until this executes.
            thread.fetch_blocked_until = BLOCKED
            uop.mispredicted = not uop.wrong_path
            if not uop.wrong_path:
                thread.on_correct_path = False
            return pc + INSTR_BYTES, True

        predicted_next = (
            prediction.target if prediction.taken else pc + INSTR_BYTES
        )

        if not uop.wrong_path:
            actual_next = uop.actual_target
            if predicted_next != actual_next:
                uop.mispredicted = True
                thread.on_correct_path = False

        if prediction.redirect_at_decode:
            # Misfetch: the target comes out of decode, costing 2 cycles
            # (3 with the extra ITAG pipe stage).
            thread.fetch_blocked_until = cycle + cfg.misfetch_penalty
            return predicted_next, True

        if prediction.taken:
            return predicted_next, True
        return predicted_next, False
