"""Instruction queues (Sections 2.1 and 5.3).

Two queues, following the paper: a 32-entry integer queue that handles
integer instructions **and all load/store operations**, and a 32-entry
floating-point queue for FP arithmetic.  Entries are kept in dispatch
(age) order; issue selection walks the first ``search_window`` entries.

The BIGQ variant doubles the capacity while keeping the search window at
32: the back half buffers instructions from the fetch unit when the
searchable part overflows, exactly as described in Section 5.3.

An entry is occupied from dispatch until the instruction issues — plus,
for optimistically issued instructions, the extra cycles until it is
known they won't be squashed (Section 2); a squash returns the entry to
the waiting state.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.core.uop import S_ISSUED, S_QUEUED, Uop


class InstructionQueue:
    """One of the two instruction queues."""

    def __init__(self, name: str, capacity: int, search_window: int):
        if search_window > capacity:
            raise ValueError("search window cannot exceed capacity")
        self.name = name
        self.capacity = capacity
        self.search_window = search_window
        #: Age-ordered entries.  An entry leaves the list only when its
        #: IQ slot is finally released (``uop.iq_freed``), not at issue.
        self.entries: List[Uop] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def add(self, uop: Uop) -> None:
        if self.full:
            raise RuntimeError(f"{self.name} queue overflow")
        self.entries.append(uop)

    # ------------------------------------------------------------------
    def searchable(self) -> Iterator[Uop]:
        """Entries visible to the issue logic, in age order."""
        return iter(self.entries[: self.search_window])

    def waiting(self) -> List[Uop]:
        """Searchable entries still waiting to issue."""
        entries = self.entries
        if len(entries) > self.search_window:
            entries = entries[: self.search_window]
        return [uop for uop in entries if uop.state == S_QUEUED]

    # ------------------------------------------------------------------
    def release_freed(self) -> None:
        """Drop entries whose slot has been released."""
        entries = self.entries
        for uop in entries:
            if uop.iq_freed:
                # In place: the fast-step loop binds this list once.
                entries[:] = [u for u in entries if not u.iq_freed]
                return

    def remove(self, uop: Uop) -> None:
        """Remove a squashed entry outright."""
        try:
            self.entries.remove(uop)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def population(self) -> int:
        """Occupied entries (queued + issued-but-not-released)."""
        return len(self.entries)

    def oldest_position_of_thread(self, tid: int) -> int:
        """Age rank of the thread's oldest *waiting* entry (IQPOSN).

        Returns a large sentinel if the thread has nothing waiting — a
        thread with no queued instructions cannot be clogging the queue.
        """
        for pos, uop in enumerate(self.entries):
            if uop.tid == tid and uop.state == S_QUEUED:
                return pos
        return 1 << 30
