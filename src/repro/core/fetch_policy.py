"""Compatibility shim over the fetch-policy registry.

The policy logic lives in :mod:`repro.policy` — the paper's Section 5.2
policies are :class:`~repro.policy.base.FetchPolicy` classes registered
in :mod:`repro.policy.registry`, and the adaptive meta-policies build on
them.  :func:`priority_order` keeps the original stateless functional
interface for the *static* policies (tests, tools, and docs reference
it); the fetch unit itself now holds a policy object, which is what
makes stateful meta-policies possible.

Ties break round-robin, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.queues import InstructionQueue
from repro.core.thread import ThreadContext
from repro.policy.base import FetchPolicy
from repro.policy.registry import get_info, make_policy

#: Static policies are stateless, so one shared instance per name
#: serves every caller of the functional interface.
_STATIC_INSTANCES: Dict[str, FetchPolicy] = {}


def priority_order(
    policy: str,
    candidates: Sequence[ThreadContext],
    cycle: int,
    rr_offset: int,
    n_threads: int,
    int_queue: InstructionQueue,
    fp_queue: InstructionQueue,
) -> List[ThreadContext]:
    """Order fetch candidates best-first under the *static* ``policy``.

    Meta-policies carry per-run state and cannot be driven through this
    stateless interface; construct them with
    :func:`repro.policy.make_policy` instead.
    """
    ranker = _STATIC_INSTANCES.get(policy)
    if ranker is None:
        if get_info(policy).kind != "static":
            raise ValueError(
                f"{policy!r} is a stateful meta-policy; it cannot be "
                f"used through the stateless priority_order interface "
                f"(build it with repro.policy.make_policy)"
            )
        ranker = _STATIC_INSTANCES[policy] = make_policy(policy)
    return ranker.order(
        candidates, cycle, rr_offset, n_threads, int_queue, fp_queue
    )
