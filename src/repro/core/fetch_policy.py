"""Fetch thread-choice policies (Section 5.2 of the paper).

Each policy orders the fetchable threads best-first:

RR
    Round-robin rotation (the baseline).
BRCOUNT
    Fewest unresolved branches in decode/rename/IQ — favours threads
    least likely to be on a wrong path.
MISSCOUNT
    Fewest outstanding D-cache misses — attacks IQ clog caused by
    long memory latencies.
ICOUNT
    Fewest instructions in decode/rename/IQ — the paper's winner: it
    prevents any thread from filling the IQ, favours threads moving
    instructions through quickly, and evens the queue mix.
IQPOSN
    Penalise threads whose instructions sit closest to the head of
    either queue (oldest = most clog-prone); needs no per-thread
    counters.

Ties break round-robin, as in the paper.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.queues import InstructionQueue
from repro.core.thread import ThreadContext


def priority_order(
    policy: str,
    candidates: Sequence[ThreadContext],
    cycle: int,
    rr_offset: int,
    n_threads: int,
    int_queue: InstructionQueue,
    fp_queue: InstructionQueue,
) -> List[ThreadContext]:
    """Order fetch candidates best-first under ``policy``."""

    def rr_rank(t: ThreadContext) -> int:
        return (t.tid - rr_offset) % n_threads

    if policy == "RR":
        return sorted(candidates, key=rr_rank)

    if policy == "BRCOUNT":
        return sorted(candidates, key=lambda t: (t.unresolved_branches, rr_rank(t)))

    if policy == "MISSCOUNT":
        return sorted(candidates, key=lambda t: (t.misscount(cycle), rr_rank(t)))

    if policy == "ICOUNT":
        return sorted(candidates, key=lambda t: (t.unissued_count, rr_rank(t)))

    if policy == "ICOUNT_BRCOUNT":
        # The weighted combination the paper suggests as future work:
        # ICOUNT attacks IQ clog, BRCOUNT wrong-path waste.  Each
        # unresolved branch is weighted as a few queued instructions
        # (a branch's expected wrong-path cost at ~10% misprediction
        # times a 7-cycle shadow is on that order).
        return sorted(
            candidates,
            key=lambda t: (
                t.unissued_count + 3 * t.unresolved_branches, rr_rank(t)
            ),
        )

    if policy == "IQPOSN":
        # Lowest priority to threads with instructions closest to the
        # head of either queue; a big position (or no queued entries)
        # means low clog risk, hence high priority.
        def posn_key(t: ThreadContext) -> tuple:
            closest = min(
                int_queue.oldest_position_of_thread(t.tid),
                fp_queue.oldest_position_of_thread(t.tid),
            )
            return (-closest, rr_rank(t))

        return sorted(candidates, key=posn_key)

    raise ValueError(f"unknown fetch policy {policy!r}")
