"""Distribution analytics: histograms of per-instruction timing.

:class:`Histogram` is a small bucketed-counts container with mean,
percentiles, and an ASCII rendering.  :class:`MetricsCollector` attaches
to a live simulator (via the commit listener) and accumulates the
distributions that explain SMT behaviour:

* queue residency (dispatch -> issue): how long instructions wait —
  the quantity ICOUNT minimises;
* pipeline residency (dispatch -> commit): how long physical registers
  are held;
* load-to-use delay and load-miss latency;
* per-thread commit share (fairness).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.simulator import Simulator
from repro.core.uop import Uop


class Histogram:
    """Bucketed integer-sample histogram with summary statistics."""

    def __init__(self, name: str, bucket_width: int = 1,
                 max_buckets: int = 256):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self.max_buckets = max_buckets
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    # ------------------------------------------------------------------
    def add(self, value: int) -> None:
        bucket = min(value // self.bucket_width, self.max_buckets - 1)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Approximate q-th percentile (bucket lower edge)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0
        threshold = math.ceil(self.count * q / 100)
        running = 0
        for bucket in sorted(self.buckets):
            running += self.buckets[bucket]
            if running >= threshold:
                return bucket * self.bucket_width
        return (max(self.buckets)) * self.bucket_width

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        if other.bucket_width != self.bucket_width:
            raise ValueError("bucket widths differ")
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        for attr in ("min", "max"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                if mine is None:
                    setattr(self, attr, theirs)
                else:
                    setattr(self, attr,
                            min(mine, theirs) if attr == "min"
                            else max(mine, theirs))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the structured exporters."""
        return {
            "name": self.name,
            "bucket_width": self.bucket_width,
            "count": self.count,
            "total": self.total,
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50) if self.count else None,
            "p90": self.percentile(90) if self.count else None,
            "p99": self.percentile(99) if self.count else None,
            # JSON object keys must be strings; keys are bucket indices.
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    # ------------------------------------------------------------------
    def render(self, width: int = 40, max_rows: int = 12) -> str:
        """ASCII bar rendering of the densest buckets (in order)."""
        if not self.count:
            return f"{self.name}: (no samples)"
        lines = [
            f"{self.name}: n={self.count} mean={self.mean:.1f} "
            f"min={self.min} p50={self.percentile(50)} "
            f"p90={self.percentile(90)} p99={self.percentile(99)} "
            f"max={self.max}"
        ]
        # Top max_rows buckets by count (ties to the lower bucket),
        # displayed in key order so the mode is never hidden behind a
        # long head of sparse buckets.
        densest = sorted(
            self.buckets, key=lambda b: (-self.buckets[b], b)
        )[:max_rows]
        shown = sorted(densest)
        peak = max(self.buckets[b] for b in shown)
        for bucket in shown:
            n = self.buckets[bucket]
            bar = "#" * max(1, round(n / peak * width))
            low = bucket * self.bucket_width
            high = low + self.bucket_width - 1
            label = f"{low}" if self.bucket_width == 1 else f"{low}-{high}"
            lines.append(f"  {label:>9s} {n:>7d} {bar}")
        hidden = len(self.buckets) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more buckets")
        return "\n".join(lines)


class MetricsCollector:
    """Accumulates timing distributions from a live simulator."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.queue_wait = Histogram("queue wait (dispatch->issue)", 1)
        self.residency = Histogram("pipeline residency (dispatch->commit)", 2)
        self.exec_to_commit = Histogram("completion wait (done->commit)", 1)
        self.load_latency = Histogram("load exec->data latency", 2)
        self.commits_per_thread: Dict[int, int] = {}
        sim.add_commit_listener(self._on_commit)

    def _on_commit(self, uop: Uop) -> None:
        cycle = self.sim.cycle
        if uop.issue_c >= 0 and uop.dispatch_c >= 0:
            self.queue_wait.add(uop.issue_c - uop.dispatch_c)
        if uop.dispatch_c >= 0:
            self.residency.add(cycle - uop.dispatch_c)
        if uop.complete_c >= 0:
            self.exec_to_commit.add(max(0, cycle - uop.complete_c))
        if uop.is_load and uop.exec_c >= 0 and uop.complete_c >= uop.exec_c:
            self.load_latency.add(uop.complete_c - uop.exec_c)
        self.commits_per_thread[uop.tid] = (
            self.commits_per_thread.get(uop.tid, 0) + 1
        )

    def detach(self) -> None:
        self.sim.remove_commit_listener(self._on_commit)

    # ------------------------------------------------------------------
    def histograms(self) -> List["Histogram"]:
        return [self.queue_wait, self.residency,
                self.exec_to_commit, self.load_latency]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the structured exporters."""
        return {
            "histograms": {h.name: h.to_dict() for h in self.histograms()},
            "commits_per_thread": {
                str(tid): n
                for tid, n in sorted(self.commits_per_thread.items())
            },
            "fairness": round(self.fairness(), 6),
        }

    # ------------------------------------------------------------------
    def fairness(self) -> float:
        """Jain's fairness index over per-thread commit counts."""
        counts = list(self.commits_per_thread.values())
        if not counts:
            return 1.0
        total = sum(counts)
        squares = sum(c * c for c in counts)
        return (total * total) / (len(counts) * squares) if squares else 1.0

    def report(self) -> str:
        parts = [
            self.queue_wait.render(),
            self.residency.render(),
            self.exec_to_commit.render(),
            self.load_latency.render(),
            f"fairness (Jain): {self.fairness():.3f} over "
            f"{len(self.commits_per_thread)} thread(s)",
        ]
        return "\n\n".join(parts)
