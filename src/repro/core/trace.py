"""Pipeline tracing: capture per-instruction stage timing and render a
text "pipeview" (in the spirit of gem5's pipeline viewer / Konata).

Attach a :class:`PipelineTracer` to a simulator before running::

    sim = Simulator(config, programs)
    tracer = PipelineTracer(sim, max_records=400)
    for _ in range(300):
        sim.step()
    print(tracer.render(start_cycle=0, end_cycle=60))

Each committed (and, optionally, squashed) instruction becomes one row;
columns are cycles.  Stage letters:

====  =========================================
F     fetch
D     decode
n     rename / dispatch into an instruction queue
.     waiting in the queue
I     issue
-     in flight to the execute stage
E     execute (first execute-stage event)
=     completing (multi-cycle latency / memory)
W     ready to commit (register write done)
C     commit
x     squashed
====  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.simulator import Simulator
from repro.core.uop import Uop


@dataclass
class TraceRecord:
    """Timing snapshot of one dynamic instruction."""

    tid: int
    seq: int
    pc: int
    text: str
    wrong_path: bool
    squashed: bool
    fetch_c: int
    decode_c: int
    dispatch_c: int
    issue_c: int
    exec_c: int
    complete_c: int
    commit_c: int   # -1 for squashed instructions

    @classmethod
    def from_uop(cls, uop: Uop, commit_cycle: int,
                 squashed: bool = False) -> "TraceRecord":
        return cls(
            tid=uop.tid, seq=uop.seq, pc=uop.pc, text=str(uop.instr),
            wrong_path=uop.wrong_path, squashed=squashed,
            fetch_c=uop.fetch_c, decode_c=uop.decode_c,
            dispatch_c=uop.dispatch_c, issue_c=uop.issue_c,
            exec_c=uop.exec_c, complete_c=uop.complete_c,
            commit_c=commit_cycle,
        )

    def last_cycle(self) -> int:
        return max(self.fetch_c, self.decode_c, self.dispatch_c,
                   self.issue_c, self.exec_c, self.complete_c,
                   self.commit_c)

    def lane(self, start: int, end: int) -> str:
        """Render this instruction's stage occupancy for [start, end)."""
        cells = []
        for cycle in range(start, end):
            cells.append(self._cell(cycle))
        return "".join(cells)

    def _cell(self, cycle: int) -> str:
        if cycle < self.fetch_c:
            return " "
        if cycle == self.fetch_c:
            return "F"
        if cycle == self.decode_c:
            return "D"
        if cycle == self.dispatch_c:
            return "n"
        if self.squashed and cycle > self.last_cycle():
            return " "
        if self.squashed and cycle == self.last_cycle():
            return "x"
        if self.issue_c >= 0 and cycle == self.issue_c:
            return "I"
        if self.issue_c >= 0 and self.exec_c >= 0 and \
                self.issue_c < cycle < self.exec_c:
            return "-"
        if self.exec_c >= 0 and cycle == self.exec_c:
            return "E"
        if self.exec_c >= 0 and self.complete_c > self.exec_c and \
                self.exec_c < cycle <= self.complete_c:
            return "="
        if self.commit_c >= 0 and cycle == self.commit_c:
            return "C"
        if self.commit_c >= 0 and cycle > self.commit_c:
            return " "
        if self.dispatch_c >= 0 and cycle > self.dispatch_c and (
                self.issue_c < 0 or cycle < self.issue_c):
            return "."
        if self.complete_c >= 0 and self.complete_c < cycle and (
                self.commit_c < 0 or cycle < self.commit_c):
            return "W"
        return " "


class PipelineTracer:
    """Collects TraceRecords from a live simulator."""

    def __init__(self, sim: Simulator, max_records: int = 2000,
                 include_squashed: bool = True, start_cycle: int = 0):
        self.sim = sim
        self.max_records = max_records
        self.include_squashed = include_squashed
        #: Instructions committing/squashing before this cycle are not
        #: recorded (so a late window doesn't exhaust ``max_records``).
        self.start_cycle = start_cycle
        self.records: List[TraceRecord] = []
        sim.add_commit_listener(self._on_commit)
        if include_squashed:
            sim.add_squash_listener(self._on_squash)

    # ------------------------------------------------------------------
    def _on_commit(self, uop: Uop) -> None:
        if self.sim.cycle < self.start_cycle:
            return
        if len(self.records) < self.max_records:
            self.records.append(
                TraceRecord.from_uop(uop, commit_cycle=self.sim.cycle)
            )

    def _on_squash(self, uop: Uop) -> None:
        if self.sim.cycle < self.start_cycle:
            return
        if len(self.records) < self.max_records:
            self.records.append(
                TraceRecord.from_uop(uop, commit_cycle=-1, squashed=True)
            )

    def detach(self) -> None:
        self.sim.remove_commit_listener(self._on_commit)
        if self.include_squashed:
            self.sim.remove_squash_listener(self._on_squash)

    # ------------------------------------------------------------------
    def window(self, start_cycle: int, end_cycle: int,
               tid: Optional[int] = None) -> List[TraceRecord]:
        out = [
            r for r in self.records
            if r.fetch_c < end_cycle and r.last_cycle() >= start_cycle
            and (tid is None or r.tid == tid)
        ]
        out.sort(key=lambda r: (r.fetch_c, r.tid, r.seq))
        return out

    def render(self, start_cycle: int, end_cycle: int,
               tid: Optional[int] = None, max_rows: int = 64) -> str:
        """Text pipeview for the cycle window."""
        rows = self.window(start_cycle, end_cycle, tid)[:max_rows]
        width = end_cycle - start_cycle
        ruler_top = "".join(
            str((start_cycle + i) // 10 % 10) if (start_cycle + i) % 5 == 0
            else " "
            for i in range(width)
        )
        ruler = "".join(str((start_cycle + i) % 10) for i in range(width))
        head = f"{'thread:pc':<14s} {'instruction':<24s} "
        lines = [
            head + ruler_top,
            " " * len(head) + ruler,
        ]
        for r in rows:
            label = f"t{r.tid}:{r.pc:#x}"
            wp = "*" if r.wrong_path else " "
            lines.append(
                f"{label:<14s}{wp}{r.text[:23]:<24s}"
                + r.lane(start_cycle, end_cycle)
            )
        lines.append("")
        lines.append("F fetch  D decode  n dispatch  . queued  I issue  "
                     "- regread  E exec  = completing  C commit  x squashed  "
                     "* wrong-path")
        return "\n".join(lines)
