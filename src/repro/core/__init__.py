"""The SMT processor core — the paper's primary contribution.

The core is an 8-wide, out-of-order, simultaneous multithreading pipeline
(Figure 1/2 of the paper): shared fetch unit with configurable
partitioning and thread-choice policies, register renaming onto shared
physical register files, two 32-entry instruction queues, nine functional
units, optimistic load-use scheduling with squash on miss/bank-conflict,
and per-thread in-order retirement.
"""

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator, SimResult

__all__ = ["SMTConfig", "Simulator", "SimResult"]
