"""Statistics: every metric the paper reports (Tables 3 and 4, plus the
fetch/issue accounting used throughout Sections 4-7).

Counters accumulate only while measurement is enabled, so a warmup
period can populate caches and predictors without polluting results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Stats:
    """Raw event counters plus occupancy accumulators."""

    cycles: int = 0
    committed: int = 0                 # useful (correct-path) instructions

    # Fetch.
    fetched_total: int = 0
    fetched_wrong_path: int = 0
    fetch_cycles_active: int = 0       # cycles with >= 1 instruction fetched
    icache_miss_stall_events: int = 0

    # Issue.
    issued_total: int = 0
    issued_wrong_path: int = 0
    squashed_optimistic: int = 0       # optimistically issued then squashed

    # Queues.
    int_iq_full_cycles: int = 0
    fp_iq_full_cycles: int = 0
    queue_population_sum: int = 0      # combined, sampled once per cycle

    # Renaming.
    out_of_registers_cycles: int = 0

    # Branching.
    cond_branches_resolved: int = 0
    cond_branch_mispredicts: int = 0
    jumps_resolved: int = 0            # indirect jumps + returns
    jump_mispredicts: int = 0

    # Per-thread commit counts (per-benchmark visibility).
    committed_per_thread: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def wrong_path_fetched_frac(self) -> float:
        return (
            self.fetched_wrong_path / self.fetched_total
            if self.fetched_total else 0.0
        )

    @property
    def wrong_path_issued_frac(self) -> float:
        return (
            self.issued_wrong_path / self.issued_total
            if self.issued_total else 0.0
        )

    @property
    def squashed_optimistic_frac(self) -> float:
        return (
            self.squashed_optimistic / self.issued_total
            if self.issued_total else 0.0
        )

    @property
    def useful_fetch_per_cycle(self) -> float:
        if not self.cycles:
            return 0.0
        return (self.fetched_total - self.fetched_wrong_path) / self.cycles

    @property
    def fetch_per_cycle(self) -> float:
        return self.fetched_total / self.cycles if self.cycles else 0.0

    @property
    def fetch_active_frac(self) -> float:
        """Fraction of cycles on which at least one instruction was fetched."""
        return self.fetch_cycles_active / self.cycles if self.cycles else 0.0

    @property
    def avg_queue_population(self) -> float:
        return self.queue_population_sum / self.cycles if self.cycles else 0.0

    @property
    def int_iq_full_frac(self) -> float:
        return self.int_iq_full_cycles / self.cycles if self.cycles else 0.0

    @property
    def fp_iq_full_frac(self) -> float:
        return self.fp_iq_full_cycles / self.cycles if self.cycles else 0.0

    @property
    def out_of_registers_frac(self) -> float:
        return self.out_of_registers_cycles / self.cycles if self.cycles else 0.0

    @property
    def branch_mispredict_rate(self) -> float:
        return (
            self.cond_branch_mispredicts / self.cond_branches_resolved
            if self.cond_branches_resolved else 0.0
        )

    @property
    def jump_mispredict_rate(self) -> float:
        return (
            self.jump_mispredicts / self.jumps_resolved
            if self.jumps_resolved else 0.0
        )

    def mpki(self, misses: int) -> float:
        """Misses per thousand committed instructions."""
        return 1000.0 * misses / self.committed if self.committed else 0.0
