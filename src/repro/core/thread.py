"""Per-hardware-context state.

A :class:`ThreadContext` owns one program's functional emulator (the
correct-path oracle), the thread's fetch PC and path state (correct vs
wrong path after a misprediction), its reorder buffer, and the per-thread
counters behind the BRCOUNT / MISSCOUNT / ICOUNT fetch heuristics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.isa.emulator import Emulator, OracleRecord
from repro.isa.program import DATA_BASE, Program
from repro.core.uop import Uop

#: Distinct physical address spaces per context: the multiprogrammed
#: workload shares no cache or TLB state between threads (Section 3).
ADDRESS_SPACE_STRIDE = 1 << 28
_PAGE_SHIFT = 13
_PAGE_MASK = (1 << _PAGE_SHIFT) - 1

#: Sentinel for "blocked until further notice" (resolved by an event).
BLOCKED = 1 << 60


class ThreadContext:
    """All per-context state outside the shared pipeline structures."""

    def __init__(self, tid: int, program: Program):
        self.tid = tid
        self.program = program
        self.emulator = Emulator(program)
        #: Correct-path records produced by the oracle but not yet
        #: consumed by fetch (lookahead buffer).
        self._oracle_buf: Deque[OracleRecord] = deque()
        self.on_correct_path = True
        self.fetch_pc: int = program.entry
        #: The thread may not fetch before this cycle (misfetch bubbles,
        #: I-cache misses, exec-resolved redirects use BLOCKED).
        self.fetch_blocked_until = 0
        #: Reorder buffer: program-order list of in-flight uops.
        self.rob: Deque[Uop] = deque()
        #: Next fetch sequence number (program order within the thread).
        self.next_seq = 0
        # ---- fetch-policy feedback counters -------------------------
        #: Instructions fetched but not yet issued (ICOUNT).
        self.unissued_count = 0
        #: Control instructions fetched but not yet executed (BRCOUNT).
        self.unresolved_branches = 0
        #: Completion cycles of outstanding D-cache misses (MISSCOUNT).
        self.outstanding_misses: List[int] = []
        # ---- speculation bookkeeping --------------------------------
        #: Issue cycles of same-thread branches not yet issued / recently
        #: issued, for the Section 7 restricted-speculation modes.
        self.wrong_path_seq_start: Optional[int] = None
        #: Most recent correct-path data address (for wrong-path load
        #: address synthesis).
        self.last_data_addr: int = DATA_BASE
        #: Physical line number of an I-cache miss whose fill will be
        #: delivered straight to the fetch unit when it completes (the
        #: MSHR forwards the data even if the line is evicted again by a
        #: competing thread before the retry — without this, two threads
        #: whose hot lines collide in the direct-mapped I-cache can
        #: livelock evicting each other).
        self.pending_ifill_line: Optional[int] = None
        # Address-space offset for shared (physically indexed) structures.
        self.asid_offset = tid * ADDRESS_SPACE_STRIDE
        self._frames: dict = {}

    # ------------------------------------------------------------------
    def phys_addr(self, vaddr: int) -> int:
        """Virtual-to-physical mapping with pseudo-random page colouring.

        A real OS assigns physical frames essentially arbitrarily, so
        identical virtual layouts in different processes land on
        *different* cache sets.  Without this, every context's hot lines
        would collide pairwise in the direct-mapped L1s (8 KiB pages on a
        32 KiB cache give only four page colours) and thrash
        pathologically.  The mapping XORs a per-thread hash into the low
        frame bits, bijectively within each 8-page group.
        """
        page = vaddr >> _PAGE_SHIFT
        frame = self._frames.get(page)
        if frame is None:
            h = (((page >> 3) * 1103515245 + self.tid * 12345) >> 4) & 7
            frame = page ^ h
            self._frames[page] = frame
        return self.asid_offset + (frame << _PAGE_SHIFT) + (vaddr & _PAGE_MASK)

    # ------------------------------------------------------------------
    def oracle_peek(self) -> OracleRecord:
        """The next correct-path record (refilling the lookahead)."""
        if not self._oracle_buf:
            self._oracle_buf.append(self.emulator.step())
        return self._oracle_buf[0]

    def oracle_pop(self) -> OracleRecord:
        if not self._oracle_buf:
            self._oracle_buf.append(self.emulator.step())
        return self._oracle_buf.popleft()

    def oracle_lookahead(self) -> int:
        """Records produced by the emulator but not yet consumed by
        fetch.  ``emulator.instret - oracle_lookahead()`` is therefore
        the number of correct-path instructions fetch has consumed —
        the position verification oracles must replay to."""
        return len(self._oracle_buf)

    # ------------------------------------------------------------------
    def misscount(self, cycle: int) -> int:
        """Outstanding D-cache misses (pruning completed ones)."""
        if self.outstanding_misses:
            self.outstanding_misses = [
                c for c in self.outstanding_misses if c > cycle
            ]
        return len(self.outstanding_misses)

    # ------------------------------------------------------------------
    def wrong_path_load_address(self, pc: int, seq: int) -> int:
        """Deterministic synthetic address for a wrong-path load.

        Wrong-path loads on real hardware compute addresses from stale
        register values, so they land near the data the thread was just
        touching: hash within a small window around the last correct-path
        data address (falling back to the data base when none is known).
        """
        h = (pc * 2654435761 + seq * 0x9E3779B9) & 0xFFFF_FFFF
        base = self.last_data_addr - (self.last_data_addr % 8)
        offset = (h % 4096) & ~0x7
        addr = base + offset - 2048
        limit = DATA_BASE + self.program.data.size - 8
        if addr < DATA_BASE:
            addr = DATA_BASE
        elif addr > limit:
            addr = limit
        return addr - (addr % 8)

    def __repr__(self) -> str:
        path = "correct" if self.on_correct_path else "wrong"
        return (
            f"ThreadContext(t{self.tid} {self.program.name} pc={self.fetch_pc:#x} "
            f"{path}-path rob={len(self.rob)})"
        )
