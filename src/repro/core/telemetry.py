"""Time-series telemetry: periodic interval samples from a live simulator.

The paper's analysis (Sections 4-7) is read off internal, per-interval
state — how many instructions each thread holds in the pre-issue stages
(the quantity ICOUNT acts on), how full the instruction queues are, how
fetch bandwidth is shared between threads — not just end-of-run
averages.  :class:`TelemetrySampler` captures exactly that stream:
attach one to a :class:`~repro.core.simulator.Simulator` and every
``interval`` cycles it appends a :class:`TelemetrySample` carrying

* per-thread ICOUNT (instructions fetched but not yet issued) and the
  int/fp instruction-queue populations, sampled at the interval edge;
* outstanding D-cache misses summed over threads (MISSCOUNT's input);
* instructions fetched in the interval, total and per thread (and the
  per-thread fetch *share* derived from them);
* instructions issued and committed in the interval (commits also per
  thread, counted via the commit-listener chain so they are exact even
  outside the measurement window).

Overhead: when no sampler is attached the simulator's only cost is one
``is None`` test per cycle; attached, the per-cycle cost is a single
integer comparison, with real work only at interval boundaries.

Issued counts are deltas of ``Stats.issued_total`` and therefore only
advance while ``sim.measuring`` is true; each sample records the
``measuring`` flag so consumers can tell warmup intervals apart.

Samples serialise via :meth:`TelemetrySample.to_dict` /
:meth:`TelemetrySampler.to_rows`; the structured exporters in
:mod:`repro.experiments.export` embed them in schema-versioned run
documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.simulator import Simulator
from repro.core.uop import Uop


@dataclass
class TelemetrySample:
    """Counters for one sampling interval ``[cycle_start, cycle_end)``."""

    cycle_start: int
    cycle_end: int
    measuring: bool
    #: Per-thread instructions fetched but not yet issued, at the
    #: interval's closing edge (the ICOUNT policy input).
    icount: List[int]
    #: Instruction-queue populations at the closing edge.
    int_iq: int
    fp_iq: int
    #: Outstanding D-cache misses over all threads at the closing edge.
    outstanding_misses: int
    #: Interval deltas.
    fetched: int
    fetched_per_thread: List[int]
    issued: int
    committed: int
    committed_per_thread: List[int]

    @property
    def cycles(self) -> int:
        return self.cycle_end - self.cycle_start

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def fetch_share(self) -> List[float]:
        """Each thread's fraction of the interval's fetched instructions."""
        total = self.fetched
        if not total:
            return [0.0] * len(self.fetched_per_thread)
        return [n / total for n in self.fetched_per_thread]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycle_start": self.cycle_start,
            "cycle_end": self.cycle_end,
            "measuring": self.measuring,
            "icount": list(self.icount),
            "int_iq": self.int_iq,
            "fp_iq": self.fp_iq,
            "outstanding_misses": self.outstanding_misses,
            "fetched": self.fetched,
            "fetched_per_thread": list(self.fetched_per_thread),
            "fetch_share": [round(s, 6) for s in self.fetch_share],
            "issued": self.issued,
            "committed": self.committed,
            "committed_per_thread": list(self.committed_per_thread),
            "ipc": round(self.ipc, 6),
        }


class TelemetrySampler:
    """Collects :class:`TelemetrySample` s from a live simulator.

    The sampler installs itself as ``sim.telemetry`` (the cycle-edge
    hook) and registers a commit listener (for exact commit counts);
    :meth:`detach` removes both.  Listener registration composes with
    the tracer, metrics collector, and sanitizer, in any attach/detach
    order.
    """

    def __init__(self, sim: Simulator, interval: int = 100,
                 max_samples: int = 100_000, autostart: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.max_samples = max_samples
        self.samples: List[TelemetrySample] = []
        self._attached = False
        #: Cycle at which the open interval closes (read inline by
        #: ``Simulator.step``; ``None`` means never).
        self.next_sample_cycle: Optional[int] = None
        if autostart:
            self.attach()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        sim = self.sim
        if sim.telemetry is not None:
            raise RuntimeError("simulator already has a telemetry sampler")
        sim.add_commit_listener(self._on_commit)
        sim.telemetry = self
        self._attached = True
        self._open_interval(sim.cycle)

    def detach(self) -> None:
        """Close any partial interval and unhook from the simulator."""
        if not self._attached:
            return
        self.finish()
        sim = self.sim
        sim.telemetry = None
        sim.remove_commit_listener(self._on_commit)
        self._attached = False
        self.next_sample_cycle = None

    def finish(self) -> None:
        """Close the open interval early (e.g. at end of run).

        ``sim.cycle`` is the next *unexecuted* cycle, so the last
        executed one is ``sim.cycle - 1``.
        """
        if self._attached and self.sim.cycle > self._start:
            self._close_interval(self.sim.cycle - 1)

    # ------------------------------------------------------------------
    def _open_interval(self, cycle: int) -> None:
        sim = self.sim
        self._start = cycle
        # ``step`` samples while processing cycle ``c`` (before the
        # counter increments), so closing at c covers [start, c + 1).
        self.next_sample_cycle = cycle + self.interval - 1
        self._seq_base = [t.next_seq for t in sim.threads]
        self._issued_base = sim.stats.issued_total
        self._stats_id = id(sim.stats)
        self._commits = 0
        self._commits_per_thread = [0] * len(sim.threads)

    def _close_interval(self, last_cycle: int) -> None:
        sim = self.sim
        end = last_cycle + 1
        stats = sim.stats
        # ``Simulator.run`` swaps in a fresh Stats object when the
        # measured window opens; a delta across the swap is meaningless,
        # so restart from zero in that case.
        issued_base = (
            self._issued_base if id(stats) == self._stats_id else 0
        )
        fetched_per_thread = [
            t.next_seq - base for t, base in zip(sim.threads, self._seq_base)
        ]
        if len(self.samples) < self.max_samples:
            self.samples.append(TelemetrySample(
                cycle_start=self._start,
                cycle_end=end,
                measuring=sim.measuring,
                icount=[t.unissued_count for t in sim.threads],
                int_iq=len(sim.int_queue.entries),
                fp_iq=len(sim.fp_queue.entries),
                outstanding_misses=sum(
                    t.misscount(last_cycle) for t in sim.threads
                ),
                fetched=sum(fetched_per_thread),
                fetched_per_thread=fetched_per_thread,
                issued=stats.issued_total - issued_base,
                committed=self._commits,
                committed_per_thread=list(self._commits_per_thread),
            ))
        self._open_interval(end)

    # ------------------------------------------------------------------
    # Hooks.
    # ------------------------------------------------------------------
    def sample(self, cycle: int) -> None:
        """Interval boundary (called from ``Simulator.step``)."""
        self._close_interval(cycle)

    def _on_commit(self, uop: Uop) -> None:
        self._commits += 1
        self._commits_per_thread[uop.tid] += 1

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------
    def measured(self) -> List[TelemetrySample]:
        """Only the samples taken inside the measurement window."""
        return [s for s in self.samples if s.measuring]

    def to_rows(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.samples]

    def report(self, max_rows: int = 20) -> str:
        """Compact text table of the sampled stream (tail-truncated)."""
        samples = self.samples
        if not samples:
            return "telemetry: (no samples)"
        n_threads = len(samples[0].icount)
        head = (f"{'cycles':>13s} {'IPC':>5s} {'fetch':>5s} {'issue':>5s} "
                f"{'IQ int/fp':>9s} {'miss':>4s}  "
                f"icount[{n_threads}]        fetch-share")
        lines = [head]
        shown = samples[:max_rows]
        for s in shown:
            icounts = ",".join(str(c) for c in s.icount)
            share = ",".join(f"{x:.2f}" for x in s.fetch_share)
            lines.append(
                f"{s.cycle_start:>6d}-{s.cycle_end:<6d} {s.ipc:>5.2f} "
                f"{s.fetched:>5d} {s.issued:>5d} "
                f"{s.int_iq:>4d}/{s.fp_iq:<4d} {s.outstanding_misses:>4d}  "
                f"[{icounts}] [{share}]"
            )
        hidden = len(samples) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more interval(s)")
        return "\n".join(lines)
