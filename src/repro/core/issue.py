"""Issue selection (Section 6).

Each cycle the issue logic walks the searchable entries of both queues
and selects ready instructions subject to functional-unit limits: 6
integer units (4 of which execute loads and stores) and 3 FP units —
peak issue bandwidth 9.

Issue priority policies:

OLDEST
    Deepest-in-queue first (the default everywhere in the paper).
OPT_LAST
    Optimistically issuable instructions (consumers of loads whose
    hit/miss is still unknown) go after all others.
SPEC_LAST
    Speculative instructions (behind an unexecuted branch of the same
    thread) go after all others.
BRANCH_FIRST
    Branches as early as possible, to find mispredictions quickly.

Readiness additionally requires memory disambiguation for loads (no
older same-thread store with a matching partial address still pending)
and the Section 7 restricted-speculation constraints when enabled.
"""

from __future__ import annotations

from operator import attrgetter
from typing import TYPE_CHECKING, List

from repro.core.uop import S_ISSUED, S_QUEUED, Uop

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


class IssueUnit:
    """Ready-instruction selection and wakeup scheduling."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # All policies but OPT_LAST have cycle-independent sort keys;
        # building the key function once avoids a closure per cycle.
        policy = sim.cfg.issue_policy
        self._static_key = (
            None if policy == "OPT_LAST" else self._policy_key(0)
        )

    # ------------------------------------------------------------------
    def issue_cycle(self, cycle: int) -> None:
        sim = self.sim
        cfg = sim.cfg
        int_left = cfg.int_units
        ls_left = cfg.ls_units
        fp_left = cfg.fp_units
        infinite = cfg.infinite_fus

        candidates: List[Uop] = sim.int_queue.waiting()
        candidates.extend(sim.fp_queue.waiting())
        if not candidates:
            return
        candidates.sort(key=self._static_key or self._policy_key(cycle))

        for uop in candidates:
            if not infinite:
                if uop.is_fp_op:
                    if fp_left <= 0:
                        continue
                elif uop.is_load or uop.is_store:
                    if ls_left <= 0 or int_left <= 0:
                        continue
                elif int_left <= 0:
                    continue

            if uop.dispatch_c >= cycle:
                continue  # entered the queue this cycle; issueable next
            if not sim.renamer.sources_ready(uop, cycle):
                continue
            if uop.is_load and not self._load_disambiguated(uop):
                continue
            if cfg.speculation != "full" and not self._speculation_allows(uop, cycle):
                continue

            self._do_issue(uop, cycle)
            if not infinite:
                if uop.is_fp_op:
                    fp_left -= 1
                elif uop.is_load or uop.is_store:
                    ls_left -= 1
                    int_left -= 1
                else:
                    int_left -= 1

    # ------------------------------------------------------------------
    def _policy_key(self, cycle: int):
        policy = self.sim.cfg.issue_policy
        if policy == "OLDEST":
            # attrgetter builds the same (dispatch_c, seq) tuple as the
            # former lambda, without a Python-level frame per element.
            return attrgetter("dispatch_c", "seq")
        if policy == "OPT_LAST":
            return lambda u: (self._is_optimistic(u, cycle), u.dispatch_c, u.seq)
        if policy == "SPEC_LAST":
            return lambda u: (self._is_speculative(u), u.dispatch_c, u.seq)
        if policy == "BRANCH_FIRST":
            return lambda u: (not u.is_control, u.dispatch_c, u.seq)
        raise ValueError(f"unknown issue policy {policy!r}")

    def _is_optimistic(self, uop: Uop, cycle: int) -> bool:
        """Would this instruction consume a load result whose hit/miss is
        not yet known?"""
        renamer = self.sim.renamer
        for preg, is_fp in uop.src_pregs:
            producer = renamer.file_for(is_fp).producer[preg]
            if (
                producer is not None
                and producer.is_load
                and producer.state == S_ISSUED
                and producer.dcache_hit is None
            ):
                return True
        return False

    def _any_inflight_source(self, uop: Uop) -> bool:
        """Any source produced by an instruction that has issued but not
        yet passed its execute stage?  Such a consumer is (transitively)
        squashable and must keep its queue entry until confirmation."""
        renamer = self.sim.renamer
        for preg, is_fp in uop.src_pregs:
            producer = renamer.file_for(is_fp).producer[preg]
            if producer is not None and producer.state == S_ISSUED:
                return True
        return False

    def _is_speculative(self, uop: Uop) -> bool:
        """Behind an unexecuted control instruction of the same thread?"""
        for branch in self.sim.pending_branches[uop.tid]:
            if branch.seq >= uop.seq:
                break
            if branch.exec_c == -1 or branch.state == S_QUEUED:
                return True
        return False

    # ------------------------------------------------------------------
    def _load_disambiguated(self, uop: Uop) -> bool:
        """No older same-thread store with a matching partial address is
        still pending (Section 2.1's 10-bit disambiguation)."""
        for store in self.sim.pending_stores[uop.tid]:
            if store.seq >= uop.seq:
                break
            if store.mem_key == uop.mem_key and store.dcache_hit is None:
                return False
        return True

    def _speculation_allows(self, uop: Uop, cycle: int) -> bool:
        """Section 7 restricted-speculation modes."""
        mode = self.sim.cfg.speculation
        for branch in self.sim.pending_branches[uop.tid]:
            if branch.seq >= uop.seq:
                break
            if branch.issue_c == -1:
                return False
            if mode == "no_wrong_path" and cycle < branch.issue_c + 4:
                return False
        return True

    # ------------------------------------------------------------------
    def _do_issue(self, uop: Uop, cycle: int) -> None:
        sim = self.sim
        cfg = sim.cfg
        uop.optimistic = self._is_optimistic(uop, cycle)
        uop.state = S_ISSUED
        uop.issue_c = cycle
        uop.exec_c = cycle + cfg.exec_offset
        sim.schedule_exec(uop)
        sim.threads[uop.tid].unissued_count -= 1

        if sim.measuring:
            sim.stats.issued_total += 1
            if uop.wrong_path:
                sim.stats.issued_wrong_path += 1

        # Wakeup scheduling.
        if uop.dest_preg is not None:
            if uop.is_load:
                if cfg.optimistic_issue:
                    # Optimistic: dependents may issue next cycle; the
                    # exec stage squashes them on a miss or bank conflict.
                    sim.renamer.set_wakeup(uop, cycle + 1)
                # Conservative mode leaves the register not-ready; the
                # exec stage wakes dependents once hit/miss is known.
            else:
                sim.renamer.set_wakeup(uop, cycle + uop.latency)

        # Queue-slot release: ordinary instructions free their entry at
        # issue; instructions whose producers are still in flight (the
        # optimistic case, transitively) are held until it is known they
        # won't be squashed (Section 2) — their entry is released at
        # their own execute stage.
        if not self._any_inflight_source(uop):
            uop.iq_freed = True
