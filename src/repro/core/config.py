"""Machine configuration: every knob the paper turns.

Fetch schemes are named ``alg.num1.num2`` in the paper (e.g. RR.2.8 =
round-robin priority, 2 threads per cycle, up to 8 instructions each);
here ``fetch_policy`` is the *alg* part and ``fetch_threads``/
``fetch_per_thread`` are *num1*/*num2*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


#: The *static* fetch policies.  ICOUNT_BRCOUNT is the weighted
#: combination the paper suggests as future work ("perhaps the best
#: performance could be achieved from a weighted combination of them");
#: the rest are the paper's Section 5.2 policies.  ``fetch_policy`` also
#: accepts adaptive meta-policy specs (``HYSTERESIS``, ``BANDIT:...``,
#: ``TOURNAMENT:A/B``) — the full registry lives in
#: :mod:`repro.policy.registry` (see ``repro policies``).
FETCH_POLICIES = ("RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN",
                  "ICOUNT_BRCOUNT")
ISSUE_POLICIES = ("OLDEST", "OPT_LAST", "SPEC_LAST", "BRANCH_FIRST")
SPECULATION_MODES = ("full", "no_pass_branch", "no_wrong_path")


@dataclass
class SMTConfig:
    """Full machine configuration.  Defaults are the paper's baseline
    (Section 2.1) with the RR.1.8 fetch scheme."""

    # ---- contexts ----------------------------------------------------
    n_threads: int = 8

    # ---- fetch unit (Section 5) --------------------------------------
    fetch_policy: str = "RR"
    fetch_threads: int = 1        # num1: threads fetched per cycle
    fetch_per_thread: int = 8     # num2: max instructions per thread
    fetch_width: int = 8          # total instructions fetched per cycle
    decode_width: int = 8
    rename_width: int = 8
    itag: bool = False            # early I-cache tag lookup (Section 5.3)

    # ---- instruction queues (Sections 2.1, 5.3) ----------------------
    iq_size: int = 32             # searchable entries per queue
    bigq: bool = False            # double capacity, search only iq_size

    # ---- issue (Section 6) -------------------------------------------
    issue_policy: str = "OLDEST"
    int_units: int = 6
    ls_units: int = 4             # subset of the integer units
    fp_units: int = 3
    infinite_fus: bool = False    # Section 7 issue-bandwidth experiment
    commit_width: int = 8

    # ---- registers (Sections 2, 7) -----------------------------------
    #: Renaming registers per file beyond the architectural
    #: 32 * n_threads (the paper's default is 100).
    excess_registers: int = 100
    #: If set, overrides the per-file physical register count outright
    #: (Figure 7 fixes 200 total and varies contexts).
    phys_regs_total: Optional[int] = None

    # ---- pipeline (Section 2, Figure 2) -------------------------------
    #: True: the SMT pipeline with two register-read stages (mispredict
    #: penalty 7, optimistic issue).  False: the conventional superscalar
    #: pipeline (penalty 6, no optimistic squash) used as the baseline.
    smt_pipeline: bool = True
    #: Optimistic load-use scheduling (squash dependents on L1 miss or
    #: bank conflict).  Only meaningful with the SMT pipeline; turning it
    #: off schedules dependents conservatively at the 2-cycle load-use
    #: distance (an ablation).
    optimistic_issue: bool = True

    # ---- branch prediction (Sections 2.1, 7) --------------------------
    btb_entries: int = 256
    btb_assoc: int = 4
    pht_entries: int = 2048
    history_bits: int = 11
    ras_depth: int = 12
    btb_thread_tags: bool = True      # ablation: phantom branches if False
    shared_history: bool = False      # ablation: one global history register
    perfect_branch_prediction: bool = False   # Section 7 experiment

    # ---- speculation (Section 7) --------------------------------------
    #: "full": normal speculative execution.
    #: "no_pass_branch": instructions may not issue before an older
    #:   branch of the same thread has issued.
    #: "no_wrong_path": instructions wait 4 cycles after the preceding
    #:   branch issues, guaranteeing no wrong-path instruction issues.
    speculation: str = "full"

    # ---- memory (Sections 2.1, 7) --------------------------------------
    infinite_memory_bandwidth: bool = False
    #: Bits of the address used for memory disambiguation (Section 2.1).
    disambiguation_bits: int = 10

    # ---- workload / run control ----------------------------------------
    seed: int = 0

    # --------------------------------------------------------------------
    def __post_init__(self):
        if not 1 <= self.n_threads <= 32:
            raise ValueError("n_threads must be in 1..32")
        # Registry-backed validation: unknown names, malformed specs,
        # and bad meta-policy options all fail here, at construction
        # time, with a message listing the valid registry names —
        # instead of deep inside the fetch loop.
        from repro.policy.registry import validate_spec
        validate_spec(self.fetch_policy)
        if self.issue_policy not in ISSUE_POLICIES:
            raise ValueError(f"unknown issue policy {self.issue_policy!r}")
        if self.speculation not in SPECULATION_MODES:
            raise ValueError(f"unknown speculation mode {self.speculation!r}")
        if self.fetch_threads < 1 or self.fetch_per_thread < 1:
            raise ValueError("fetch partitioning values must be positive")
        if self.ls_units > self.int_units:
            raise ValueError("load/store units are a subset of integer units")
        if self.phys_regs_total is not None:
            if self.phys_regs_total < 32 * self.n_threads + 1:
                raise ValueError(
                    "phys_regs_total must exceed the architectural registers"
                )

    # --------------------------------------------------------------------
    @property
    def scheme_name(self) -> str:
        """The paper's alg.num1.num2 name for the fetch scheme."""
        return f"{self.fetch_policy}.{self.fetch_threads}.{self.fetch_per_thread}"

    @property
    def physical_registers(self) -> int:
        """Physical registers per file (integer and FP each)."""
        if self.phys_regs_total is not None:
            return self.phys_regs_total
        return 32 * self.n_threads + self.excess_registers

    @property
    def iq_capacity(self) -> int:
        """Total entries per queue (BIGQ doubles capacity)."""
        return self.iq_size * 2 if self.bigq else self.iq_size

    @property
    def exec_offset(self) -> int:
        """Issue-to-execute distance in cycles: two register-read stages
        on the SMT pipeline, one on the conventional pipeline."""
        return 3 if self.smt_pipeline else 2

    @property
    def misfetch_penalty(self) -> int:
        """Cycles of fetch lost when a taken branch's target is only
        available at decode (+1 with the ITAG front-end stage)."""
        return 2 + (1 if self.itag else 0)

    def with_options(self, **kwargs) -> "SMTConfig":
        """A copy of this config with fields replaced."""
        return replace(self, **kwargs)


def scheme(policy: str, num1: int, num2: int, **kwargs) -> SMTConfig:
    """Build a config from the paper's alg.num1.num2 fetch-scheme name."""
    return SMTConfig(
        fetch_policy=policy, fetch_threads=num1, fetch_per_thread=num2, **kwargs
    )
