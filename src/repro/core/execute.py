"""The execute stage: branch resolution, memory access, optimistic-issue
squash (Sections 2 and 6).

An instruction issued at cycle ``t`` reaches the execute stage at
``t + exec_offset`` (3 on the SMT pipeline — two register-read stages —
and 2 on the conventional pipeline).  At that point:

* **branches/jumps** resolve: mispredictions train the predictor,
  schedule a fetch redirect, and squash the thread's younger (wrong-
  path) instructions effective one cycle later;
* **loads** access the D-cache: on a miss or bank conflict, dependents
  that issued optimistically (assuming the 1-cycle load-hit latency) are
  squashed back into the queue, transitively;
* **stores** access the D-cache (retrying on bank conflicts) and
  complete once accepted;
* everything else simply completes after its latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.uop import S_DONE, S_ISSUED, S_QUEUED, Uop

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


class ExecuteUnit:
    """Processes the exec-stage events scheduled by the issue unit."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim

    # ------------------------------------------------------------------
    def execute_cycle(self, cycle: int) -> None:
        sim = self.sim
        uops = sim.pending_exec.pop(cycle, None)
        if not uops:
            return
        for uop in uops:
            if uop.state != S_ISSUED or uop.exec_c != cycle:
                continue  # squashed, or optimistically re-queued
            if uop.is_load:
                self._execute_load(uop, cycle)
            elif uop.is_store:
                self._execute_store(uop, cycle)
            else:
                self._execute_alu(uop, cycle)

    # ------------------------------------------------------------------
    def _finish(self, uop: Uop, complete_cycle: int) -> None:
        """Completion common path: the instruction has executed."""
        sim = self.sim
        uop.complete_c = complete_cycle
        uop.commit_ready_c = complete_cycle + 1  # register-write stage
        uop.state = S_DONE
        uop.iq_freed = True
        sim.renamer.confirm_producer(uop)
        if uop.is_control:
            sim.threads[uop.tid].unresolved_branches -= 1
            sim.prune_pending_branch(uop)

    # ------------------------------------------------------------------
    def _execute_alu(self, uop: Uop, cycle: int) -> None:
        if uop.is_control:
            self._resolve_control(uop, cycle)
        self._finish(uop, cycle + max(0, uop.latency - 1))

    # ------------------------------------------------------------------
    def _resolve_control(self, uop: Uop, cycle: int) -> None:
        """Branch/jump resolution and misprediction handling."""
        sim = self.sim
        if uop.wrong_path:
            # Wrong-path control instructions die at the squash; they are
            # modelled as resolving the way they were predicted and do
            # not train the predictor (they would be cancelled before
            # update on real hardware).
            return

        instr = uop.instr
        if sim.measuring:
            if uop.is_cond_branch:
                sim.stats.cond_branches_resolved += 1
                if uop.mispredicted:
                    sim.stats.cond_branch_mispredicts += 1
            elif instr.is_indirect:
                sim.stats.jumps_resolved += 1
                if uop.mispredicted:
                    sim.stats.jump_mispredicts += 1

        taken = bool(uop.actual_taken)
        target = uop.actual_target if taken else None
        sim.predictor.resolve(uop.tid, uop.pc, instr, uop.prediction, taken, target)

        if uop.mispredicted:
            # Squash is effective one cycle after discovery (wrong-path
            # instructions may still issue — and fetch — this cycle);
            # fetch resumes at the actual target then.  Predictor state
            # (history register, return stack) is repaired when the
            # squash applies, after the last wrong-path fetch.
            sim.schedule_mispredict_squash(uop, cycle + 1)

    # ------------------------------------------------------------------
    def _execute_load(self, uop: Uop, cycle: int) -> None:
        sim = self.sim
        thread = sim.threads[uop.tid]
        addr = thread.phys_addr(uop.eff_addr)
        access = sim.hierarchy.daccess(uop.tid, addr, cycle)

        if access.rejected:
            # Bank conflict (or MSHRs full): squash optimistic dependents
            # and retry the access next cycle (Section 2's second squash
            # cause).
            self._squash_optimistic_consumers(uop, cycle)
            uop.exec_c = cycle + 1
            sim.schedule_exec(uop)
            return

        if access.l1_hit and access.ready_cycle <= cycle:
            uop.dcache_hit = True
            # Re-arm the wakeup if it isn't live: conservative mode never
            # set one, and a bank-conflict retry retracted the original.
            if uop.dest_preg is not None:
                rf = sim.renamer.file_for(uop.dest_is_fp)
                if rf.ready[uop.dest_preg] > cycle:
                    sim.renamer.set_wakeup(uop, cycle)
            self._finish(uop, cycle)
            return

        # L1 miss (or TLB refill): dependents issued on the optimistic
        # 1-cycle assumption are squashed; the register becomes ready
        # when the fill returns.
        uop.dcache_hit = False
        self._squash_optimistic_consumers(uop, cycle)
        ready = max(access.ready_cycle, cycle + 1)
        wakeup = max(ready - sim.cfg.exec_offset + 1, cycle + 1)
        sim.renamer.set_wakeup(uop, wakeup)
        thread.outstanding_misses.append(ready)
        self._finish(uop, ready)

    # ------------------------------------------------------------------
    def _execute_store(self, uop: Uop, cycle: int) -> None:
        sim = self.sim
        thread = sim.threads[uop.tid]
        addr = thread.phys_addr(uop.eff_addr)
        access = sim.hierarchy.daccess(uop.tid, addr, cycle, is_store=True)
        if access.rejected:
            uop.exec_c = cycle + 1
            sim.schedule_exec(uop)
            return
        # The store retires into the hierarchy's write path; the miss (if
        # any) completes in the background and the instruction itself
        # completes now.
        uop.dcache_hit = access.l1_hit
        self._finish(uop, cycle)

    # ------------------------------------------------------------------
    def _squash_optimistic_consumers(self, producer: Uop, cycle: int) -> None:
        """Undo the issue of instructions that consumed ``producer``'s
        optimistic wakeup, transitively.

        Anything issued after ``producer`` whose sources are no longer
        ready at its own issue cycle must re-issue later; it returns to
        the queue (still holding its entry) and its own wakeup is
        retracted, which can cascade.
        """
        sim = self.sim
        if not sim.cfg.optimistic_issue:
            sim.renamer.retract_wakeup(producer)
            return
        sim.renamer.retract_wakeup(producer)

        # The in-flight window only shrinks during this loop (nothing
        # issues mid-execute), so one snapshot suffices; state is
        # re-checked each pass.
        in_flight = sim.in_flight_issued(cycle)
        changed = True
        while changed:
            changed = False
            for uop in in_flight:
                if uop is producer or uop.state != S_ISSUED:
                    continue
                if sim.renamer.sources_ready(uop, uop.issue_c):
                    continue
                # Squash back into the queue (the entry was held).
                uop.state = S_QUEUED
                uop.issue_c = -1
                uop.exec_c = -1
                uop.squash_count += 1
                uop.iq_freed = False
                sim.threads[uop.tid].unissued_count += 1
                sim.renamer.retract_wakeup(uop)
                if sim.measuring:
                    sim.stats.squashed_optimistic += 1
                changed = True
