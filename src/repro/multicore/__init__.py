"""Multi-core SMT: N independent cores, a thread-to-core allocation
layer, and an open-system workload driver.

The paper models one SMT core; the modern question (SYNPA, the
thread-to-core allocation papers in PAPERS.md) is *which threads share
a core*.  This package generalises the reproduction:

* :mod:`repro.multicore.machine` — :class:`MultiCoreSimulator`, N
  independent :class:`~repro.core.simulator.Simulator` cores stepped in
  lockstep, plus the static-partition constructor the single-core
  equivalence tests pin down.
* :mod:`repro.multicore.alloc` — the allocation-policy registry
  (RANDOM, ROUND_ROBIN, LOAD, PAIRING), mirroring the fetch-policy
  registry's spec grammar and error messages.
* :mod:`repro.multicore.driver` — the open-system driver: jobs arrive
  from a seeded distribution or a JSONL trace, queue, get allocated to
  a core, run to completion, and retire; the run reports per-job
  latency, per-core utilization, and throughput percentiles.
"""

from repro.multicore.alloc import (  # noqa: F401
    Allocator,
    AllocationError,
    CoreView,
    allocator_names,
    make_allocator,
    validate_alloc_spec,
)
from repro.multicore.driver import (  # noqa: F401
    ArrivalConfig,
    DriverInvariantError,
    JobSpec,
    MulticoreResult,
    MulticoreRunSpec,
    OpenSystemDriver,
    generate_arrivals,
    load_trace,
    run_open_system,
)
from repro.multicore.machine import MultiCoreSimulator  # noqa: F401
