"""Open-system workload driver for the multicore machine.

Jobs arrive over time (from a seeded arrival distribution or a JSONL
trace), wait in a FIFO queue, get allocated to a core by a registry
allocation policy, run until their thread has committed its service
demand, and retire — simulating service traffic against an N-core SMT
machine and reporting latency/throughput distributions instead of
steady-state IPC.

Model
-----
Time advances in fixed *quanta* (driver ticks).  Each tick:

1. jobs whose arrival cycle has passed join the queue (FIFO by
   ``(arrival_cycle, job_id)``);
2. the allocator places queued jobs onto cores with free hardware
   contexts (one decision per job, in queue order);
3. every core whose resident set changed is (re)built — an allocation
   event flushes the core, modelling the context-switch drain; jobs
   keep their cumulative committed-instruction progress across
   rebuilds;
4. every occupied core advances one quantum (through the standard
   ``run_cycles`` path, so the fast-step loop applies whenever no
   sanitizer is attached);
5. jobs whose committed instructions reached their service demand
   retire (completion is detected at quantum granularity, like an OS
   scheduler tick);
6. per-job telemetry snapshots (IPC proxy, IQ pressure, outstanding
   miss rate) are refreshed for the PAIRING policy;
7. the driver's own invariants are checked (conservation, single
   allocation, per-core capacity) — a breach raises
   :class:`DriverInvariantError` immediately.

Determinism: a run is a pure function of its
:class:`MulticoreRunSpec`.  Arrivals derive from ``random.Random``
seeded by the spec, allocator randomness from ``crc32(seed, spec)``,
cores step deterministically, and every iteration order is explicit
(core index, job id) — so two identical runs produce identical
completion orders and identical export documents, and
:func:`run_open_system` can memoise results in the content-addressed
document cache.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.multicore.alloc import (
    AllocationError,
    Allocator,
    CoreView,
    make_allocator,
)
from repro.multicore.machine import build_core
from repro.workloads.mixes import cached_program
from repro.workloads.profiles import PROFILES, profile_names

#: States a job moves through (strictly forward).
QUEUED, RUNNING, DONE = "queued", "running", "done"

#: EWMA weight of the newest telemetry observation.
_TELEMETRY_ALPHA = 0.5

#: Outstanding-miss normalisation: 4+ in-flight misses saturate the
#: signal (matches MISSCOUNT's practical range).
_MISS_SCALE = 4.0


class DriverInvariantError(RuntimeError):
    """The driver's own bookkeeping broke an invariant.

    Distinct from the per-core
    :class:`~repro.verify.sanitizer.InvariantViolation`: this guards
    the allocation layer (job conservation, single placement, capacity
    bounds), not the pipeline.
    """

    def __init__(self, message: str, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.details = details or {}


# ----------------------------------------------------------------------
# Job specification and arrival processes.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One job of the open system, fully specified and picklable."""

    job_id: int
    arrival_cycle: int
    profile: str                   # workload profile name
    service_instructions: int      # committed instructions to completion
    workload_seed: int = 0

    def __post_init__(self):
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown workload profile {self.profile!r}; valid: "
                f"{', '.join(profile_names())}"
            )
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be >= 0")
        if self.service_instructions < 1:
            raise ValueError("service_instructions must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ArrivalConfig:
    """A seeded open-system arrival process.

    ``rate_per_kcycle`` is the mean arrival rate (jobs per 1000
    cycles); interarrival gaps are exponential, profiles are drawn
    uniformly from ``profiles`` (default: the full benchmark set), and
    everything derives from ``seed``.
    """

    jobs: int
    rate_per_kcycle: float
    service_instructions: int
    seed: int = 0
    profiles: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("arrival config needs at least one job")
        if self.rate_per_kcycle <= 0:
            raise ValueError("arrival rate must be positive")
        if self.service_instructions < 1:
            raise ValueError("service_instructions must be >= 1")
        for name in self.profiles or ():
            if name not in PROFILES:
                raise ValueError(
                    f"unknown workload profile {name!r}; valid: "
                    f"{', '.join(profile_names())}"
                )


def generate_arrivals(config: ArrivalConfig) -> Tuple[JobSpec, ...]:
    """Derive the job list an :class:`ArrivalConfig` describes (pure)."""
    import random

    rng = random.Random(0xA11C0000 ^ config.seed)
    names = config.profiles or profile_names()
    mean_gap = 1000.0 / config.rate_per_kcycle
    clock = 0.0
    specs = []
    for job_id in range(config.jobs):
        clock += rng.expovariate(1.0 / mean_gap)
        specs.append(JobSpec(
            job_id=job_id,
            arrival_cycle=int(clock),
            profile=rng.choice(names),
            service_instructions=config.service_instructions,
            workload_seed=0,
        ))
    return tuple(specs)


def load_trace(path: str) -> Tuple[JobSpec, ...]:
    """Load a JSONL arrival trace.

    One JSON object per line: ``{"arrival": int, "profile": str,
    "service": int}`` with optional ``"seed"`` (workload generator
    seed).  Job ids are assigned in file order.
    """
    specs = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}")
            try:
                specs.append(JobSpec(
                    job_id=len(specs),
                    arrival_cycle=int(record["arrival"]),
                    profile=record["profile"],
                    service_instructions=int(record["service"]),
                    workload_seed=int(record.get("seed", 0)),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad trace record: {exc}")
    if not specs:
        raise ValueError(f"{path}: empty arrival trace")
    return tuple(specs)


# ----------------------------------------------------------------------
# Run specification (the cacheable identity of one driver run).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MulticoreRunSpec:
    """One open-system multicore run, fully specified and picklable.

    Exactly one of ``arrival`` / ``trace`` supplies the jobs.  The
    ``config`` template's ``n_threads`` is the per-core context
    capacity; every other field carries through to each core.
    """

    n_cores: int
    allocator: str
    config: SMTConfig
    quantum: int = 200
    max_cycles: int = 200_000
    seed: int = 0
    arrival: Optional[ArrivalConfig] = None
    trace: Optional[Tuple[JobSpec, ...]] = None
    check_invariants: bool = False

    def __post_init__(self):
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.quantum < 1:
            raise ValueError("quantum must be >= 1")
        if self.max_cycles < self.quantum:
            raise ValueError("max_cycles must cover at least one quantum")
        if (self.arrival is None) == (self.trace is None):
            raise ValueError(
                "exactly one of arrival / trace must supply the jobs"
            )
        # Fail on unknown allocators at construction time, with the
        # registry's message (mirrors SMTConfig's fetch-policy check).
        from repro.multicore.alloc import validate_alloc_spec
        validate_alloc_spec(self.allocator)

    # ------------------------------------------------------------------
    def jobs(self) -> Tuple[JobSpec, ...]:
        if self.trace is not None:
            return self.trace
        return generate_arrivals(self.arrival)

    def fingerprint(self) -> Dict[str, Any]:
        """Everything that determines the run, canonically serialised
        (the document-cache key hashes this)."""
        return {
            "n_cores": self.n_cores,
            "allocator": self.allocator,
            "config": dataclasses.asdict(self.config),
            "quantum": self.quantum,
            "max_cycles": self.max_cycles,
            "seed": self.seed,
            "check_invariants": self.check_invariants,
            "jobs": [spec.to_dict() for spec in self.jobs()],
            # Workload generator identity: profile knobs feed the
            # programs, so recalibration invalidates cached runs.
            "profiles": {
                name: dataclasses.asdict(PROFILES[name])
                for name in sorted({s.profile for s in self.jobs()})
            },
        }


# ----------------------------------------------------------------------
# Runtime records.
# ----------------------------------------------------------------------
class Job:
    """Mutable runtime state of one :class:`JobSpec`."""

    __slots__ = ("spec", "state", "core", "tid", "start_cycle",
                 "finish_cycle", "committed", "telemetry")

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.state = QUEUED          # becomes RUNNING, then DONE
        self.core: Optional[int] = None
        self.tid: Optional[int] = None
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.committed = 0
        #: Signal snapshot for PAIRING (EWMA over quanta the job ran).
        self.telemetry: Dict[str, float] = {"ipc": 0.0, "iq": 0.0,
                                            "miss": 0.0}

    @property
    def job_id(self) -> int:
        return self.spec.job_id


class CoreState:
    """One core's slot bookkeeping and usage counters."""

    __slots__ = ("index", "capacity", "resident", "sim", "dirty",
                 "busy_cycles", "cycles", "commits", "jobs_served")

    def __init__(self, index: int, capacity: int):
        self.index = index
        self.capacity = capacity
        self.resident: List[Job] = []
        self.sim: Optional[Simulator] = None
        self.dirty = False           # membership changed since last build
        self.busy_cycles = 0
        self.cycles = 0
        self.commits = 0
        self.jobs_served = 0

    def view(self) -> CoreView:
        return CoreView(
            index=self.index,
            resident=len(self.resident),
            capacity=self.capacity,
            telemetry=tuple(dict(job.telemetry) for job in self.resident),
        )


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------
def percentiles(values: Sequence[float],
                points=(50, 90, 99)) -> Dict[str, float]:
    """Nearest-rank percentiles (deterministic; empty input -> zeros)."""
    out = {}
    ordered = sorted(values)
    n = len(ordered)
    for p in points:
        if not n:
            out[f"p{p}"] = 0.0
            continue
        rank = max(1, -(-p * n // 100))  # ceil(p/100 * n)
        out[f"p{p}"] = float(ordered[min(rank, n) - 1])
    return out


@dataclass
class JobRecord:
    """One job's lifecycle, in cycles."""

    job_id: int
    profile: str
    arrival: int
    start: Optional[int]
    finish: Optional[int]
    committed: int
    core: Optional[int]

    @property
    def queue_cycles(self) -> Optional[int]:
        return None if self.start is None else self.start - self.arrival

    @property
    def service_cycles(self) -> Optional[int]:
        if self.start is None or self.finish is None:
            return None
        return self.finish - self.start

    @property
    def total_cycles(self) -> Optional[int]:
        return None if self.finish is None else self.finish - self.arrival

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id, "profile": self.profile,
            "arrival": self.arrival, "start": self.start,
            "finish": self.finish, "committed": self.committed,
            "core": self.core,
        }


@dataclass
class CoreUsage:
    core: int
    busy_cycles: int
    cycles: int
    commits: int
    jobs_served: int

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "core": self.core, "busy_cycles": self.busy_cycles,
            "cycles": self.cycles, "commits": self.commits,
            "jobs_served": self.jobs_served,
            "utilization": round(self.utilization, 6),
        }


@dataclass
class MulticoreResult:
    """Everything one open-system run produces."""

    allocator: str
    n_cores: int
    contexts_per_core: int
    quantum: int
    seed: int
    cycles: int
    jobs_total: int
    jobs_completed: int
    completion_order: List[int]
    jobs: List[JobRecord]
    cores: List[CoreUsage]

    # ------------------------------------------------------------------
    @property
    def unfinished(self) -> int:
        return self.jobs_total - self.jobs_completed

    @property
    def throughput_per_kcycle(self) -> float:
        if not self.cycles:
            return 0.0
        return 1000.0 * self.jobs_completed / self.cycles

    @property
    def mean_utilization(self) -> float:
        if not self.cores:
            return 0.0
        return sum(c.utilization for c in self.cores) / len(self.cores)

    def latency(self) -> Dict[str, Dict[str, float]]:
        """Queue/service/total latency percentiles over completed jobs."""
        done = [j for j in self.jobs if j.finish is not None]
        return {
            "queue": percentiles([j.queue_cycles for j in done]),
            "service": percentiles([j.service_cycles for j in done]),
            "total": percentiles([j.total_cycles for j in done]),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "allocator": self.allocator,
            "n_cores": self.n_cores,
            "contexts_per_core": self.contexts_per_core,
            "quantum": self.quantum,
            "seed": self.seed,
            "cycles": self.cycles,
            "jobs_total": self.jobs_total,
            "jobs_completed": self.jobs_completed,
            "unfinished": self.unfinished,
            "completion_order": list(self.completion_order),
            "throughput_per_kcycle": round(self.throughput_per_kcycle, 6),
            "mean_utilization": round(self.mean_utilization, 6),
            "latency": self.latency(),
            "jobs": [j.to_dict() for j in self.jobs],
            "cores": [c.to_dict() for c in self.cores],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MulticoreResult":
        jobs = [JobRecord(
            job_id=j["job_id"], profile=j["profile"], arrival=j["arrival"],
            start=j["start"], finish=j["finish"], committed=j["committed"],
            core=j["core"],
        ) for j in data["jobs"]]
        cores = [CoreUsage(
            core=c["core"], busy_cycles=c["busy_cycles"],
            cycles=c["cycles"], commits=c["commits"],
            jobs_served=c["jobs_served"],
        ) for c in data["cores"]]
        return cls(
            allocator=data["allocator"], n_cores=data["n_cores"],
            contexts_per_core=data["contexts_per_core"],
            quantum=data["quantum"], seed=data["seed"],
            cycles=data["cycles"], jobs_total=data["jobs_total"],
            jobs_completed=data["jobs_completed"],
            completion_order=list(data["completion_order"]),
            jobs=jobs, cores=cores,
        )

    def summary(self) -> str:
        latency = self.latency()
        return (
            f"{self.allocator} x{self.n_cores}: "
            f"{self.jobs_completed}/{self.jobs_total} jobs in "
            f"{self.cycles} cycles, "
            f"p50/p99 latency {latency['total']['p50']:.0f}/"
            f"{latency['total']['p99']:.0f} cyc, "
            f"util {self.mean_utilization:.0%}, "
            f"{self.throughput_per_kcycle:.2f} jobs/kcyc"
        )


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------
class OpenSystemDriver:
    """Runs one :class:`MulticoreRunSpec` to completion."""

    def __init__(self, spec: MulticoreRunSpec):
        self.spec = spec
        self.allocator: Allocator = make_allocator(
            spec.allocator, seed=spec.seed
        )
        self.capacity = spec.config.n_threads
        self.cores = [
            CoreState(i, self.capacity) for i in range(spec.n_cores)
        ]
        self.jobs = [Job(s) for s in sorted(
            spec.jobs(), key=lambda s: (s.arrival_cycle, s.job_id)
        )]
        if len({job.job_id for job in self.jobs}) != len(self.jobs):
            raise ValueError("duplicate job ids in the arrival set")
        self._pending: List[Job] = list(self.jobs)   # not yet arrived
        self._queue: List[Job] = []
        self.clock = 0
        self.completion_order: List[int] = []
        self.allocations = 0

    # ------------------------------------------------------------------
    # Per-tick phases.
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        while self._pending and \
                self._pending[0].spec.arrival_cycle <= self.clock:
            self._queue.append(self._pending.pop(0))

    def _allocate(self) -> None:
        while self._queue:
            views = [core.view() for core in self.cores]
            if not any(view.free > 0 for view in views):
                break
            job = self._queue[0]
            choice = self.allocator.choose(job, views)
            if not 0 <= choice < len(self.cores):
                raise AllocationError(
                    f"allocator {self.allocator.spec!r} chose core "
                    f"{choice} of {len(self.cores)}"
                )
            core = self.cores[choice]
            if len(core.resident) >= core.capacity:
                raise AllocationError(
                    f"allocator {self.allocator.spec!r} chose full core "
                    f"{choice}"
                )
            self._queue.pop(0)
            job.state = RUNNING
            job.core = choice
            job.start_cycle = self.clock
            core.resident.append(job)
            core.dirty = True
            self.allocations += 1

    def _rebuild(self, core: CoreState) -> None:
        """(Re)build a core's simulator for its current resident set."""
        core.dirty = False
        if not core.resident:
            core.sim = None
            return
        programs = [
            cached_program(job.spec.profile, job.spec.workload_seed)
            for job in core.resident
        ]
        sim = build_core(self.spec.config, programs,
                         check_invariants=self.spec.check_invariants)
        by_tid = list(core.resident)
        for tid, job in enumerate(by_tid):
            job.tid = tid

        def on_commit(uop, _jobs=by_tid, _core=core):
            _jobs[uop.tid].committed += 1
            _core.commits += 1

        sim.add_commit_listener(on_commit)
        core.sim = sim

    def _step_cores(self) -> None:
        quantum = self.spec.quantum
        for core in self.cores:
            if core.dirty:
                self._rebuild(core)
            core.cycles += quantum
            if core.sim is None:
                continue
            core.busy_cycles += quantum
            core.sim.run_cycles(quantum)

    def _retire(self) -> None:
        for core in self.cores:
            finished = [
                job for job in core.resident
                if job.committed >= job.spec.service_instructions
            ]
            for job in finished:
                core.resident.remove(job)
                core.dirty = True
                core.jobs_served += 1
                job.state = DONE
                job.finish_cycle = self.clock + self.spec.quantum
                job.tid = None
                self.completion_order.append(job.job_id)

    def _update_telemetry(self) -> None:
        alpha = _TELEMETRY_ALPHA
        quantum = self.spec.quantum
        for core in self.cores:
            sim = core.sim
            if sim is None or core.dirty:
                # A retirement already invalidated tids this tick; the
                # survivors refresh next quantum on the rebuilt core.
                continue
            capacity = sim.int_queue.capacity + sim.fp_queue.capacity
            owned = [0] * len(core.resident)
            for queue in (sim.int_queue, sim.fp_queue):
                for uop in queue.entries:
                    owned[uop.tid] += 1
            for job in core.resident:
                thread = sim.threads[job.tid]
                delta = job.committed - job.telemetry.get("_base", 0.0)
                observed = {
                    "ipc": delta / quantum,
                    "iq": owned[job.tid] / capacity if capacity else 0.0,
                    "miss": min(
                        1.0, thread.misscount(sim.cycle) / _MISS_SCALE
                    ),
                }
                for key, value in observed.items():
                    old = job.telemetry.get(key, 0.0)
                    job.telemetry[key] = (1 - alpha) * old + alpha * value
                job.telemetry["_base"] = float(job.committed)

    # ------------------------------------------------------------------
    # Driver invariants (the allocation layer's own sanitizer).
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`DriverInvariantError` on any bookkeeping breach.

        Checked every tick; also callable from tests after injecting
        corruption (double allocation, lost jobs) to prove the checks
        catch it.
        """
        placements: Dict[int, int] = {}
        for core in self.cores:
            if len(core.resident) > core.capacity:
                raise DriverInvariantError(
                    f"core {core.index} holds {len(core.resident)} jobs, "
                    f"capacity {core.capacity}",
                    {"core": core.index},
                )
            for job in core.resident:
                if job.job_id in placements:
                    raise DriverInvariantError(
                        f"job {job.job_id} resident on cores "
                        f"{placements[job.job_id]} and {core.index} "
                        f"(double allocation)",
                        {"job": job.job_id},
                    )
                placements[job.job_id] = core.index
                if job.state != RUNNING or job.core != core.index:
                    raise DriverInvariantError(
                        f"job {job.job_id} resident on core {core.index} "
                        f"but state={job.state!r} core={job.core!r}",
                        {"job": job.job_id},
                    )
        queued = {job.job_id for job in self._queue}
        pending = {job.job_id for job in self._pending}
        for job in self.jobs:
            jid = job.job_id
            placed = jid in placements
            states = [jid in pending, jid in queued, placed,
                      job.state == DONE]
            if sum(states) != 1:
                where = ("pending" if states[0] else "",
                         "queued" if states[1] else "",
                         "running" if states[2] else "",
                         "done" if states[3] else "")
                raise DriverInvariantError(
                    f"job {jid} conservation breach: present in "
                    f"{[w for w in where if w] or ['nowhere']} "
                    f"(exactly one expected)",
                    {"job": jid, "state": job.state},
                )
            if job.state == RUNNING and not placed:
                raise DriverInvariantError(
                    f"job {jid} is RUNNING but resident on no core "
                    f"(lost on core drain)",
                    {"job": jid},
                )
            if job.state == DONE and (job.finish_cycle is None
                                      or job.start_cycle is None
                                      or job.finish_cycle < job.start_cycle
                                      or job.start_cycle
                                      < job.spec.arrival_cycle):
                raise DriverInvariantError(
                    f"job {jid} finished with inconsistent timeline "
                    f"(arrival {job.spec.arrival_cycle}, start "
                    f"{job.start_cycle}, finish {job.finish_cycle})",
                    {"job": jid},
                )

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One driver quantum (admit, allocate, step, retire, check)."""
        self._admit()
        self._allocate()
        self._step_cores()
        self._retire()
        self._update_telemetry()
        self.clock += self.spec.quantum
        self.check_invariants()

    def done(self) -> bool:
        return all(job.state == DONE for job in self.jobs)

    # ------------------------------------------------------------------
    def run(self) -> MulticoreResult:
        while not self.done() and self.clock < self.spec.max_cycles:
            self.tick()
        return self.result()

    # ------------------------------------------------------------------
    def result(self) -> MulticoreResult:
        records = [
            JobRecord(
                job_id=job.job_id,
                profile=job.spec.profile,
                arrival=job.spec.arrival_cycle,
                start=job.start_cycle,
                finish=job.finish_cycle,
                committed=job.committed,
                core=job.core,
            )
            for job in sorted(self.jobs, key=lambda j: j.job_id)
        ]
        usage = [
            CoreUsage(
                core=core.index, busy_cycles=core.busy_cycles,
                cycles=core.cycles, commits=core.commits,
                jobs_served=core.jobs_served,
            )
            for core in self.cores
        ]
        return MulticoreResult(
            allocator=self.spec.allocator,
            n_cores=self.spec.n_cores,
            contexts_per_core=self.capacity,
            quantum=self.spec.quantum,
            seed=self.spec.seed,
            cycles=self.clock,
            jobs_total=len(self.jobs),
            jobs_completed=sum(1 for j in self.jobs if j.state == DONE),
            completion_order=list(self.completion_order),
            jobs=records,
            cores=usage,
        )


# ----------------------------------------------------------------------
# Cached execution.
# ----------------------------------------------------------------------
def run_open_system(
    spec: MulticoreRunSpec,
    use_cache: Optional[bool] = None,
) -> MulticoreResult:
    """Run a spec, memoising the result document in the shared cache.

    The cache key hashes the full spec fingerprint — allocator spec,
    arrival seed, trace contents, machine config, and workload profile
    knobs — so distinct allocators and arrival seeds never collide.
    """
    from repro.experiments.cache import (
        DocumentCache,
        cache_enabled_by_default,
        multicore_key,
    )

    if use_cache is None:
        use_cache = cache_enabled_by_default()
    key = multicore_key(spec) if use_cache else None
    if use_cache:
        cache = DocumentCache()
        cached = cache.get(key)
        if cached is not None:
            return MulticoreResult.from_dict(cached)
    result = OpenSystemDriver(spec).run()
    if use_cache:
        cache.put(key, result.to_dict())
    return result
