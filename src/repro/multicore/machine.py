"""N independent SMT cores as one machine.

A :class:`MultiCoreSimulator` owns N :class:`~repro.core.simulator.
Simulator` cores.  The multiprogrammed workload shares nothing between
contexts (paper Section 3), so cores share nothing either: each has its
own caches, predictor, and register files, and the machine's only job
is to construct them consistently and step them in lockstep.

Two construction modes:

* :meth:`MultiCoreSimulator.static_partition` — a *closed* system: a
  fixed program list is allocated to cores once (through a registry
  allocator) and every core then runs exactly like a standalone
  ``Simulator``.  With one core this collapses to the existing
  single-core path **bit-identically** (the ``tests/multicore``
  equivalence suite enforces it), which is what keeps the multicore
  layer honest against the validated machine model.
* The open-system driver (:mod:`repro.multicore.driver`) builds and
  rebuilds cores itself as jobs arrive and retire; it reuses the same
  per-core construction helper so both paths produce identical cores
  for identical resident sets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.config import SMTConfig
from repro.core.simulator import SimResult, Simulator
from repro.isa.program import Program
from repro.multicore.alloc import CoreView, make_allocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.verify.sanitizer import PipelineSanitizer


def build_core(template: SMTConfig, programs: Sequence[Program],
               check_invariants: bool = False) -> Simulator:
    """One core for ``programs``, configured from the machine template.

    The template's ``n_threads`` is the core's *context capacity*; the
    core is built with exactly as many contexts as it has resident
    programs (a half-empty SMT core does not pay partitioned-resource
    costs for absent threads, matching the paper's per-thread-count
    configurations).
    """
    if not programs:
        raise ValueError("a core needs at least one resident program")
    config = (template if template.n_threads == len(programs)
              else template.with_options(n_threads=len(programs)))
    sim = Simulator(config, list(programs))
    if check_invariants:
        from repro.verify.sanitizer import PipelineSanitizer
        PipelineSanitizer(sim)
    return sim


class MultiCoreSimulator:
    """N independent SMT cores stepped in lockstep."""

    def __init__(self, cores: Sequence[Simulator]):
        if not cores:
            raise ValueError("a multicore machine needs at least one core")
        self.cores: List[Simulator] = list(cores)

    # ------------------------------------------------------------------
    @classmethod
    def static_partition(
        cls,
        template: SMTConfig,
        programs: Sequence[Program],
        n_cores: int,
        allocator_spec: str = "ROUND_ROBIN",
        seed: int = 0,
        check_invariants: bool = False,
    ) -> "MultiCoreSimulator":
        """Allocate a fixed program list to ``n_cores`` cores, once.

        Programs are offered to the allocator in list order, each as a
        pseudo-job with no telemetry history; every core's capacity is
        the template's ``n_threads``.  Cores that receive no program are
        dropped (a closed system never populates them).
        """
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        capacity = template.n_threads
        if len(programs) > n_cores * capacity:
            raise ValueError(
                f"{len(programs)} programs exceed {n_cores} cores x "
                f"{capacity} contexts"
            )
        allocator = make_allocator(allocator_spec, seed=seed)
        resident: List[List[Program]] = [[] for _ in range(n_cores)]
        for program in programs:
            views = [
                CoreView(index=i, resident=len(progs), capacity=capacity)
                for i, progs in enumerate(resident)
            ]
            choice = allocator.choose(program, views)
            resident[choice].append(program)
        cores = [
            build_core(template, progs, check_invariants=check_invariants)
            for progs in resident if progs
        ]
        return cls(cores)

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def set_fast_step(self, enabled: bool) -> None:
        for core in self.cores:
            core.use_fast_step = enabled

    def run_cycles(self, n: int) -> None:
        """Advance every core by ``n`` cycles (cores are independent,
        so per-core batching preserves lockstep semantics exactly)."""
        for core in self.cores:
            core.run_cycles(n)

    # ------------------------------------------------------------------
    def run(
        self,
        warmup_cycles: int = 3000,
        measure_cycles: int = 20000,
        functional_warmup_instructions: int = 60000,
    ) -> List[SimResult]:
        """Warm up and measure every core; one ``SimResult`` per core.

        Runs each core through the exact :meth:`Simulator.run` sequence,
        so a one-core machine produces the same result object, bit for
        bit, as the standalone simulator path.
        """
        return [
            core.run(
                warmup_cycles=warmup_cycles,
                measure_cycles=measure_cycles,
                functional_warmup_instructions=functional_warmup_instructions,
            )
            for core in self.cores
        ]
