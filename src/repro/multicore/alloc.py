"""Thread-to-core allocation policies: one authoritative registry.

Every policy the multicore driver can run registers here with a
one-line summary and a typed parameter schema, exactly like the
fetch-policy registry (:mod:`repro.policy.registry`): the CLI's
``repro allocators`` listing, spec validation, and the driver's
allocator construction all read this table.

Allocator specs are strings (they live in
:class:`~repro.multicore.driver.MulticoreRunSpec`, flow through
dataclass serialisation, and hash into multicore cache keys).
Grammar::

    NAME                          e.g.  ROUND_ROBIN
    NAME:key=value,key=value      e.g.  PAIRING:miss_weight=2.0

Unknown names, unknown keys, and malformed values all raise
``ValueError`` naming the valid registry alternatives.

Seeding: :func:`make_allocator` derives any internal randomness (the
RANDOM policy's RNG) from ``crc32(seed, spec)`` — stable across
processes and interpreter versions, so an allocator is a pure function
of ``(seed, spec)`` and its observation stream.

The policies:

* ``RANDOM`` — seeded uniform choice among cores with a free context
  (the baseline the allocation papers compare against).
* ``ROUND_ROBIN`` — cycle through cores in index order, skipping full
  ones.  With no core ever full, allocation counts across cores never
  differ by more than one (the fairness invariant the property tests
  pin).
* ``LOAD`` — fewest resident threads, ties to the lowest core index.
* ``PAIRING`` — SYNPA-style predicted-interference pairing: each
  job carries a telemetry snapshot (IPC proxy, IQ pressure, miss rate
  — collected per quantum by the driver through the same signal
  machinery the adaptive fetch policies use), and the candidate goes to
  the eligible core whose resident jobs' predicted interference with it
  is smallest.  The interference estimate is a weighted dot product of
  the candidate's and each resident's signals: two memory-bound jobs
  (high miss rates) contend for MSHRs and cache capacity, two
  queue-hungry jobs contend for IQ entries, two high-IPC jobs contend
  for issue slots.  Ties fall back to LOAD order, so an untrained
  snapshot (all zeros) degrades gracefully to load balancing.  The
  decision is a pure function of the snapshots — identical telemetry,
  identical choice.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)


class AllocationError(ValueError):
    """An allocator misbehaved (chose a full or unknown core)."""


#: Telemetry snapshot keys every job carries (see
#: :class:`repro.multicore.driver.Job`); missing keys read as 0.0.
TELEMETRY_KEYS = ("ipc", "iq", "miss")


@dataclass(frozen=True)
class CoreView:
    """What an allocator may observe about one core.

    ``telemetry`` holds the resident jobs' signal snapshots (one mapping
    per resident job, in residence order).
    """

    index: int
    resident: int
    capacity: int
    telemetry: Tuple[Mapping[str, float], ...] = ()

    @property
    def free(self) -> int:
        return self.capacity - self.resident


def eligible_cores(cores: Sequence[CoreView]) -> Tuple[CoreView, ...]:
    """Cores with at least one free hardware context."""
    return tuple(core for core in cores if core.free > 0)


# ----------------------------------------------------------------------
# Policies.
# ----------------------------------------------------------------------
class Allocator:
    """Base class: pick a core for one job.

    ``choose`` is called only when at least one core has a free
    context; it must return the index of such a core.  Policies keep
    any internal state (cursors, RNGs) on the instance, so an allocator
    is reusable across a whole driver run but never across runs.
    """

    name = "?"
    description = ""

    def __init__(self) -> None:
        self.spec = self.name

    def choose(self, job: Any, cores: Sequence[CoreView]) -> int:
        raise NotImplementedError

    def telemetry_snapshot(self, job: Any) -> Mapping[str, float]:
        """The job's signal snapshot (empty mapping if untracked)."""
        return getattr(job, "telemetry", None) or {}


class RandomAllocator(Allocator):
    name = "RANDOM"
    description = ("seeded uniform choice among cores with a free "
                   "context (baseline)")

    def __init__(self, rng_seed: int = 0):
        super().__init__()
        self.rng = random.Random(rng_seed)

    def choose(self, job, cores):
        candidates = eligible_cores(cores)
        if not candidates:
            raise AllocationError("no core has a free context")
        return self.rng.choice(candidates).index


class RoundRobinAllocator(Allocator):
    name = "ROUND_ROBIN"
    description = ("cycle cores in index order, skipping full ones "
                   "(fair by construction)")

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    def choose(self, job, cores):
        n = len(cores)
        for step in range(n):
            core = cores[(self._cursor + step) % n]
            if core.free > 0:
                self._cursor = (core.index + 1) % n
                return core.index
        raise AllocationError("no core has a free context")


class LoadAllocator(Allocator):
    name = "LOAD"
    description = "fewest resident threads, ties to the lowest core index"

    def choose(self, job, cores):
        candidates = eligible_cores(cores)
        if not candidates:
            raise AllocationError("no core has a free context")
        return min(candidates, key=lambda c: (c.resident, c.index)).index


class PairingAllocator(Allocator):
    name = "PAIRING"
    description = ("SYNPA-style predicted-interference pairing from "
                   "per-thread telemetry (IPC, IQ pressure, miss rate)")

    def __init__(self, miss_weight: float = 1.0, iq_weight: float = 0.5,
                 ipc_weight: float = 0.25):
        super().__init__()
        if min(miss_weight, iq_weight, ipc_weight) < 0:
            raise ValueError("PAIRING weights must be non-negative")
        self.miss_weight = miss_weight
        self.iq_weight = iq_weight
        self.ipc_weight = ipc_weight

    # ------------------------------------------------------------------
    def interference(self, candidate: Mapping[str, float],
                     resident: Mapping[str, float]) -> float:
        """Predicted slowdown of co-scheduling two jobs (unitless)."""
        c_ipc = candidate.get("ipc", 0.0)
        r_ipc = resident.get("ipc", 0.0)
        return (
            self.miss_weight * candidate.get("miss", 0.0)
            * resident.get("miss", 0.0)
            + self.iq_weight * candidate.get("iq", 0.0)
            * resident.get("iq", 0.0)
            # IPC proxies are in instructions/cycle, not [0, 1];
            # normalise by the paper's 8-wide issue ceiling.
            + self.ipc_weight * (c_ipc / 8.0) * (r_ipc / 8.0)
        )

    def score(self, candidate: Mapping[str, float], core: CoreView) -> float:
        return sum(
            self.interference(candidate, resident)
            for resident in core.telemetry
        )

    def choose(self, job, cores):
        candidates = eligible_cores(cores)
        if not candidates:
            raise AllocationError("no core has a free context")
        snapshot = self.telemetry_snapshot(job)
        return min(
            candidates,
            key=lambda c: (self.score(snapshot, c), c.resident, c.index),
        ).index


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def _float(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"allocator option {key}={value!r} is not a number"
        )


@dataclass(frozen=True)
class AllocatorInfo:
    """One registry row."""

    name: str
    summary: str
    #: Factory(params, rng_seed) -> Allocator.
    factory: Callable[..., Allocator]
    #: Allowed ``key=value`` options and their converters.
    params: Mapping[str, Callable[[str, str], Any]] = field(
        default_factory=dict
    )


_REGISTRY: Dict[str, AllocatorInfo] = {}


def _register(info: AllocatorInfo) -> None:
    if info.name in _REGISTRY:
        raise ValueError(f"duplicate allocator registration {info.name!r}")
    _REGISTRY[info.name] = info


_register(AllocatorInfo(
    name=RandomAllocator.name, summary=RandomAllocator.description,
    factory=lambda params, rng_seed: RandomAllocator(rng_seed=rng_seed),
))
_register(AllocatorInfo(
    name=RoundRobinAllocator.name, summary=RoundRobinAllocator.description,
    factory=lambda params, rng_seed: RoundRobinAllocator(),
))
_register(AllocatorInfo(
    name=LoadAllocator.name, summary=LoadAllocator.description,
    factory=lambda params, rng_seed: LoadAllocator(),
))
_register(AllocatorInfo(
    name=PairingAllocator.name, summary=PairingAllocator.description,
    factory=lambda params, rng_seed: PairingAllocator(**params),
    params={"miss_weight": _float, "iq_weight": _float,
            "ipc_weight": _float},
))


# ----------------------------------------------------------------------
# Introspection.
# ----------------------------------------------------------------------
def allocator_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def registry_entries() -> Tuple[AllocatorInfo, ...]:
    return tuple(_REGISTRY[name] for name in allocator_names())


def get_info(name: str) -> AllocatorInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(_unknown_message(name))


def _unknown_message(name: str) -> str:
    return (
        f"unknown allocation policy {name!r}; valid allocators: "
        f"{', '.join(allocator_names())} "
        f"(run 'repro allocators' for descriptions)"
    )


# ----------------------------------------------------------------------
# Spec parsing and construction.
# ----------------------------------------------------------------------
def parse_alloc_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``spec`` into (name, raw option strings)."""
    if not spec or not isinstance(spec, str):
        raise ValueError(
            f"allocator spec must be a non-empty string, got {spec!r}"
        )
    name, sep, rest = spec.partition(":")
    params: Dict[str, str] = {}
    if sep:
        if not rest:
            raise ValueError(f"empty options in allocator spec {spec!r}")
        for pair in rest.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key or not value:
                raise ValueError(
                    f"malformed allocator option {pair!r} in {spec!r} "
                    f"(expected key=value)"
                )
            if key in params:
                raise ValueError(
                    f"duplicate allocator option {key!r} in {spec!r}"
                )
            params[key] = value
    return name, params


def make_allocator(spec: str, seed: int = 0) -> Allocator:
    """Build the allocator a spec describes.

    Raises ``ValueError`` (listing valid registry names/options) on any
    problem, so drivers and the CLI can validate specs up front.
    """
    name, raw_params = parse_alloc_spec(spec)
    info = _REGISTRY.get(name)
    if info is None:
        raise ValueError(_unknown_message(name))
    params: Dict[str, Any] = {}
    for key, value in raw_params.items():
        converter = info.params.get(key)
        if converter is None:
            valid = ", ".join(sorted(info.params)) or "(none)"
            raise ValueError(
                f"unknown option {key!r} for allocator {name} "
                f"(valid options: {valid})"
            )
        params[key] = converter(key, value)
    rng_seed = zlib.crc32(f"{seed}|{spec}".encode("utf-8"))
    allocator = info.factory(params, rng_seed)
    allocator.spec = spec
    return allocator


def validate_alloc_spec(spec: str) -> str:
    """Validate an allocator spec; returns the allocator name."""
    return make_allocator(spec, seed=0).name
