"""The campaign service: the fabric behind a socket.

``repro serve DIR`` exposes one campaign directory (see
:mod:`repro.sched`) over TCP and/or Unix-domain sockets, speaking the
newline-delimited JSON protocol of :mod:`repro.service.protocol`.  The
server is a *transport, not a redesign*: every verb bottoms out in the
same journal appends and replays workers already coordinate through,
so the fabric's durability, reclaim, and chaos guarantees — exactly-one
terminal state per task, bit-identical reports — are unchanged whether
work arrived over a socket or a shared filesystem.

Pieces:

* :mod:`repro.service.protocol` — frames, verbs, request ids, errors;
* :mod:`repro.service.server` — the asyncio server (auth, backpressure,
  follow streaming, graceful drain, counters);
* :mod:`repro.service.client` — the synchronous client library with
  retry/backoff (used by ``repro campaign submit/status --server``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import CampaignServer, ServerThread

__all__ = [
    "CampaignServer",
    "PROTOCOL_VERSION",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
]
