"""Synchronous client for the campaign service.

One connection per request keeps failure semantics trivial: every verb
either completes on a fresh socket or raises, and a retry is always a
fresh connection — no poisoned half-duplex state to reason about.  The
verbs that matter most (``submit``, ``cancel``) are idempotent on the
server (content-addressed journal records, first-terminal-wins), which
is what makes blind retries *safe*: a submit whose ack was lost to the
network re-submits and the journal dedups it.

Retry policy: connection failures, timeouts, and the transient error
kinds (``busy``, ``draining``) back off exponentially up to
``retries`` attempts; structural failures (``auth``, ``bad-request``,
``not-found``) raise immediately — retrying a wrong token is noise.
"""

from __future__ import annotations

import logging
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.service import protocol
from repro.service.protocol import (
    ProtocolError,
    encode_frame,
    new_request_id,
    request_frame,
    validate_response,
)

log = logging.getLogger("repro.service")


class ServiceError(RuntimeError):
    """A request that failed for good (post-retry or non-transient)."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message

    @property
    def transient(self) -> bool:
        return self.kind in protocol.TRANSIENT_ERROR_KINDS


@dataclass(frozen=True)
class Endpoint:
    """A parsed service address: Unix socket path or TCP host:port."""

    family: str  # "unix" | "tcp"
    path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None

    @classmethod
    def parse(cls, address: str) -> "Endpoint":
        """``HOST:PORT`` for TCP; anything with a ``/`` or a ``.sock``
        suffix is a Unix socket path."""
        address = address.strip()
        if not address:
            raise ValueError("empty service address")
        if "/" in address or address.endswith(".sock"):
            return cls(family="unix", path=address)
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"cannot parse service address {address!r}: expected "
                f"HOST:PORT or a Unix socket path")
        return cls(family="tcp", host=host or "127.0.0.1", port=int(port))

    def connect(self, timeout: float) -> socket.socket:
        if self.family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.path)
            return sock
        return socket.create_connection((self.host, self.port),
                                        timeout=timeout)


class ServiceClient:
    """Talk to a :class:`~repro.service.server.CampaignServer`.

    ``address`` is either ``HOST:PORT`` or a Unix socket path; ``token``
    defaults to ``REPRO_SERVE_TOKEN`` so one exported secret covers
    server and clients.
    """

    def __init__(
        self,
        address: str,
        token: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
    ):
        from repro.service.server import default_token

        self.endpoint = Endpoint.parse(address)
        self.token = token if token is not None else default_token()
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _roundtrip(self, frame: Dict[str, Any],
                   request_id: str) -> Dict[str, Any]:
        """One request -> one final response on a fresh connection."""
        with self.endpoint.connect(self.timeout) as sock:
            sock.sendall(encode_frame(frame))
            reader = sock.makefile("rb")
            try:
                return self._read_final(reader, request_id)
            finally:
                reader.close()

    def _read_final(self, reader: Any, request_id: str) -> Dict[str, Any]:
        """Read response frames for ``request_id`` until the final one."""
        while True:
            line = reader.readline(protocol.MAX_FRAME_BYTES + 1024)
            if not line or not line.endswith(b"\n"):
                raise ConnectionError(
                    "connection closed before a complete response frame")
            response = validate_response(protocol.decode_frame(line),
                                         request_id)
            if not response.get("stream"):
                return response
            if response.get("done"):
                return response

    def _request(self, verb: str, **params: Any) -> Dict[str, Any]:
        """Send one request with retry/backoff; returns the final frame.

        A *fresh request id per attempt* — the server treats each as a
        new request, and idempotence lives in the journal, not the id.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            request_id = new_request_id()
            frame = request_frame(verb, request_id=request_id,
                                  token=self.token, **params)
            try:
                return self._roundtrip(frame, request_id)
            except ProtocolError as exc:
                if exc.kind not in protocol.TRANSIENT_ERROR_KINDS:
                    raise ServiceError(exc.kind, exc.message) from exc
                last = exc
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = exc
            if attempt < self.retries:
                delay = self.backoff * (2 ** attempt)
                log.debug("retrying %s after %.2fs: %s", verb, delay, last)
                self._sleep(delay)
        if isinstance(last, ProtocolError):
            raise ServiceError(last.kind, last.message) from last
        raise ServiceError(
            "internal",
            f"{verb} failed after {self.retries + 1} attempt(s): {last}",
        ) from last

    # ------------------------------------------------------------------
    # Verbs.
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._request("ping")

    def server_info(self) -> Dict[str, Any]:
        return self._request("server-info")

    def submit(self, specs: Sequence[Any],
               config: Optional[Any] = None) -> Dict[str, Any]:
        """Submit run specs; returns ``{"added": n, "total": m, ...}``.

        ``specs`` are :class:`~repro.experiments.parallel.RunSpec`
        objects (serialised here) or already-serialised payload dicts.
        ``config`` is a :class:`~repro.sched.campaign.CampaignConfig`
        or a plain config dict.
        """
        from repro.sched.campaign import spec_to_payload

        payloads = [
            spec if isinstance(spec, dict) else spec_to_payload(spec)
            for spec in specs
        ]
        config_payload = None
        if config is not None:
            config_payload = (config if isinstance(config, dict)
                              else config.to_dict())
        return self._request("submit", specs=payloads,
                             config=config_payload)

    def status(self) -> Dict[str, Any]:
        """The campaign's ``repro.service_status`` document."""
        return self._request("status")["status"]

    def follow(
        self,
        on_frame: Optional[Callable[[Dict[str, Any]], None]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Dict[str, Any], str]:
        """Stream status until terminal or server drain.

        Calls ``on_frame`` with every streamed frame; returns the final
        status document and the server's stop reason (``"terminal"`` or
        ``"draining"``).  No retry loop: a follow is a long-lived watch,
        and the caller decides whether to re-attach.
        """
        request_id = new_request_id()
        frame = request_frame("status", request_id=request_id,
                              token=self.token, follow=True)
        with self.endpoint.connect(
                self.timeout if timeout is None else timeout) as sock:
            sock.sendall(encode_frame(frame))
            reader = sock.makefile("rb")
            try:
                last_status: Dict[str, Any] = {}
                while True:
                    line = reader.readline(protocol.MAX_FRAME_BYTES + 1024)
                    if not line or not line.endswith(b"\n"):
                        raise ConnectionError(
                            "server closed the follow stream without a "
                            "final frame")
                    response = validate_response(
                        protocol.decode_frame(line), request_id)
                    if on_frame is not None:
                        on_frame(response)
                    if "status" in response:
                        last_status = response["status"]
                    if response.get("done"):
                        return last_status, str(
                            response.get("reason", "terminal"))
            finally:
                reader.close()

    def results(self, rerun_missing: bool = True) -> Dict[str, Any]:
        """The canonical ``repro.fabric`` report document."""
        return self._request(
            "results", rerun_missing=rerun_missing)["report"]

    def report_bytes(self, rerun_missing: bool = True) -> bytes:
        """The canonical report as its exact serialised bytes — the
        chaos suite's bit-identity currency."""
        from repro.experiments.export import fabric_report_bytes

        return fabric_report_bytes(self.results(rerun_missing))

    def cancel(self, keys: Optional[Sequence[str]] = None) -> List[str]:
        return list(self._request("cancel", keys=list(keys)
                                  if keys is not None else None)["cancelled"])

    def stats(self) -> Dict[str, Any]:
        """The server's ``repro.service_stats`` counters document."""
        return self._request("stats")["stats"]
