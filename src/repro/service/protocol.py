"""The campaign service wire protocol: versioned JSON-lines frames.

One frame is one JSON object on one ``\\n``-terminated line — the same
shape as the journal itself, so a frame can be inspected with the same
tools.  Requests carry a client-chosen ``id`` that every response frame
echoes; streaming verbs (``status`` with ``follow``) emit any number of
``stream`` frames for one id before the final frame, which carries
``done: true``.

Request frame::

    {"proto": 1, "id": "a1b2...", "verb": "status", "token": "...",
     ...verb parameters...}

Response frames::

    {"id": "a1b2...", "ok": true, ...payload...}
    {"id": "a1b2...", "ok": true, "stream": true, ...delta...}
    {"id": "a1b2...", "ok": true, "done": true, ...payload...}
    {"id": "a1b2...", "ok": false,
     "error": {"kind": "busy", "message": "..."}}

Error kinds are closed (:data:`ERROR_KINDS`) so clients can switch on
them: ``busy`` and ``draining`` are transient (retry with backoff),
``auth`` and ``bad-request`` are not.  Unknown request fields are
ignored (forward compatibility); an unknown ``proto`` or verb is a
``bad-request`` — the server never guesses.

Schema validation mirrors :mod:`repro.experiments.export`: frames are
plain dicts, but :func:`validate_request` and :func:`validate_response`
reject malformed ones with a structured :class:`ProtocolError` instead
of letting a half-typed frame wander into the journal path.
"""

from __future__ import annotations

import json
import uuid
from typing import Any, Dict, Optional, Tuple

#: Bumped on any change to frame layout or verb semantics.  A server
#: answers only its own version; clients send it in every request.
PROTOCOL_VERSION = 1

#: Frames above this size are refused outright — a submit batch that
#: large should be split, and an unbounded readline is a memory DoS.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: The closed verb set.
VERBS = (
    "ping",         # liveness probe
    "server-info",  # protocol version, endpoints, schema versions
    "submit",       # idempotent content-addressed campaign submission
    "status",       # one-shot or follow-streamed campaign state
    "results",      # the canonical fabric report document
    "cancel",       # cancel pending tasks
    "stats",        # server counters as a schema-versioned document
)

#: The closed error-kind set.  ``busy`` and ``draining`` are transient.
ERROR_KINDS = (
    "bad-request",  # malformed frame, unknown verb, bad parameters
    "auth",         # missing or wrong shared-secret token
    "busy",         # max-inflight-submits backpressure limit hit
    "draining",     # server is shutting down; no new submits
    "not-found",    # referenced key/campaign does not exist
    "internal",     # the verb handler raised
)

TRANSIENT_ERROR_KINDS = frozenset(("busy", "draining"))


class ProtocolError(ValueError):
    """A frame that violates the protocol (carries an error kind)."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind if kind in ERROR_KINDS else "bad-request"
        self.message = message


def new_request_id() -> str:
    return uuid.uuid4().hex[:16]


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame as its canonical wire bytes (sorted keys, one line)."""
    data = json.dumps(frame, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "bad-request",
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit",
        )
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` on torn, oversized, or non-object
    frames — the caller decides whether that ends the connection.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError("bad-request", "frame exceeds size limit")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            "bad-request", f"unparseable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("bad-request", "frame must be a JSON object")
    return frame


# ----------------------------------------------------------------------
# Requests.
# ----------------------------------------------------------------------
def request_frame(
    verb: str,
    request_id: Optional[str] = None,
    token: Optional[str] = None,
    **params: Any,
) -> Dict[str, Any]:
    """Build a request frame (client side)."""
    if verb not in VERBS:
        raise ProtocolError("bad-request", f"unknown verb {verb!r}")
    frame: Dict[str, Any] = {
        "proto": PROTOCOL_VERSION,
        "id": request_id or new_request_id(),
        "verb": verb,
    }
    if token is not None:
        frame["token"] = token
    for key, value in params.items():
        if value is not None:
            frame[key] = value
    return frame


def validate_request(frame: Dict[str, Any]) -> Tuple[str, str]:
    """Check a request frame's envelope; returns ``(verb, id)``.

    Verb parameters are validated by the verb handlers — this guards
    only the envelope every verb shares.
    """
    proto = frame.get("proto")
    if proto != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-request",
            f"unsupported protocol version {proto!r} "
            f"(this server speaks {PROTOCOL_VERSION})",
        )
    verb = frame.get("verb")
    if verb not in VERBS:
        raise ProtocolError(
            "bad-request",
            f"unknown verb {verb!r} (known: {', '.join(VERBS)})",
        )
    request_id = frame.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("bad-request", "request id must be a "
                                           "non-empty string")
    return verb, request_id


# ----------------------------------------------------------------------
# Responses.
# ----------------------------------------------------------------------
def ok_response(request_id: str, *, stream: bool = False,
                done: bool = False, **payload: Any) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"id": request_id, "ok": True}
    if stream:
        frame["stream"] = True
    if done:
        frame["done"] = True
    frame.update(payload)
    return frame


def error_response(request_id: Optional[str], kind: str,
                   message: str) -> Dict[str, Any]:
    if kind not in ERROR_KINDS:
        kind = "internal"
    return {
        "id": request_id or "?",
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def validate_response(frame: Dict[str, Any],
                      request_id: str) -> Dict[str, Any]:
    """Check a response frame against the request it answers.

    Raises :class:`ProtocolError` carrying the server's error kind when
    the frame is a structured error, or ``bad-request`` when the frame
    itself is malformed or answers a different request.
    """
    if frame.get("id") != request_id:
        raise ProtocolError(
            "bad-request",
            f"response id {frame.get('id')!r} does not match "
            f"request id {request_id!r}",
        )
    if frame.get("ok") is True:
        return frame
    error = frame.get("error")
    if isinstance(error, dict):
        raise ProtocolError(str(error.get("kind", "internal")),
                            str(error.get("message", "server error")))
    raise ProtocolError("bad-request", f"malformed response: {frame!r}")
