"""The asyncio campaign server: ``repro serve DIR``.

One server fronts one campaign directory.  Every verb bottoms out in
the same journal operations clients already perform against the shared
filesystem — ``submit`` calls :func:`repro.sched.campaign.submit_specs`
under the same advisory lock, ``status`` replays the same journal,
``results`` builds the same canonical report — so the server adds a
transport, not a second source of truth.  Workers need not know the
server exists; they keep leasing from the journal directory.

Robustness and observability, by construction:

* **Backpressure.**  At most ``max_inflight_submits`` submit requests
  execute concurrently (journal appends are serialised by the campaign
  flock anyway; queueing unbounded submits behind it would just grow
  memory).  Excess submits get a structured ``busy`` rejection the
  client retries with backoff.
* **Auth.**  When a shared-secret token is configured (explicitly or
  via ``REPRO_SERVE_TOKEN``), every request must carry it; comparisons
  are constant-time.  Auth failures never reveal whether the campaign
  exists.
* **Graceful drain.**  SIGTERM (wired by the CLI) flips the draining
  flag: listeners close, new submits are refused with ``draining``,
  in-flight journal appends complete, followers receive a final
  ``done`` frame with ``reason: "draining"``, then connections close.
* **Counters.**  The ``stats`` verb exports connection/submit/reject/
  follower-lag counters as a schema-versioned ``repro.service_stats``
  document (see :mod:`repro.experiments.export`).

Fault injection: ``chaos_hook`` (see :mod:`repro.verify.chaos`) is
called at named points (``accept``, ``submit:pre-journal``,
``submit:post-journal``); a hook that raises :class:`ServiceKilled`
aborts the connection with nothing flushed — the client-visible shape
of a server SIGKILL between accept and journal flush.
"""

from __future__ import annotations

import asyncio
import hmac
import logging
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.envutil import env_int, env_str
from repro.service import protocol
from repro.service.protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)

log = logging.getLogger("repro.service")

#: Environment knobs (values, not flags — see :mod:`repro.envutil`).
TOKEN_ENV = "REPRO_SERVE_TOKEN"
MAX_INFLIGHT_ENV = "REPRO_SERVE_MAX_INFLIGHT"

DEFAULT_MAX_INFLIGHT = 4
#: Seconds between journal re-replays while a follower is attached.
DEFAULT_FOLLOW_POLL = 0.2

COUNTER_NAMES = (
    "connections_total",
    "connections_open",
    "frames",
    "half_frames",        # torn/EOF-truncated request lines, dropped
    "submits",
    "submitted_tasks",
    "busy_rejects",
    "auth_rejects",
    "draining_rejects",
    "bad_requests",
    "errors",
    "cancels",
    "results_served",
    "status_served",
    "followers_total",
)


class ServiceKilled(BaseException):
    """Chaos stand-in for a server SIGKILL mid-request.

    ``BaseException`` so no handler recovery path can swallow it: the
    connection dies with nothing more flushed, exactly like the signal.
    """


def default_token() -> Optional[str]:
    return env_str(TOKEN_ENV)


class CampaignServer:
    """Serve one campaign directory over TCP and/or a Unix socket.

    ``host``/``port`` enable the TCP endpoint (``port=0`` binds an
    ephemeral port, reported in :attr:`endpoints` after :meth:`start`);
    ``unix_path`` enables the Unix-domain endpoint.  At least one must
    be configured.  ``run_fn`` is forwarded to report generation so
    tests can recompute missing results through their stubs.
    """

    def __init__(
        self,
        directory: str,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        token: Optional[str] = None,
        use_env_token: bool = True,
        max_inflight_submits: Optional[int] = None,
        follow_poll: float = DEFAULT_FOLLOW_POLL,
        run_fn: Optional[Callable[[Any], Any]] = None,
    ):
        if unix_path is None and port is None:
            raise ValueError("configure a TCP port and/or a Unix "
                             "socket path to serve on")
        self.directory = directory
        self.host = host or "127.0.0.1"
        self.port = port
        self.unix_path = unix_path
        self.token = token if token is not None else (
            default_token() if use_env_token else None)
        self.max_inflight_submits = (
            max_inflight_submits if max_inflight_submits is not None
            else env_int(MAX_INFLIGHT_ENV, DEFAULT_MAX_INFLIGHT, minimum=1))
        self.follow_poll = max(0.01, follow_poll)
        self.run_fn = run_fn
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.endpoints: List[Tuple[str, ...]] = []
        self.chaos_hook: Optional[Callable[[str], None]] = None
        self.started_at = 0.0
        self._draining = False
        self._drained = asyncio.Event()
        self._servers: List[asyncio.base_events.Server] = []
        self._handlers: set = set()
        self._inflight_submits = 0
        #: follower id -> journal byte offset last reflected to it.
        self._followers: Dict[int, int] = {}
        self._next_follower_id = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        self.started_at = time.time()
        limit = protocol.MAX_FRAME_BYTES + 1024
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path, limit=limit)
            self._servers.append(server)
            self.endpoints.append(("unix", self.unix_path))
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, limit=limit)
            self._servers.append(server)
            bound = server.sockets[0].getsockname()
            self.endpoints.append(("tcp", bound[0], bound[1]))
        log.info("serving campaign %s on %s", self.directory, self.endpoints)

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, finish in-flight appends,
        notify followers, close.

        Safe to call more than once (a second SIGTERM is a no-op, not a
        crash)."""
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - platform quirks
                pass
        # In-flight submits finish their journal appends; followers
        # notice the flag within one poll and emit their final frame.
        deadline = time.monotonic() + timeout
        while (self._inflight_submits or self._followers) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        # Idle connections are parked in readline(); cancelling their
        # handler tasks closes them (current dispatches are done).
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._drained.set()
        log.info("drained: %s", self.describe_counters())

    def describe_counters(self) -> str:
        busy = self.counters["busy_rejects"]
        return (f"{self.counters['connections_total']} connection(s), "
                f"{self.counters['submits']} submit(s) "
                f"({self.counters['submitted_tasks']} task(s)), "
                f"{busy} busy reject(s)")

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self.counters["connections_total"] += 1
        self.counters["connections_open"] += 1
        try:
            if self.chaos_hook is not None:
                self.chaos_hook("accept")
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: refuse and close
                    # (we cannot resynchronise mid-line).
                    await self._send(writer, error_response(
                        None, "bad-request", "frame exceeds size limit"))
                    self.counters["bad_requests"] += 1
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF mid-frame: a half-written request.  Nothing
                    # was promised, nothing is journaled — drop it.
                    self.counters["half_frames"] += 1
                    break
                if not line.strip():
                    continue
                self.counters["frames"] += 1
                done = await self._dispatch(line, writer)
                if done:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the journal holds whatever was acked
        except ServiceKilled:
            # Abort: close the transport with nothing more flushed.
            transport = writer.transport
            if transport is not None:
                transport.abort()
        except asyncio.CancelledError:
            # Drain cancels handlers parked in readline(); ending the
            # task cleanly here (rather than re-raising) keeps asyncio's
            # stream wrapper from logging the cancellation as an error.
            pass
        finally:
            self.counters["connections_open"] -= 1
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    frame: Dict[str, Any]) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    async def _dispatch(self, line: bytes,
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request frame; ``True`` closes the connection."""
        request_id: Optional[str] = None
        try:
            frame = protocol.decode_frame(line)
            request_id = frame.get("id") if isinstance(frame.get("id"), str) \
                else None
            verb, request_id = validate_request(frame)
            self._check_auth(frame)
            handler = getattr(self, "_verb_" + verb.replace("-", "_"))
            await handler(frame, request_id, writer)
            return False
        except ProtocolError as exc:
            if exc.kind == "auth":
                self.counters["auth_rejects"] += 1
            elif exc.kind == "busy":
                self.counters["busy_rejects"] += 1
            elif exc.kind == "draining":
                self.counters["draining_rejects"] += 1
            else:
                self.counters["bad_requests"] += 1
            await self._send(writer,
                             error_response(request_id, exc.kind,
                                            exc.message))
            # Auth and malformed-envelope failures end the connection;
            # transient rejections leave it open for the retry.
            return exc.kind in ("auth", "bad-request")
        except (ServiceKilled, asyncio.CancelledError, ConnectionError):
            raise
        except Exception as exc:  # noqa: BLE001 - verb boundary
            log.exception("verb handler failed")
            self.counters["errors"] += 1
            await self._send(writer, error_response(
                request_id, "internal",
                f"{type(exc).__name__}: {exc}"))
            return False

    def _check_auth(self, frame: Dict[str, Any]) -> None:
        if self.token is None:
            return
        supplied = frame.get("token")
        if not isinstance(supplied, str) or not hmac.compare_digest(
                supplied.encode("utf-8"), self.token.encode("utf-8")):
            raise ProtocolError("auth", "missing or invalid token")

    # ------------------------------------------------------------------
    # Verbs.
    # ------------------------------------------------------------------
    async def _verb_ping(self, _frame, request_id, writer) -> None:
        await self._send(writer, ok_response(request_id, done=True,
                                             pong=True, now=time.time()))

    async def _verb_server_info(self, _frame, request_id, writer) -> None:
        from repro.experiments import export

        await self._send(writer, ok_response(
            request_id, done=True,
            protocol_version=protocol.PROTOCOL_VERSION,
            schema_version=export.SCHEMA_VERSION,
            schemas=[export.SERVICE_STATUS_SCHEMA,
                     export.SERVICE_STATS_SCHEMA,
                     export.FABRIC_SCHEMA],
            directory=os.path.abspath(self.directory),
            endpoints=[list(e) for e in self.endpoints],
            auth_required=self.token is not None,
            draining=self._draining,
            max_inflight_submits=self.max_inflight_submits,
        ))

    async def _verb_submit(self, frame, request_id, writer) -> None:
        from repro.sched.campaign import (
            CampaignConfig,
            spec_from_payload,
            submit_specs,
        )

        if self._draining:
            raise ProtocolError(
                "draining", "server is draining; submit elsewhere or retry "
                            "after restart")
        payloads = frame.get("specs")
        if not isinstance(payloads, list) or not payloads or not all(
                isinstance(p, dict) for p in payloads):
            raise ProtocolError("bad-request",
                                "submit needs a non-empty 'specs' list "
                                "of run-spec payloads")
        try:
            specs = [spec_from_payload(p) for p in payloads]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad-request", f"malformed run spec: {exc}") from exc
        config_payload = frame.get("config") or {}
        if not isinstance(config_payload, dict):
            raise ProtocolError("bad-request", "'config' must be an object")
        try:
            config = CampaignConfig(**config_payload)
        except TypeError as exc:
            raise ProtocolError(
                "bad-request", f"bad campaign config: {exc}") from exc

        if self._inflight_submits >= self.max_inflight_submits:
            raise ProtocolError(
                "busy",
                f"{self._inflight_submits} submit(s) already in flight "
                f"(limit {self.max_inflight_submits}); retry with backoff")
        self._inflight_submits += 1
        try:
            if self.chaos_hook is not None:
                self.chaos_hook("submit:pre-journal")
            added = await asyncio.to_thread(
                submit_specs, self.directory, specs, config)
            if self.chaos_hook is not None:
                self.chaos_hook("submit:post-journal")
        finally:
            self._inflight_submits -= 1
        self.counters["submits"] += 1
        self.counters["submitted_tasks"] += added
        await self._send(writer, ok_response(
            request_id, done=True,
            added=added,
            total=len(specs),
            keys=[spec.key() for spec in specs],
        ))

    async def _verb_status(self, frame, request_id, writer) -> None:
        from repro.sched.campaign import status_document
        from repro.sched.state import load_state

        follow = bool(frame.get("follow"))
        state = await asyncio.to_thread(load_state, self.directory)
        document = status_document(state)
        self.counters["status_served"] += 1
        if not follow:
            await self._send(writer, ok_response(request_id, done=True,
                                                 status=document))
            return
        await self._follow(request_id, writer, document)

    async def _follow(self, request_id, writer, document) -> None:
        """Stream journal-replay state deltas until the campaign is
        terminal, the client leaves, or the server drains."""
        from repro.sched.campaign import status_document
        from repro.sched.state import load_state

        follower_id = self._next_follower_id
        self._next_follower_id += 1
        self.counters["followers_total"] += 1
        self._followers[follower_id] = self._journal_size()
        try:
            await self._send(writer, ok_response(
                request_id, stream=True, status=document))
            last = document
            while True:
                if document["all_terminal"]:
                    await self._send(writer, ok_response(
                        request_id, done=True, status=document,
                        reason="terminal"))
                    return
                if self._draining:
                    await self._send(writer, ok_response(
                        request_id, done=True, status=document,
                        reason="draining"))
                    return
                await asyncio.sleep(self.follow_poll)
                state = await asyncio.to_thread(load_state, self.directory)
                document = status_document(state)
                self._followers[follower_id] = self._journal_size()
                if document != last:
                    delta = _status_delta(last, document)
                    await self._send(writer, ok_response(
                        request_id, stream=True, **delta))
                    last = document
        finally:
            self._followers.pop(follower_id, None)

    async def _verb_results(self, frame, request_id, writer) -> None:
        from repro.sched.campaign import campaign_report

        rerun = frame.get("rerun_missing", True)
        document = await asyncio.to_thread(
            campaign_report, self.directory,
            None, bool(rerun), self.run_fn)
        self.counters["results_served"] += 1
        await self._send(writer, ok_response(request_id, done=True,
                                             report=document))

    async def _verb_cancel(self, frame, request_id, writer) -> None:
        from repro.sched.campaign import cancel_tasks

        keys = frame.get("keys")
        if keys is not None and (not isinstance(keys, list) or not all(
                isinstance(k, str) for k in keys)):
            raise ProtocolError("bad-request",
                                "'keys' must be a list of task keys")
        cancelled = await asyncio.to_thread(
            cancel_tasks, self.directory, keys)
        self.counters["cancels"] += len(cancelled)
        await self._send(writer, ok_response(request_id, done=True,
                                             cancelled=cancelled))

    async def _verb_stats(self, _frame, request_id, writer) -> None:
        from repro.experiments import export

        document = export.service_stats_document(
            server={
                "directory": os.path.abspath(self.directory),
                "endpoints": [list(e) for e in self.endpoints],
                "protocol_version": protocol.PROTOCOL_VERSION,
                "pid": os.getpid(),
                "draining": self._draining,
                "uptime": round(time.time() - self.started_at, 3),
            },
            counters=dict(
                self.counters,
                followers_active=len(self._followers),
                follower_lag_bytes=self._follower_lag(),
            ),
        )
        await self._send(writer, ok_response(request_id, done=True,
                                             stats=document))

    # ------------------------------------------------------------------
    # Follower-lag accounting.
    # ------------------------------------------------------------------
    def _journal_size(self) -> int:
        from repro.sched.journal import journal_path

        try:
            return os.path.getsize(journal_path(self.directory))
        except OSError:
            return 0

    def _follower_lag(self) -> int:
        """Bytes of journal the slowest attached follower has not yet
        reflected into a streamed delta (0 with no followers)."""
        if not self._followers:
            return 0
        size = self._journal_size()
        return max(0, size - min(self._followers.values()))


def _status_delta(old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
    """The streamed delta between two status documents: new counts plus
    only the task rows that changed."""
    old_rows = {row["key"]: row for row in old.get("tasks", [])}
    changed = [row for row in new.get("tasks", [])
               if old_rows.get(row["key"]) != row]
    return {
        "counts": new["counts"],
        "all_terminal": new["all_terminal"],
        "changed": changed,
        "workers": new.get("workers", {}),
    }


# ----------------------------------------------------------------------
# Threaded harness (tests, in-process tooling).
# ----------------------------------------------------------------------
class ServerThread:
    """Run a :class:`CampaignServer` on a private event loop thread.

    The test suite's (and any embedding tool's) way to stand a live
    server next to synchronous code::

        with ServerThread(directory, unix_path=sock) as handle:
            client = ServiceClient(sock)
            ...

    ``stop()`` drains gracefully; ``kill()`` cancels everything without
    flushing — the in-process analogue of SIGKILL, used by the chaos
    suite.
    """

    def __init__(self, directory: str, **server_kwargs: Any):
        self.server = CampaignServer(directory, **server_kwargs)
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._main_task: Optional[asyncio.Task] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # pragma: no cover - startup races
            self._error = exc
        finally:
            self._finished.set()
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._main_task = asyncio.current_task()
        await self.server.start()
        self._ready.set()
        await self.server.wait_drained()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    @property
    def endpoints(self) -> List[Tuple[str, ...]]:
        return self.server.endpoints

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain from the calling thread."""
        if self._loop is not None and not self._finished.is_set():
            def _request_drain() -> None:
                asyncio.ensure_future(self.server.drain())

            try:
                self._loop.call_soon_threadsafe(_request_drain)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout=timeout)

    def kill(self) -> None:
        """Abrupt stop: cancel the loop without draining (chaos)."""
        if self._loop is not None and not self._finished.is_set():
            def _cancel() -> None:
                if self._main_task is not None:
                    self._main_task.cancel()

            try:
                self._loop.call_soon_threadsafe(_cancel)
            except RuntimeError:
                pass
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
