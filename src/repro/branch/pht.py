"""Pattern history table: 2K x 2-bit saturating counters, gshare-indexed
(paper Section 2.1, citing McFarling and Yeh/Patt).

The index is the XOR of the low PC bits and the global history register.
Histories are kept per hardware context (each thread sees its own branch
stream in a multiprogrammed workload); the table itself is shared, so
threads do interfere in the counters — exactly the pressure the paper
measures in Table 3.
"""

from __future__ import annotations


class TwoBitCounter:
    """Classic 2-bit saturating counter (0..3; >=2 predicts taken).

    Provided as a tiny reusable component; the PHT stores raw ints for
    speed but mirrors this logic.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 1):
        if not 0 <= value <= 3:
            raise ValueError("counter value must be 0..3")
        self.value = value

    @property
    def taken(self) -> bool:
        return self.value >= 2

    def update(self, taken: bool) -> None:
        if taken:
            if self.value < 3:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class PatternHistoryTable:
    """gshare direction predictor with a shared counter table."""

    def __init__(self, entries: int = 2048, history_bits: int = 11):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.mask = entries - 1
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        # Weakly-not-taken initial state.
        self.table = [1] * entries

    def index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & self.mask

    def predict(self, pc: int, history: int) -> bool:
        return self.table[self.index(pc, history)] >= 2

    def update(self, pc: int, history: int, taken: bool) -> None:
        idx = self.index(pc, history)
        value = self.table[idx]
        if taken:
            if value < 3:
                self.table[idx] = value + 1
        elif value > 0:
            self.table[idx] = value - 1

    def push_history(self, history: int, taken: bool) -> int:
        """Return ``history`` extended with one more branch outcome."""
        return ((history << 1) | int(taken)) & self.history_mask
