"""Branch prediction substrate (paper Section 2.1).

Fetching is controlled by a decoupled branch target buffer (BTB) and
pattern history table (PHT) scheme:

* a 256-entry, 4-way set-associative BTB whose entries carry a **thread
  id** so one thread never predicts another thread's ("phantom") branches,
* a 2K x 2-bit PHT indexed by the XOR of the low PC bits and a global
  history register (gshare),
* a 12-entry return stack **per context** for subroutine returns.
"""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.pht import PatternHistoryTable, TwoBitCounter
from repro.branch.ras import ReturnAddressStack
from repro.branch.predictor import BranchPredictor, Prediction

__all__ = [
    "BranchTargetBuffer",
    "PatternHistoryTable",
    "TwoBitCounter",
    "ReturnAddressStack",
    "BranchPredictor",
    "Prediction",
]
