"""Per-context return address stack (12 entries, paper Section 2.1).

The stack is a circular buffer: pushing past capacity silently overwrites
the oldest entry (so deep recursion causes return mispredictions once the
stack wraps, as on real hardware).  Because pushes and pops happen
speculatively at fetch, the fetch unit checkpoints ``top`` at each branch
and restores it on a squash.
"""

from __future__ import annotations

from typing import Optional


class ReturnAddressStack:
    """Circular return-address predictor stack for one hardware context."""

    def __init__(self, depth: int = 12):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._buf = [0] * depth
        # Monotonically increasing push cursor; (top % depth) is the slot
        # of the next push.  Keeping it monotonic makes checkpoint/restore
        # a single integer copy.
        self.top = 0

    def push(self, return_address: int) -> None:
        self._buf[self.top % self.depth] = return_address
        self.top += 1

    def pop(self) -> Optional[int]:
        """Pop and return the predicted return address (None if empty)."""
        if self.top == 0:
            return None
        self.top -= 1
        return self._buf[self.top % self.depth]

    def checkpoint(self) -> int:
        """Capture the stack position for later :meth:`restore`."""
        return self.top

    def restore(self, checkpoint: int) -> None:
        """Rewind to a checkpoint taken before a squashed speculation.

        Entries overwritten by deeper speculative pushes are not
        recovered — matching hardware, where only the top-of-stack
        pointer is checkpointed.
        """
        self.top = checkpoint

    def __len__(self) -> int:
        return min(self.top, self.depth)
