"""Branch target buffer: 256 entries, 4-way set associative, thread-id
tagged (paper Section 2.1).

The thread id in each entry prevents "phantom branches": without it, a
thread whose PC happens to collide with another thread's branch entry
would predict a branch that does not exist in its own code.  Entries are
replaced LRU within a set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class BranchTargetBuffer:
    """Set-associative BTB mapping (thread, PC) -> predicted target."""

    def __init__(self, entries: int = 256, assoc: int = 4, tag_thread: bool = True):
        if entries % assoc:
            raise ValueError("entries must be a multiple of assoc")
        self.entries = entries
        self.assoc = assoc
        self.n_sets = entries // assoc
        self.tag_thread = tag_thread
        # Each set is an LRU-ordered list (most recent last) of
        # (thread_id, pc, target) tuples.
        self._sets: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(self.n_sets)
        ]

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self.n_sets

    def _key(self, tid: int, pc: int) -> Tuple[int, int]:
        # Without thread tagging, all threads share tag space and may
        # match each other's entries (the phantom-branch hazard).
        return (tid if self.tag_thread else 0, pc)

    def lookup(self, tid: int, pc: int) -> Optional[int]:
        """Return the predicted target for (tid, pc), or None on miss."""
        entry_set = self._sets[self._set_index(pc)]
        want_tid, want_pc = self._key(tid, pc)
        for i, (etid, epc, target) in enumerate(entry_set):
            if epc == want_pc and etid == want_tid:
                entry_set.append(entry_set.pop(i))  # touch LRU
                return target
        return None

    def insert(self, tid: int, pc: int, target: int) -> None:
        """Insert or update the entry for (tid, pc)."""
        entry_set = self._sets[self._set_index(pc)]
        want_tid, want_pc = self._key(tid, pc)
        for i, (etid, epc, _) in enumerate(entry_set):
            if epc == want_pc and etid == want_tid:
                entry_set.pop(i)
                break
        else:
            if len(entry_set) >= self.assoc:
                entry_set.pop(0)  # evict LRU
        entry_set.append((want_tid, want_pc, target))

    def occupancy(self) -> int:
        """Total valid entries (for tests and diagnostics)."""
        return sum(len(s) for s in self._sets)
