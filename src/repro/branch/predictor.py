"""The combined branch-prediction front end used by the fetch unit.

Pulls together the BTB, the gshare PHT, and the per-context return
stacks, and encodes the *timing* consequences of each prediction case:

``redirect_at_fetch``
    predicted-taken with a BTB/RAS-supplied target: the next fetch cycle
    can follow the target (no bubble beyond the taken-branch fetch-block
    break).
``redirect_at_decode``
    predicted-taken *direct* branch whose target missed in the BTB: the
    decoder computes the target, costing the paper's 2-cycle misfetch
    penalty.
``resolve_at_exec``
    indirect jump with no BTB entry: nothing can be predicted; the thread
    stalls until the jump executes (counted as a jump misprediction).

Direction histories are per hardware context by default (the ablation
``shared_history=True`` makes all contexts share one register, which
cross-pollutes and hurts, quantified in the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.branch.btb import BranchTargetBuffer
from repro.branch.pht import PatternHistoryTable
from repro.branch.ras import ReturnAddressStack
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import INSTR_BYTES


@dataclass
class Prediction:
    """The front end's decision for one control instruction."""

    taken: bool
    #: Predicted target address; None when no target source existed.
    target: Optional[int]
    #: True if the (direct) target is only available at decode (misfetch).
    redirect_at_decode: bool = False
    #: True if no prediction was possible (indirect, no BTB entry); the
    #: thread cannot fetch past this instruction until it executes.
    resolve_at_exec: bool = False
    #: PHT history in effect when the direction was predicted (for the
    #: resolution-time PHT update and squash recovery).
    history_before: int = 0
    #: RAS checkpoint taken before any speculative push/pop.
    ras_checkpoint: int = 0


class BranchPredictor:
    """BTB + gshare PHT + per-context return stacks."""

    def __init__(
        self,
        n_threads: int,
        btb_entries: int = 256,
        btb_assoc: int = 4,
        pht_entries: int = 2048,
        history_bits: int = 11,
        ras_depth: int = 12,
        tag_thread: bool = True,
        shared_history: bool = False,
        perfect: bool = False,
    ):
        self.n_threads = n_threads
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc, tag_thread)
        self.pht = PatternHistoryTable(pht_entries, history_bits)
        self.ras = [ReturnAddressStack(ras_depth) for _ in range(n_threads)]
        self.histories = [0] * n_threads
        self.shared_history = shared_history
        #: Perfect prediction (a Section 7 bottleneck experiment): the
        #: fetch unit supplies the oracle outcome and the front end
        #: simply confirms it.
        self.perfect = perfect

    # ------------------------------------------------------------------
    def _hist_index(self, tid: int) -> int:
        return 0 if self.shared_history else tid

    def history_of(self, tid: int) -> int:
        return self.histories[self._hist_index(tid)]

    # ------------------------------------------------------------------
    def predict(
        self,
        tid: int,
        pc: int,
        instr: Instruction,
        oracle_taken: Optional[bool] = None,
        oracle_target: Optional[int] = None,
    ) -> Prediction:
        """Predict one control instruction at fetch time.

        Speculatively updates the direction history and the return stack;
        callers must use :meth:`recover` with the returned checkpoint
        fields when the speculation is squashed.

        ``oracle_taken``/``oracle_target`` are used only in perfect-
        prediction mode (and only for correct-path instructions).
        """
        hidx = self._hist_index(tid)
        history = self.histories[hidx]
        ras = self.ras[tid]
        pred = Prediction(
            taken=False,
            target=None,
            history_before=history,
            ras_checkpoint=ras.checkpoint(),
        )

        if self.perfect and oracle_taken is not None:
            pred.taken = oracle_taken
            pred.target = oracle_target if oracle_taken else None
            if instr.is_cond_branch:
                self.histories[hidx] = self.pht.push_history(history, pred.taken)
            if instr.is_call:
                ras.push(pc + INSTR_BYTES)
            elif instr.is_return:
                ras.pop()
            return pred

        if instr.is_cond_branch:
            pred.taken = self.pht.predict(pc, history)
            self.histories[hidx] = self.pht.push_history(history, pred.taken)
            if pred.taken:
                target = self.btb.lookup(tid, pc)
                if target is not None:
                    pred.target = target
                else:
                    # Direct target; decoder computes it next cycle.
                    pred.target = instr.target
                    pred.redirect_at_decode = True
            return pred

        if instr.is_call:
            ras.push(pc + INSTR_BYTES)

        if instr.is_return:
            pred.taken = True
            target = ras.pop()
            if target is not None:
                pred.target = target
            else:
                pred.resolve_at_exec = True
            return pred

        if instr.is_indirect:  # jr (non-return indirect jump)
            pred.taken = True
            target = self.btb.lookup(tid, pc)
            if target is not None:
                pred.target = target
            else:
                pred.resolve_at_exec = True
            return pred

        if instr.is_jump:  # j / jal: direct, unconditional
            pred.taken = True
            target = self.btb.lookup(tid, pc)
            if target is not None:
                pred.target = target
            else:
                pred.target = instr.target
                pred.redirect_at_decode = True
            return pred

        raise ValueError(f"predict() called on non-control instruction {instr}")

    # ------------------------------------------------------------------
    def warm(
        self,
        tid: int,
        pc: int,
        instr: Instruction,
        taken: bool,
        next_pc: int,
    ) -> None:
        """Functional (in-order, timing-free) training for warmup."""
        hidx = self._hist_index(tid)
        if instr.is_cond_branch:
            history = self.histories[hidx]
            self.pht.update(pc, history, taken)
            self.histories[hidx] = self.pht.push_history(history, taken)
        if instr.is_call:
            self.ras[tid].push(pc + INSTR_BYTES)
        elif instr.is_return:
            self.ras[tid].pop()
        if taken and not instr.is_return:
            self.btb.insert(tid, pc, next_pc)

    # ------------------------------------------------------------------
    def resolve(
        self,
        tid: int,
        pc: int,
        instr: Instruction,
        prediction: Prediction,
        actual_taken: bool,
        actual_target: Optional[int],
    ) -> None:
        """Train the predictor when a control instruction executes."""
        if instr.is_cond_branch:
            self.pht.update(pc, prediction.history_before, actual_taken)
        if actual_taken and actual_target is not None and not instr.is_return:
            self.btb.insert(tid, pc, actual_target)

    def recover(
        self,
        tid: int,
        pc: int,
        instr: Instruction,
        prediction: Prediction,
        actual_taken: bool,
    ) -> None:
        """Repair speculative state after this instruction mispredicted.

        Restores the return stack to its position before this instruction
        fetched, then replays the instruction's own architectural push or
        pop; rebuilds the history register with the branch's actual
        outcome (younger speculative history bits die with the squashed
        wrong-path instructions)."""
        ras = self.ras[tid]
        ras.restore(prediction.ras_checkpoint)
        if instr.is_call:
            ras.push(pc + INSTR_BYTES)
        elif instr.is_return:
            ras.pop()
        hidx = self._hist_index(tid)
        if instr.is_cond_branch:
            self.histories[hidx] = self.pht.push_history(
                prediction.history_before, actual_taken
            )
        else:
            self.histories[hidx] = prediction.history_before
