"""repro — a reproduction of Tullsen et al., "Exploiting Choice:
Instruction Fetch and Issue on an Implementable Simultaneous
Multithreading Processor" (ISCA 1996).

The package is a complete, cycle-level SMT processor simulator:

``repro.isa``
    a small load/store RISC instruction set, assembler, and functional
    emulator (the correct-path oracle);
``repro.workloads``
    synthetic SPEC92-like multiprogrammed workloads;
``repro.branch``
    BTB / gshare PHT / per-context return stacks;
``repro.memory``
    the banked, lockup-free cache hierarchy of Table 2;
``repro.core``
    the SMT pipeline — fetch partitioning and thread-choice policies
    (RR, BRCOUNT, MISSCOUNT, ICOUNT, IQPOSN), register renaming,
    instruction queues, issue policies, optimistic issue, per-thread
    retirement;
``repro.experiments``
    harnesses that regenerate every table and figure of the paper.

Quickstart::

    from repro import SMTConfig, Simulator, standard_mix

    config = SMTConfig(n_threads=8, fetch_policy="ICOUNT",
                       fetch_threads=2, fetch_per_thread=8)
    sim = Simulator(config, standard_mix(8))
    result = sim.run()
    print(result.summary())
"""

from repro.core.config import SMTConfig, scheme
from repro.core.simulator import SimResult, Simulator
from repro.workloads.mixes import standard_mix
from repro.workloads.profiles import PROFILES, WorkloadProfile, profile_names
from repro.workloads.synthetic import generate_program

__version__ = "1.0.0"

__all__ = [
    "SMTConfig",
    "scheme",
    "Simulator",
    "SimResult",
    "standard_mix",
    "PROFILES",
    "WorkloadProfile",
    "profile_names",
    "generate_program",
    "__version__",
]
