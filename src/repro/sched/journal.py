"""The durable campaign journal: an append-only JSONL record log.

One directory per campaign::

    <journal-dir>/journal.jsonl   the record log (source of truth)
    <journal-dir>/.lock           advisory flock serialising mutations
    <journal-dir>/results/        default local result store (fabric)

This extends the PR-4 ``repro.campaign_journal`` schema (version 2):
alongside the original ``done``/``failed`` terminal records it adds
``campaign`` (config), ``submit``, ``lease``, ``heartbeat``,
``requeue``, ``quarantine``, and ``worker`` lifecycle records — enough
to reconstruct the full scheduler state by replay
(:func:`repro.sched.state.load_state`).

Durability contract:

* Appends are single ``write()`` calls of one newline-terminated line to
  a file opened in append mode, flushed per record — a killed writer
  loses at most its in-flight line.
* ``REPRO_JOURNAL_FSYNC=1`` (routed through
  :func:`repro.envutil.env_flag`) additionally ``fsync`` s every append:
  records then survive power loss, not just process death, at a
  per-record syscall cost (order-of-magnitude: ~100µs on SSDs, ~10ms on
  spinning disks — leave it off unless the journal outlives the host).
* Replay (:func:`read_records`) skips torn or corrupt lines instead of
  raising; later records are independent.
* A writer opening a journal whose last byte is not a newline (a torn
  tail left by a killed writer) appends a repair newline first, so the
  next record cannot concatenate with the torn fragment and corrupt
  *two* records.

Mutating multi-record operations (claiming a task, reclaiming expired
leases) must run under :func:`lock_journal`, which serialises writers
across processes with an advisory ``flock``.  Plain appends from a lease
holder (heartbeats, completion) also take the lock — they are rare
enough that simplicity wins over O_APPEND cleverness.
"""

from __future__ import annotations

import errno
import json
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.envutil import env_flag

try:  # POSIX advisory locking; the fallback degrades to lockless.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

JOURNAL_SCHEMA = "repro.campaign_journal"
#: v2: scheduler records (campaign/submit/lease/heartbeat/requeue/
#: quarantine/worker) joined the v1 done/failed/seed set.  v1 journals
#: replay fine — the new events simply never occur in them.
JOURNAL_SCHEMA_VERSION = 2

JOURNAL_NAME = "journal.jsonl"
LOCK_NAME = ".lock"


def journal_fsync_enabled() -> bool:
    """Whether appends are fsync'd (``REPRO_JOURNAL_FSYNC``)."""
    return env_flag("REPRO_JOURNAL_FSYNC")


def journal_path(directory: str) -> str:
    return os.path.join(directory, JOURNAL_NAME)


def lock_path(directory: str) -> str:
    return os.path.join(directory, LOCK_NAME)


@contextmanager
def lock_journal(directory: str) -> Iterator[None]:
    """Hold the campaign's advisory lock (blocking, process-exclusive).

    Every read-modify-write against the journal (claim scans, reclaim
    passes) runs inside this; the lock is released even if the holder
    raises.  On platforms without ``fcntl`` the lock degrades to a
    no-op — single-process use stays correct.
    """
    os.makedirs(directory, exist_ok=True)
    handle = open(lock_path(directory), "a+")
    try:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()


def _encode(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


class JournalWriter:
    """Append records to a campaign journal, one flushed line each.

    Opening a fresh journal writes the schema header; opening an
    existing one repairs a torn tail (missing trailing newline) so the
    first new record starts on its own line.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = journal_path(directory)
        fresh = (not os.path.exists(self.path)
                 or os.path.getsize(self.path) == 0)
        if not fresh:
            self._repair_torn_tail()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._fsync = journal_fsync_enabled()
        if fresh:
            self.append({"schema": JOURNAL_SCHEMA,
                         "schema_version": JOURNAL_SCHEMA_VERSION})

    def _repair_torn_tail(self) -> None:
        """Ensure the file ends in a newline before appending.

        A writer killed mid-append leaves a torn final line; replay
        skips it, but a subsequent append would concatenate with the
        fragment and corrupt an otherwise-good record too.  One repair
        newline isolates the fragment."""
        with open(self.path, "rb") as handle:
            try:
                handle.seek(-1, os.SEEK_END)
            except OSError as exc:  # pragma: no cover - empty race
                if exc.errno != errno.EINVAL:
                    raise
                return
            if handle.read(1) != b"\n":
                with open(self.path, "a", encoding="utf-8") as repair:
                    repair.write("\n")

    def append(self, record: Dict[str, Any]) -> None:
        self._handle.write(_encode(record))
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_records(directory: str,
                 path: Optional[str] = None) -> List[Dict[str, Any]]:
    """Replay a journal into its record list, tolerating damage.

    Torn lines (a writer killed mid-append), garbage bytes, and non-dict
    JSON are skipped, never raised — every surviving record is
    independent of its neighbours.  A missing journal is an empty
    campaign.
    """
    records: List[Dict[str, Any]] = []
    target = path or journal_path(directory)
    try:
        handle = open(target, "r", encoding="utf-8")
    except (FileNotFoundError, NotADirectoryError):
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn or corrupt; later records replay fine
            if isinstance(record, dict):
                records.append(record)
    return records
