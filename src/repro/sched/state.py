"""The scheduler state machine, reconstructed by journal replay.

The journal is the single source of truth; this module is a pure fold
over its records.  Crash recovery *is* replay: any process — a worker
scanning for work, ``repro campaign status``, the drain loop — rebuilds
the same :class:`CampaignState` from the same records, decides what the
journal implies (expired leases to reclaim, poison tasks to quarantine)
and appends the outcome.  Nothing lives only in memory.

Task lifecycle::

    submit ─> PENDING ─claim─> LEASED ─done──────> DONE
                 ^               │ ─failed───────> FAILED
                 │               │ ─quarantine───> QUARANTINED
                 └───requeue─────┘   (lease expired / retryable failure)

Robustness rules (held by the chaos suite, tests/verify/test_chaos.py):

* **First terminal record wins.**  Two leases can race to complete the
  same task (a slow worker finishing after its expired lease was
  reclaimed); replay keeps the first terminal record, counts the
  duplicate, and logs it.  Results are content-addressed and
  deterministic, so the duplicate carries no new information.
* **Leases expire, tasks never vanish.**  An expired lease sends the
  task back to PENDING with exponential backoff; its worker joins the
  task's *suspect* set.
* **Poison quarantine.**  A task whose leases have died under
  ``poison_threshold`` distinct workers is quarantined — never retried,
  reported like an invariant failure (deterministic property of the
  task, not bad luck).
* **Bounded retries.**  ``max_attempts`` executions, then FAILED.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

log = logging.getLogger("repro.sched")

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

TERMINAL_STATES = frozenset((DONE, FAILED, QUARANTINED))

#: Failure kinds that are *never* requeued (deterministic properties of
#: the task — mirrors the PR-4 supervisor taxonomy).
NON_RETRYABLE_KINDS = frozenset(("invariant", "interrupted"))


@dataclass
class Lease:
    """One worker's claim on one task."""

    worker: str
    expires: float
    attempt: int


@dataclass
class Task:
    """One submitted run and everything the journal says about it."""

    key: str
    seq: int                     # submit order (report/claim order)
    label: str = ""
    payload: Optional[Dict[str, Any]] = None   # serialised RunSpec
    status: str = PENDING
    attempt: int = 0             # executions started so far
    not_before: float = 0.0      # backoff gate for the next claim
    lease: Optional[Lease] = None
    #: Distinct workers whose lease on this task expired without a
    #: terminal record — the poison-detection evidence.
    suspects: Set[str] = field(default_factory=set)
    failure: Optional[Dict[str, Any]] = None
    completed_by: str = ""
    elapsed: float = 0.0
    duplicate_terminals: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES


@dataclass
class CampaignState:
    """Everything a journal implies, after replay."""

    tasks: Dict[str, Task] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)   # submit order
    config: Dict[str, Any] = field(default_factory=dict)
    workers: Dict[str, str] = field(default_factory=dict)
    name: str = "campaign"
    duplicates: int = 0          # terminal records for already-terminal tasks
    #: v1-journal records with no task context here (fuzz seeds etc.).
    ignored: int = 0

    # ------------------------------------------------------------------
    # Replay.
    # ------------------------------------------------------------------
    def apply(self, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if event == "campaign":
            self.config.update(record.get("config") or {})
            self.name = record.get("name", self.name)
        elif event == "submit":
            self._apply_submit(record)
        elif event == "lease":
            self._apply_lease(record)
        elif event == "heartbeat":
            self._apply_heartbeat(record)
        elif event == "done":
            self._apply_terminal(record, DONE)
        elif event == "failed":
            self._apply_terminal(record, FAILED)
        elif event == "quarantine":
            self._apply_terminal(record, QUARANTINED)
        elif event == "requeue":
            self._apply_requeue(record)
        elif event == "worker":
            worker = record.get("worker")
            if worker:
                self.workers[worker] = str(record.get("status", "?"))
        elif event is not None:
            self.ignored += 1

    def _task(self, record: Dict[str, Any]) -> Optional[Task]:
        key = record.get("key")
        if not key:
            return None
        task = self.tasks.get(key)
        if task is None:
            # A v1 journal (or a tail-torn submit): terminal records may
            # arrive for keys never submitted here.  Track them anyway
            # so `--resume`-style consumers see the completion.
            task = Task(key=key, seq=len(self.order))
            self.tasks[key] = task
            self.order.append(key)
        return task

    def _apply_submit(self, record: Dict[str, Any]) -> None:
        key = record.get("key")
        if not key or key in self.tasks:
            return  # resubmission is idempotent
        task = Task(
            key=key, seq=len(self.order),
            label=str(record.get("label", "")),
            payload=record.get("spec"),
        )
        self.tasks[key] = task
        self.order.append(key)

    def _apply_lease(self, record: Dict[str, Any]) -> None:
        task = self._task(record)
        if task is None or task.terminal:
            return
        attempt = int(record.get("attempt", task.attempt + 1))
        task.status = LEASED
        task.attempt = max(task.attempt, attempt)
        task.lease = Lease(
            worker=str(record.get("worker", "?")),
            expires=float(record.get("expires", 0.0)),
            attempt=attempt,
        )

    def _apply_heartbeat(self, record: Dict[str, Any]) -> None:
        task = self._task(record)
        if task is None or task.lease is None or task.terminal:
            return
        if task.lease.worker == record.get("worker"):
            task.lease.expires = float(
                record.get("expires", task.lease.expires)
            )

    def _apply_terminal(self, record: Dict[str, Any], status: str) -> None:
        task = self._task(record)
        if task is None:
            return
        if task.terminal:
            # Duplicate terminal record (two leases completed the same
            # run, or a replayed tail): the first one stands.
            self.duplicates += 1
            task.duplicate_terminals += 1
            log.warning(
                "journal duplicate terminal for %s: kept first (%s), "
                "ignored later %r from %r",
                task.key[:12], task.status, record.get("event"),
                record.get("worker", "?"),
            )
            return
        task.status = status
        task.lease = None
        if status == DONE:
            task.completed_by = str(record.get("worker", ""))
            task.elapsed = float(record.get("elapsed", 0.0))
        elif status == FAILED:
            task.failure = record.get("failure") or {
                "kind": "crash", "key": task.key,
                "message": str(record.get("message", "failed")),
            }
        else:  # QUARANTINED
            task.failure = {
                "kind": "poison", "key": task.key,
                "message": str(record.get("reason", "poison task")),
                "details": {"suspects": record.get("workers") or
                            sorted(task.suspects)},
            }

    def _apply_requeue(self, record: Dict[str, Any]) -> None:
        task = self._task(record)
        if task is None or task.terminal:
            return
        if task.lease is not None and record.get("reason") == "lease-expired":
            task.suspects.add(task.lease.worker)
        task.status = PENDING
        task.lease = None
        task.not_before = float(record.get("not_before", 0.0))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def iter_tasks(self) -> List[Task]:
        return [self.tasks[key] for key in self.order]

    def claimable(self, now: float) -> Optional[Task]:
        """Next task a worker may lease, in submit order."""
        for task in self.iter_tasks():
            if task.status == PENDING and task.not_before <= now:
                return task
        return None

    def expired_leases(self, now: float) -> List[Task]:
        return [
            task for task in self.iter_tasks()
            if task.status == LEASED and task.lease is not None
            and task.lease.expires <= now
        ]

    def next_wake(self, now: float) -> Optional[float]:
        """Seconds until the scheduler state can change on its own
        (a backoff gate opening or a lease expiring); ``None`` if
        nothing is scheduled."""
        horizons = [
            task.not_before for task in self.tasks.values()
            if task.status == PENDING and task.not_before > now
        ]
        horizons.extend(
            task.lease.expires for task in self.tasks.values()
            if task.status == LEASED and task.lease is not None
        )
        if not horizons:
            return None
        return max(0.0, min(horizons) - now)

    def all_terminal(self) -> bool:
        return all(task.terminal for task in self.tasks.values())

    def counts(self) -> Dict[str, int]:
        summary = {"total": len(self.tasks), PENDING: 0, LEASED: 0,
                   DONE: 0, FAILED: 0, QUARANTINED: 0}
        for task in self.tasks.values():
            summary[task.status] += 1
        summary["duplicates"] = self.duplicates
        return summary


def load_state(directory: str) -> CampaignState:
    """Replay a campaign directory's journal into state."""
    from repro.sched.journal import read_records

    state = CampaignState()
    for record in read_records(directory):
        state.apply(record)
    return state


# ----------------------------------------------------------------------
# Reclaim planning: what the journal implies should happen next.
# ----------------------------------------------------------------------
def plan_reclaim(task: Task, now: float, max_attempts: int,
                 poison_threshold: int, backoff: float) -> Dict[str, Any]:
    """The record that resolves one expired lease.

    Poison beats retry accounting: a task that has taken down
    ``poison_threshold`` distinct workers is quarantined even if it has
    attempts left — rerunning it just feeds it more workers.  Otherwise
    the task is requeued with exponential backoff until its
    ``max_attempts`` executions are spent, then failed for good.
    """
    worker = task.lease.worker if task.lease is not None else "?"
    suspects = set(task.suspects)
    suspects.add(worker)
    if len(suspects) >= max(1, poison_threshold):
        return {
            "event": "quarantine", "key": task.key,
            "reason": (f"poison: killed {len(suspects)} distinct "
                       f"worker(s)"),
            "workers": sorted(suspects),
        }
    if task.attempt >= max(1, max_attempts):
        return {
            "event": "failed", "key": task.key,
            "failure": {
                "kind": "lost", "key": task.key,
                "message": (f"lease expired on attempt {task.attempt}/"
                            f"{max_attempts} (worker {worker})"),
                "attempts": task.attempt,
                "label": task.label,
            },
        }
    delay = backoff * (2 ** max(0, task.attempt - 1))
    return {
        "event": "requeue", "key": task.key,
        "reason": "lease-expired",
        "worker": worker,
        "not_before": now + delay,
    }
