"""The campaign worker: claim, heartbeat, execute, complete.

One worker process serves one campaign directory.  Its loop is a pure
function of the journal: every iteration re-replays the journal under
the campaign lock, reclaims any expired leases it finds (workers double
as recovery scanners — there is no separate janitor process), claims
the next claimable task under a TTL lease, executes it, and appends the
terminal record.  Results go to the content-addressed store *before*
the ``done`` record, so a ``done`` in the journal implies the result
exists (the chaos suite's corrupt-cache faults break that promise on
purpose; :func:`repro.sched.campaign.collect_results` recomputes).

The loop is deliberately decomposed into sub-steps
(:meth:`Worker.claim_task` / :meth:`Worker.send_heartbeat` /
:meth:`Worker.execute` / :meth:`Worker.finish_task`) so the
deterministic chaos controller (:mod:`repro.verify.chaos`) can drive
workers on a virtual clock and kill them *between* any two steps — the
exact interleavings real SIGKILLs produce, minus the nondeterminism.

Failure handling inside the worker mirrors the PR-4 supervisor
taxonomy via :func:`repro.experiments.supervise.classify_exception`:
``invariant``/``interrupted`` failures are terminal immediately;
``crash``/``timeout``/``oom`` requeue with exponential backoff while
attempts remain.  Only silent death (SIGKILL, power loss) relies on
lease expiry for recovery.

Signals (real mode, ``repro worker``): SIGTERM sets the drain flag —
the worker finishes its current task, announces ``stopped``, and exits
cleanly.  SIGINT releases the current task back to the queue and exits.

Idle polling: an idle worker backs off exponentially (capped, with
seeded per-worker jitter — see :func:`idle_delay`) instead of
re-replaying the journal at a fixed cadence, but never sleeps past the
next known lease expiry or backoff gate.  The base interval is
``poll_interval`` / ``REPRO_WORKER_POLL``.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import threading
import time
import uuid
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.envutil import env_float
from repro.experiments.cache import ResultCache
from repro.sched import state as state_mod
from repro.sched.campaign import (
    CampaignConfig,
    default_result_store,
    reclaim_expired,
    spec_from_payload,
)
from repro.sched.journal import JournalWriter, lock_journal
from repro.sched.state import CampaignState, Task, load_state


class WorkerKilled(BaseException):
    """In-process stand-in for SIGKILL, raised by the chaos controller.

    Subclasses ``BaseException`` so no ``except Exception`` recovery
    path in worker code can accidentally survive it — a killed worker
    records nothing, exactly like the real signal.
    """


@dataclass
class ExecutionOutcome:
    """What one execution attempt produced (not yet journaled)."""

    ok: bool
    result: Any = None
    kind: str = ""                       # failure taxonomy kind
    payload: Optional[Dict[str, Any]] = None
    elapsed: float = 0.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


#: Worker idle-poll base interval, seconds (``REPRO_WORKER_POLL``).
POLL_ENV = "REPRO_WORKER_POLL"
DEFAULT_POLL_INTERVAL = 0.5
#: Consecutive idle scans double the effective poll interval up to this
#: multiple of the base — a fleet parked on a drained campaign backs off
#: to ~16× instead of hammering the journal in lockstep.
MAX_IDLE_BACKOFF = 16


def idle_delay(base: float, idle_scans: int, jitter: random.Random) -> float:
    """The idle sleep after ``idle_scans`` consecutive empty scans.

    Capped exponential backoff (1×, 2×, 4×, ... ``MAX_IDLE_BACKOFF``×
    the base) with ±25% deterministic per-worker jitter, so a fleet of
    workers started together neither polls in lockstep nor thunders
    back onto the journal lock at the same instant.
    """
    scale = min(2 ** max(0, idle_scans - 1), MAX_IDLE_BACKOFF)
    return base * scale * jitter.uniform(0.75, 1.25)


class Worker:
    """One lease-holding executor bound to a campaign directory.

    ``run_fn`` maps a :class:`~repro.experiments.parallel.RunSpec` to a
    :class:`~repro.core.simulator.SimResult`; the default is the real
    :func:`~repro.experiments.parallel.run_spec`.  ``clock`` is
    injectable (the chaos controller supplies a virtual clock);
    ``heartbeats=False`` disables the background heartbeat thread so a
    controller can send — or drop — heartbeats explicitly.
    """

    def __init__(
        self,
        directory: str,
        cache: Optional[ResultCache] = None,
        worker_id: Optional[str] = None,
        run_fn: Optional[Callable[[Any], Any]] = None,
        clock: Optional[Callable[[], float]] = None,
        heartbeats: bool = True,
        poll_interval: Optional[float] = None,
    ):
        self.directory = directory
        self.cache = cache if cache is not None else \
            default_result_store(directory)
        self.worker_id = worker_id or default_worker_id()
        self._run_fn = run_fn
        self.clock = clock or time.time
        self.heartbeats = heartbeats
        self.poll_interval = poll_interval if poll_interval is not None \
            else env_float(POLL_ENV, DEFAULT_POLL_INTERVAL, minimum=0.05)
        # Seeded per-worker: jitter is reproducible for a given worker
        # id, and different across a fleet of distinct ids.
        self._jitter = random.Random(
            zlib.crc32(self.worker_id.encode("utf-8")))
        self._idle_scans = 0
        self.config = CampaignConfig()
        self.tasks_done = 0
        self._draining = False
        # Chaos hook points (real-mode fault injection); each is called
        # with (worker, task) right before the corresponding step.
        self.on_claim: Optional[Callable[["Worker", Task], None]] = None
        self.on_heartbeat: Optional[Callable[["Worker", Task], bool]] = None
        self.on_finish: Optional[Callable[["Worker", Task], None]] = None

    # ------------------------------------------------------------------
    # Sub-steps (the chaos controller's instruction set).
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.clock()

    def announce(self, status: str) -> None:
        """Record this worker's lifecycle status in the journal."""
        with lock_journal(self.directory):
            with JournalWriter(self.directory) as writer:
                writer.append({"event": "worker", "worker": self.worker_id,
                               "status": status})

    def scan(self) -> CampaignState:
        """Replay the journal (no lock — read-only snapshot)."""
        return load_state(self.directory)

    def claim_task(self) -> Optional[Task]:
        """Reclaim expired leases, then lease the next claimable task.

        The whole read-modify-write runs under the campaign lock, so
        two workers can never lease the same task.  Returns ``None``
        when nothing is claimable right now (all work leased, gated by
        backoff, or terminal).
        """
        now = self.now()
        with lock_journal(self.directory):
            state = load_state(self.directory)
            self.config = CampaignConfig.from_state(state)
            with JournalWriter(self.directory) as writer:
                reclaim_expired(writer, state, now, self.config)
                task = state.claimable(now)
                if task is None:
                    return None
                record = {
                    "event": "lease", "key": task.key,
                    "worker": self.worker_id,
                    "attempt": task.attempt + 1,
                    "expires": now + self.config.lease_ttl,
                }
                writer.append(record)
                state.apply(record)
        if self.on_claim is not None:
            self.on_claim(self, task)
        return task

    def send_heartbeat(self, task: Task) -> None:
        """Extend this worker's lease on ``task`` by one TTL."""
        if self.on_heartbeat is not None and not self.on_heartbeat(self, task):
            return  # chaos dropped the heartbeat
        with lock_journal(self.directory):
            with JournalWriter(self.directory) as writer:
                writer.append({
                    "event": "heartbeat", "key": task.key,
                    "worker": self.worker_id,
                    "expires": self.now() + self.config.lease_ttl,
                })

    def execute(self, task: Task) -> ExecutionOutcome:
        """Run the task's spec; classify any exception, journal nothing.

        :class:`WorkerKilled` and :class:`KeyboardInterrupt` propagate —
        they are worker-level events, not task outcomes.
        """
        from repro.experiments.supervise import classify_exception

        started = self.now()
        try:
            if self._run_fn is not None:
                result = self._run_fn(spec_from_payload(task.payload))
            else:
                from repro.experiments.parallel import run_spec

                result = run_spec(spec_from_payload(task.payload))
        except (WorkerKilled, KeyboardInterrupt):
            raise
        except BaseException as exc:  # noqa: BLE001 - taxonomy boundary
            kind, payload = classify_exception(exc)
            return ExecutionOutcome(ok=False, kind=kind, payload=payload,
                                    elapsed=self.now() - started)
        return ExecutionOutcome(ok=True, result=result,
                                elapsed=self.now() - started)

    def finish_task(self, task: Task, outcome: ExecutionOutcome) -> None:
        """Journal the attempt's terminal (or requeue) record.

        Success stores the result in the content-addressed cache
        *before* appending ``done``.  Failures follow the taxonomy:
        non-retryable kinds and exhausted attempts fail for good;
        retryable kinds requeue with exponential backoff.
        """
        if self.on_finish is not None:
            self.on_finish(self, task)
        now = self.now()
        if outcome.ok:
            self.cache.put(task.key, outcome.result)
            record: Dict[str, Any] = {
                "event": "done", "key": task.key,
                "worker": self.worker_id,
                "elapsed": round(outcome.elapsed, 3),
            }
        else:
            attempt = max(task.attempt, 1)
            retryable = (outcome.kind not in state_mod.NON_RETRYABLE_KINDS
                         and attempt < max(1, self.config.max_attempts))
            if retryable:
                delay = self.config.backoff * (2 ** max(0, attempt - 1))
                record = {
                    "event": "requeue", "key": task.key,
                    "reason": f"retry:{outcome.kind}",
                    "worker": self.worker_id,
                    "not_before": now + delay,
                }
            else:
                failure = {
                    "kind": outcome.kind, "key": task.key,
                    "message": (outcome.payload or {}).get(
                        "message", outcome.kind),
                    "attempts": attempt,
                    "label": task.label,
                    "details": outcome.payload,
                }
                record = {"event": "failed", "key": task.key,
                          "worker": self.worker_id, "failure": failure}
        with lock_journal(self.directory):
            with JournalWriter(self.directory) as writer:
                writer.append(record)
        if outcome.ok:
            self.tasks_done += 1

    def release_task(self, task: Task, reason: str = "released") -> None:
        """Hand a claimed-but-unfinished task back to the queue (used on
        interrupt; the attempt stays charged)."""
        with lock_journal(self.directory):
            with JournalWriter(self.directory) as writer:
                writer.append({
                    "event": "requeue", "key": task.key, "reason": reason,
                    "worker": self.worker_id, "not_before": self.now(),
                })

    # ------------------------------------------------------------------
    # The composed loop.
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """One claim-execute-finish cycle; ``True`` if work was done."""
        task = self.claim_task()
        if task is None:
            return False
        pump = self._start_heartbeats(task)
        try:
            outcome = self.execute(task)
        except KeyboardInterrupt:
            self._stop_heartbeats(pump)
            self.release_task(task, reason="interrupted")
            raise
        finally:
            self._stop_heartbeats(pump)
        self.finish_task(task, outcome)
        return True

    def serve(
        self,
        drain: bool = False,
        max_tasks: Optional[int] = None,
        install_signals: bool = True,
    ) -> int:
        """Process tasks until told to stop.

        ``drain=True`` exits once every task in the campaign is
        terminal (waiting out other workers' leases as needed);
        otherwise the worker polls forever for new submissions.
        Returns the number of tasks this worker completed.
        """
        restore = self._install_signals() if install_signals else None
        self.announce("started")
        served = 0
        try:
            try:
                while not self._draining:
                    if max_tasks is not None and served >= max_tasks:
                        break
                    if self.step():
                        served += 1
                        self._idle_scans = 0
                        continue
                    state = self.scan()
                    if drain and state.tasks and state.all_terminal():
                        break
                    if drain and not state.tasks:
                        break
                    self._idle_scans += 1
                    delay = idle_delay(self.poll_interval,
                                       self._idle_scans, self._jitter)
                    # Never sleep past a known wake-up (a lease expiry
                    # or backoff gate) — backoff must not delay reclaim.
                    wake = state.next_wake(self.now())
                    if wake is not None:
                        delay = min(delay, max(0.05, wake))
                    time.sleep(delay)
            except KeyboardInterrupt:
                self.announce("interrupted")
                return served
            self.announce("stopped")
            return served
        finally:
            if restore is not None:
                restore()

    # ------------------------------------------------------------------
    # Plumbing: signals and the heartbeat pump.
    # ------------------------------------------------------------------
    def _install_signals(self) -> Optional[Callable[[], None]]:
        """Install the SIGTERM drain handler; return a restorer.

        The previous handler MUST come back when :meth:`serve` exits:
        a leaked drain handler is inherited by every ``fork``ed child
        of this process, which then shrugs off the SIGTERM that
        ``multiprocessing`` pools use to terminate workers.
        """
        if threading.current_thread() is not threading.main_thread():
            return None  # signal handlers only exist in the main thread

        def _drain(_signum, _frame):
            self._draining = True

        try:
            previous = signal.signal(signal.SIGTERM, _drain)
        except (ValueError, OSError):  # pragma: no cover - odd runtimes
            return None
        return lambda: signal.signal(signal.SIGTERM, previous)

    def _start_heartbeats(self, task: Task) -> Optional["_HeartbeatPump"]:
        if not self.heartbeats:
            return None
        interval = max(0.05, self.config.lease_ttl / 3.0)
        pump = _HeartbeatPump(self, task, interval)
        pump.start()
        return pump

    def _stop_heartbeats(self, pump: Optional["_HeartbeatPump"]) -> None:
        if pump is not None:
            pump.stop()


class _HeartbeatPump(threading.Thread):
    """Background lease renewal at TTL/3 while a task executes."""

    def __init__(self, worker: Worker, task: Task, interval: float):
        super().__init__(daemon=True, name=f"heartbeat-{worker.worker_id}")
        self._worker = worker
        self._task = task
        self._interval = interval
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self._interval):
            try:
                self._worker.send_heartbeat(self._task)
            except Exception:  # pragma: no cover - journal hiccup
                pass  # a missed heartbeat is survivable; a crash is not

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=2.0)
