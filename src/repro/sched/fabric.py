"""``--fabric``: run an ``execute_runs`` batch through the scheduler.

The fabric is the scheduler worn as an engine: the batch is submitted
to a durable campaign, workers drain it, and results come back in spec
order — same contract as :func:`repro.experiments.parallel.execute_runs`
(failed points as ``None``), different failure story.  A SIGKILL'd
worker or a torn journal costs one lease TTL, not the batch.

Enablement mirrors the engine's knob convention: explicit
``configure(fabric=...)`` (the CLI's ``repro experiment --fabric``)
beats the ``REPRO_FABRIC`` environment flag.

Campaign directories default to ``<cache dir>/fabric/<digest>`` where
the digest covers the batch's spec keys — re-running the same study
resumes its campaign (completed tasks replay from the journal + result
store) instead of starting over.

Worker topology: ``jobs == 1`` drains in-process (no subprocess
overhead, same journal protocol); ``jobs > 1`` launches ``jobs``
independent ``python -m repro worker <dir> --drain`` processes that
coordinate only through the journal lock — exactly the deployment shape
of separate worker hosts sharing a filesystem.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import time
from typing import Any, List, Optional, Sequence

from repro.envutil import env_flag
from repro.experiments.cache import ResultCache, default_cache_dir

_UNSET = object()

_configured_fabric: Optional[bool] = None
_configured_fabric_dir: Optional[str] = None


def configure(fabric: Any = _UNSET, fabric_dir: Any = _UNSET) -> None:
    """Set process-wide fabric defaults (the CLI's ``--fabric`` /
    ``--fabric-dir``).  Pass ``None`` to reset to the environment."""
    global _configured_fabric, _configured_fabric_dir
    if fabric is not _UNSET:
        _configured_fabric = fabric
    if fabric_dir is not _UNSET:
        _configured_fabric_dir = fabric_dir


def fabric_enabled() -> bool:
    if _configured_fabric is not None:
        return _configured_fabric
    return env_flag("REPRO_FABRIC")


def campaign_dir_for(keys: Sequence[str]) -> str:
    """The default campaign directory for a batch (content-addressed,
    so identical studies share a resumable campaign)."""
    if _configured_fabric_dir:
        return _configured_fabric_dir
    digest = hashlib.sha256("\n".join(sorted(set(keys))).encode()).hexdigest()
    return os.path.join(default_cache_dir(), "fabric", digest[:16])


def _worker_env() -> dict:
    """Environment for worker subprocesses: inherit, ensure ``repro``
    is importable, and pin fabric off (workers run specs directly)."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing
                             if existing else src_root)
    env["REPRO_FABRIC"] = "0"
    return env


def drain_campaign(
    directory: str,
    store: ResultCache,
    jobs: int = 1,
    poll: float = 0.05,
    on_poll: Optional[Any] = None,
) -> None:
    """Run workers against ``directory`` until every task is terminal.

    ``jobs <= 1`` drains with one in-process worker; otherwise ``jobs``
    ``python -m repro worker --drain`` subprocesses share the campaign,
    coordinating only through the journal (the deployment shape of
    independent worker hosts).  ``on_poll`` is called periodically while
    subprocess workers run (progress reporting).
    """
    from repro.sched.worker import Worker

    if jobs <= 1:
        worker = Worker(directory, cache=store, poll_interval=poll)
        worker.serve(drain=True, install_signals=False)
        return
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", directory,
             "--drain", "--cache-dir", store.directory,
             "--poll", str(poll)],
            env=_worker_env(),
        )
        for _ in range(jobs)
    ]
    try:
        while any(proc.poll() is None for proc in procs):
            if on_poll is not None:
                on_poll()
            time.sleep(0.2)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            proc.wait()


def fabric_execute_runs(
    specs: Sequence[Any],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Any] = None,
    directory: Optional[str] = None,
    lease_ttl: Optional[float] = None,
) -> List[Any]:
    """Drain ``specs`` through a durable campaign; results in spec order.

    Matches the :func:`~repro.experiments.parallel.execute_runs`
    contract: deterministic results, duplicates served once, failed
    points ``None``.  The campaign journal and result store survive the
    call — a rerun of the same batch resumes instead of recomputing.
    """
    from repro.experiments.parallel import (
        BatchProgress,
        default_jobs,
        default_progress,
        default_use_cache,
    )
    from repro.experiments.parallel import default_cache as engine_cache
    from repro.sched.campaign import (
        CampaignConfig,
        collect_results,
        default_result_store,
        submit_specs,
    )
    from repro.sched.state import load_state
    from repro.sched.worker import Worker

    if not specs:
        return []
    if jobs is None:
        jobs = default_jobs()
    if use_cache is None:
        use_cache = default_use_cache()
    if progress is None:
        progress = default_progress()

    keys = [spec.key() for spec in specs]
    directory = directory or campaign_dir_for(keys)

    # The result store: the shared content-addressed cache when caching
    # is on (completion is idempotent across campaigns), else a
    # campaign-local throwaway store so --no-cache stays side-effect
    # free outside the campaign directory.
    if cache is None and use_cache:
        configured = engine_cache()
        cache = configured if configured is not None else ResultCache()
    store = cache if cache is not None else default_result_store(directory)

    config = CampaignConfig(
        name=os.path.basename(directory.rstrip(os.sep)) or "fabric",
        lease_ttl=lease_ttl if lease_ttl is not None else 60.0,
    )
    submit_specs(directory, specs, config)

    started = time.perf_counter()

    def report() -> None:
        if not progress:
            return
        counts = load_state(directory).counts()
        terminal = (counts["done"] + counts["failed"]
                    + counts["quarantined"])
        progress(BatchProgress(
            total=counts["total"], completed=terminal, cache_hits=0,
            failed=counts["failed"] + counts["quarantined"],
            elapsed=time.perf_counter() - started,
        ))

    drain_campaign(directory, store,
                   jobs=1 if len(specs) == 1 else min(jobs, len(specs)),
                   on_poll=report)
    report()

    state = load_state(directory)
    ordered = collect_results(state, store, rerun_missing=True)
    by_key = {task.key: result
              for task, result in zip(state.iter_tasks(), ordered)}
    return [by_key.get(key) for key in keys]
