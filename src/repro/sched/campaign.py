"""Client-side campaign operations: submit, status, collect, report.

A campaign is a directory (see :mod:`repro.sched.journal`) plus the
shared result cache.  Clients append ``submit`` records (idempotent —
resubmitting a key the journal already holds is a no-op), workers drain
them, and anyone can reconstruct progress from the journal alone.

The **campaign report** is deliberately *canonical*: it contains each
task's identity, terminal state, and (for completed tasks) the full
deterministic ``SimResult`` payload — and none of the operational noise
(attempt counts, worker ids, wall-clock timings).  Two executions of the
same campaign therefore serialise to byte-identical reports no matter
how many workers died, heartbeats dropped, or journal tails tore along
the way; the chaos suite (tests/verify/test_chaos.py) holds exactly
that equality.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import SMTConfig
from repro.core.simulator import SimResult
from repro.experiments.cache import (
    ResultCache,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.runner import RunBudget
from repro.sched import state as state_mod
from repro.sched.journal import JournalWriter, lock_journal
from repro.sched.state import CampaignState, load_state

log = logging.getLogger("repro.sched")


# ----------------------------------------------------------------------
# Campaign configuration (stored in the journal's ``campaign`` record).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignConfig:
    """Scheduler knobs, fixed at submit time and replayed by workers."""

    name: str = "campaign"
    #: Seconds a lease lives without a heartbeat before any scanner may
    #: reclaim it.  Size it at several times the slowest expected run.
    lease_ttl: float = 60.0
    #: Executions (initial + retries) a task may consume before FAILED.
    max_attempts: int = 3
    #: Distinct dead workers that mark a task as poison (QUARANTINED).
    poison_threshold: int = 3
    #: Base of the exponential requeue backoff, in seconds.
    backoff: float = 0.5

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_state(cls, state: CampaignState) -> "CampaignConfig":
        config = dict(state.config)
        config.pop("name", None)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(name=state.name,
                   **{k: v for k, v in config.items() if k in known})


# ----------------------------------------------------------------------
# RunSpec (de)serialisation — the journal stores plain JSON.
# ----------------------------------------------------------------------
def spec_to_payload(spec: Any) -> Dict[str, Any]:
    """A :class:`~repro.experiments.parallel.RunSpec` as journal JSON."""
    return {
        "config": dataclasses.asdict(spec.config),
        "rotation": spec.rotation,
        "budget": dataclasses.asdict(spec.budget),
        "seed": spec.seed,
        "dcache_mshrs": spec.dcache_mshrs,
        "check_invariants": spec.check_invariants,
    }


def spec_from_payload(payload: Dict[str, Any]) -> Any:
    from repro.experiments.parallel import RunSpec

    return RunSpec(
        config=SMTConfig(**payload["config"]),
        rotation=int(payload["rotation"]),
        budget=RunBudget(**payload["budget"]),
        seed=int(payload.get("seed", 0)),
        dcache_mshrs=payload.get("dcache_mshrs"),
        check_invariants=bool(payload.get("check_invariants", False)),
    )


def spec_label(spec: Any) -> str:
    return (f"{spec.config.scheme_name}/T{spec.config.n_threads}"
            f"/rot{spec.rotation}")


# ----------------------------------------------------------------------
# Submission.
# ----------------------------------------------------------------------
def submit_specs(
    directory: str,
    specs: Sequence[Any],
    config: Optional[CampaignConfig] = None,
) -> int:
    """Append submit records for every spec the journal doesn't hold.

    Returns the number of *new* tasks.  Submission is idempotent per
    content key: clients may re-submit an overlapping batch (a resumed
    experiment, a second client sharing the campaign) without creating
    duplicate work.  The first submission also persists the campaign
    config so workers and reclaimers agree on TTL/retry/poison knobs.
    """
    config = config or CampaignConfig()
    with lock_journal(directory):
        state = load_state(directory)
        with JournalWriter(directory) as writer:
            if not state.config:
                writer.append({
                    "event": "campaign", "name": config.name,
                    "config": config.to_dict(),
                })
            added = 0
            for spec in specs:
                key = spec.key()
                if key in state.tasks:
                    continue
                record = {
                    "event": "submit", "key": key,
                    "label": spec_label(spec),
                    "spec": spec_to_payload(spec),
                }
                writer.append(record)
                state.apply(record)
                added += 1
    return added


# ----------------------------------------------------------------------
# Status and recovery.
# ----------------------------------------------------------------------
def reclaim_expired(
    writer: JournalWriter,
    state: CampaignState,
    now: float,
    config: Optional[CampaignConfig] = None,
) -> int:
    """Resolve every expired lease (caller holds the journal lock).

    Appends the requeue/quarantine/failed record each expired lease
    implies and applies it to ``state`` in place.  Returns the number
    of leases reclaimed.
    """
    config = config or CampaignConfig.from_state(state)
    reclaimed = 0
    for task in state.expired_leases(now):
        record = state_mod.plan_reclaim(
            task, now,
            max_attempts=config.max_attempts,
            poison_threshold=config.poison_threshold,
            backoff=config.backoff,
        )
        writer.append(record)
        state.apply(record)
        reclaimed += 1
    return reclaimed


def campaign_status(
    directory: str,
    now: Optional[float] = None,
    reclaim: bool = False,
) -> CampaignState:
    """Replay the journal; optionally reclaim expired leases first."""
    if not reclaim:
        return load_state(directory)
    import time

    now = time.time() if now is None else now
    with lock_journal(directory):
        state = load_state(directory)
        with JournalWriter(directory) as writer:
            reclaim_expired(writer, state, now)
    return state


def describe_status(state: CampaignState) -> str:
    counts = state.counts()
    lines = [
        f"campaign {state.name}: {counts['done']}/{counts['total']} done, "
        f"{counts['pending']} pending, {counts['leased']} leased, "
        f"{counts['failed']} failed, {counts['quarantined']} quarantined"
        + (f", {counts['duplicates']} duplicate terminal record(s)"
           if counts["duplicates"] else "")
    ]
    for task in state.iter_tasks():
        if task.status == state_mod.LEASED and task.lease is not None:
            lines.append(
                f"  leased: {task.label or task.key[:12]} -> "
                f"{task.lease.worker} (attempt {task.attempt}, "
                f"expires {task.lease.expires:.1f})"
            )
        elif task.status in (state_mod.FAILED, state_mod.QUARANTINED):
            failure = task.failure or {}
            lines.append(
                f"  [{failure.get('kind', task.status)}] "
                f"{task.label or task.key[:12]}: "
                f"{failure.get('message', '')}"
            )
    if state.workers:
        roster = ", ".join(
            f"{name}:{status}" for name, status in sorted(state.workers.items())
        )
        lines.append(f"  workers: {roster}")
    return "\n".join(lines)


def status_rows(state: CampaignState) -> List[Dict[str, Any]]:
    """Per-task status rows (submit order): the *operational* view.

    Unlike :func:`report_rows` — which is canonical and noise-free —
    these rows carry attempts, lease holders, and backoff gates: the
    live detail an operator (or the service ``status`` verb) needs to
    see what the scheduler is doing right now.
    """
    rows = []
    for task in state.iter_tasks():
        failure = task.failure or {}
        row: Dict[str, Any] = {
            "key": task.key,
            "label": task.label,
            "state": task.status,
            "terminal": task.terminal,
            "attempt": task.attempt,
        }
        if task.lease is not None:
            row["lease"] = {
                "worker": task.lease.worker,
                "expires": task.lease.expires,
            }
        if task.not_before:
            row["not_before"] = task.not_before
        if failure:
            row["failure_kind"] = failure.get("kind")
            row["failure_message"] = failure.get("message", "")
        rows.append(row)
    return rows


def status_document(state: CampaignState) -> Dict[str, Any]:
    """The campaign's machine-readable status (``repro.service_status``).

    One builder for both consumers — ``repro campaign status --json``
    and the service ``status`` verb — so socket and filesystem clients
    always see the same shape.
    """
    from repro.experiments import export

    return export.service_status_document(
        state.name, state.counts(), status_rows(state),
        workers=state.workers,
    )


# ----------------------------------------------------------------------
# Cancellation.
# ----------------------------------------------------------------------
def cancel_tasks(
    directory: str,
    keys: Optional[Sequence[str]] = None,
) -> List[str]:
    """Cancel pending tasks: append terminal ``failed`` records with
    kind ``cancelled``.

    ``keys=None`` cancels every PENDING task; otherwise only the named
    keys.  LEASED tasks are deliberately left alone — their worker
    holds a valid lease and will finish or expire on its own; racing it
    with a terminal record would make cancellation outcome-dependent on
    timing, which first-terminal-wins replay forbids us to care about.
    Terminal tasks are no-ops.  Returns the cancelled keys, in submit
    order.
    """
    cancelled: List[str] = []
    with lock_journal(directory):
        state = load_state(directory)
        wanted = None if keys is None else set(keys)
        with JournalWriter(directory) as writer:
            for task in state.iter_tasks():
                if task.status != state_mod.PENDING:
                    continue
                if wanted is not None and task.key not in wanted:
                    continue
                record = {
                    "event": "failed", "key": task.key,
                    "failure": {
                        "kind": "cancelled", "key": task.key,
                        "message": "cancelled by client",
                        "label": task.label,
                    },
                }
                writer.append(record)
                state.apply(record)
                cancelled.append(task.key)
    return cancelled


# ----------------------------------------------------------------------
# Result collection.
# ----------------------------------------------------------------------
def default_result_store(directory: str) -> ResultCache:
    """The campaign-local result store (used when no shared cache is
    configured): lives inside the journal directory so the campaign is
    self-contained."""
    import os

    return ResultCache(os.path.join(directory, "results"))


def collect_results(
    state: CampaignState,
    cache: ResultCache,
    rerun_missing: bool = True,
    run_fn: Optional[Any] = None,
) -> List[Optional[SimResult]]:
    """Results in submit order (``None`` for failed/quarantined tasks).

    Completion records promise the result is in the content-addressed
    store — but stores rot (the chaos suite corrupts entries on
    purpose).  A DONE task whose cache entry is missing or quarantined
    is deterministically re-executed inline (and re-stored), so a
    corrupt cache degrades to recomputation, never to a wrong or absent
    result.
    """
    results: List[Optional[SimResult]] = []
    for task in state.iter_tasks():
        if task.status != state_mod.DONE:
            results.append(None)
            continue
        result = cache.get(task.key)
        if result is None and rerun_missing and task.payload is not None:
            if run_fn is None:
                from repro.experiments.parallel import run_spec
                run_fn = run_spec
            log.warning(
                "result for completed task %s missing/corrupt in cache; "
                "re-running deterministically", task.key[:12],
            )
            result = run_fn(spec_from_payload(task.payload))
            cache.put(task.key, result)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# The canonical campaign report.
# ----------------------------------------------------------------------
def report_rows(
    state: CampaignState,
    results: Sequence[Optional[SimResult]],
) -> List[Dict[str, Any]]:
    """Per-task report rows: identity + terminal state + result payload.

    Operational detail (attempts, workers, elapsed, duplicates) is
    excluded on purpose — the report must be bit-identical across
    fault-free and fault-ridden executions of the same campaign.
    """
    rows = []
    for task, result in zip(state.iter_tasks(), results):
        failure = task.failure or {}
        rows.append({
            "key": task.key,
            "label": task.label,
            "state": task.status,
            "failure_kind": failure.get("kind") if task.terminal
            and task.status != state_mod.DONE else None,
            "result": result_to_dict(result) if result is not None else None,
        })
    return rows


def report_results(rows: Sequence[Dict[str, Any]]) -> List[Optional[SimResult]]:
    """Inverse of :func:`report_rows` (for report consumers)."""
    return [
        result_from_dict(row["result"]) if row.get("result") else None
        for row in rows
    ]


def campaign_report(
    directory: str,
    cache: Optional[ResultCache] = None,
    rerun_missing: bool = True,
    run_fn: Optional[Any] = None,
) -> Dict[str, Any]:
    """The canonical report document for one campaign directory."""
    from repro.experiments import export

    state = load_state(directory)
    cache = cache if cache is not None else default_result_store(directory)
    results = collect_results(state, cache, rerun_missing=rerun_missing,
                              run_fn=run_fn)
    return export.fabric_document(state.name, report_rows(state, results))
