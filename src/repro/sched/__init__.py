"""Durable campaign scheduler: queue, leases, crash recovery.

The distributed campaign fabric (ROADMAP item 2) in its robustness-first
form.  Clients submit :class:`~repro.experiments.parallel.RunSpec` s to
a durable queue; workers (``repro worker <journal-dir>``) claim tasks
under TTL leases with heartbeat renewal; the append-only JSONL journal
is the single source of truth and the shared
:class:`~repro.experiments.cache.ResultCache` is the content-addressed
result store, so completion is idempotent and replay-safe.

Layers (each importable on its own):

* :mod:`repro.sched.journal` — the durable append-only record log
  (``repro.campaign_journal`` schema v2) with advisory locking, torn-tail
  tolerance + self-repair, and optional ``fsync`` durability
  (``REPRO_JOURNAL_FSYNC``).
* :mod:`repro.sched.state` — the replayed state machine: task lifecycle
  (pending → leased → done/failed/quarantined), lease expiry, bounded
  retries with exponential backoff, and poison quarantine.
* :mod:`repro.sched.campaign` — the client API: submit, status,
  result collection, and the canonical (bit-reproducible) campaign
  report document.
* :mod:`repro.sched.worker` — the worker loop: claim, heartbeat,
  execute, complete; graceful drain on SIGTERM; chaos hook points for
  the fault-injection harness (:mod:`repro.verify.chaos`).
* :mod:`repro.sched.fabric` — ``repro experiment --fabric``: transparent
  delegation of :func:`~repro.experiments.parallel.execute_runs`
  batches through the scheduler.

See ``docs/fabric.md`` for the architecture, the lease protocol, and
the failure matrix the chaos suite holds it to.
"""

from repro.sched.campaign import (
    CampaignConfig,
    campaign_status,
    collect_results,
    submit_specs,
)
from repro.sched.journal import JournalWriter, journal_path, read_records
from repro.sched.state import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    QUARANTINED,
    CampaignState,
    Task,
    load_state,
)
from repro.sched.worker import Worker, WorkerKilled

__all__ = [
    "CampaignConfig",
    "CampaignState",
    "DONE",
    "FAILED",
    "JournalWriter",
    "LEASED",
    "PENDING",
    "QUARANTINED",
    "Task",
    "Worker",
    "WorkerKilled",
    "campaign_status",
    "collect_results",
    "journal_path",
    "load_state",
    "read_records",
    "submit_specs",
]
