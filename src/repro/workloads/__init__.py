"""Synthetic multiprogrammed workloads standing in for SPEC92 + TeX.

The paper runs Alpha binaries of five SPEC92 floating-point programs
(alvinn, doduc, fpppp, ora, tomcatv), two integer programs (espresso,
xlisp), and TeX.  We cannot run Alpha binaries, so each benchmark is
replaced by a synthetic program *generator* whose knobs (instruction mix,
basic-block size, branch predictability, working-set size and access
pattern, recursion depth, indirect-jump behaviour, text footprint) are
calibrated to the published character of the original program.  What the
timing model cares about — ILP, queue occupancy, miss rates, misprediction
rates — is carried by those knobs, not by program semantics.
"""

from repro.workloads.profiles import PROFILES, WorkloadProfile, profile_names
from repro.workloads.synthetic import generate_program
from repro.workloads.mixes import benchmark_rotation, standard_mix

__all__ = [
    "PROFILES",
    "WorkloadProfile",
    "profile_names",
    "generate_program",
    "benchmark_rotation",
    "standard_mix",
]
