"""Warm machine-state images: amortising functional warmup across runs.

Functional warmup (:meth:`Simulator.functional_warmup`) dominates the cost
of short campaign runs: it emulates tens of thousands of instructions per
thread to bring caches, TLBs, and the branch predictor to steady state
before a comparatively small timed window.  Warmup is a *pure function*
of the workload and the warm-relevant configuration — it reads no timed
state — so its result can be captured once and replayed into any fresh
simulator built from the same spec.

A :class:`WarmImage` is a deep snapshot of everything functional warmup
mutates:

* per thread: the architectural emulator (pc, instret, halted, register
  files, memory overlays), the physical frame map, ``fetch_pc``, and
  ``last_data_addr``;
* the hierarchy: every cache level's tag/LRU sets and both TLB maps
  (timing state — banks, ports, MSHRs — is untouched by warmup);
* the branch predictor (BTB, PHT, RAS, histories), snapshotted whole.

:func:`restore` copies *out of* the image each time, so one image serves
any number of simulators; equivalence with a fresh warmup is enforced by
``tests/workloads/test_images.py`` (bit-identical ``SimResult``).

Images live in a process-level store.  The parallel engine precomputes a
batch's images in the pool parent **before** forking workers, so every
worker inherits them copy-on-write and per-run warmup drops to a
restore.  The serial path uses the same store, amortising warmup across
repeated specs within one process.  Set ``REPRO_NO_WARM_IMAGES=1`` to
disable image use entirely (every run then warms from scratch).
"""

from __future__ import annotations

import copy
import os
from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator

#: Bounded store: a huge sweep of distinct configs must not hold every
#: warm state alive.  LRU eviction; 64 images is far beyond any one
#: figure's working set.
_MAX_IMAGES = 64

_STORE: "OrderedDict[str, WarmImage]" = OrderedDict()
_GENERATION = 0

#: Statistics (introspectable from benchmarks/tests).
hits = 0
misses = 0


def images_enabled() -> bool:
    from repro.envutil import env_flag
    return not env_flag("REPRO_NO_WARM_IMAGES")


class WarmImage:
    """Snapshot of the machine state functional warmup produces."""

    __slots__ = ("threads", "cache_sets", "tlb_maps", "predictor",
                 "warm_instructions")

    def __init__(self, threads: List[dict], cache_sets: List[list],
                 tlb_maps: List[OrderedDict], predictor: object,
                 warm_instructions: int):
        self.threads = threads
        self.cache_sets = cache_sets
        self.tlb_maps = tlb_maps
        self.predictor = predictor
        self.warm_instructions = warm_instructions


# ----------------------------------------------------------------------
def capture(sim: "Simulator", warm_instructions: int) -> WarmImage:
    """Deep-copy the warm state out of ``sim`` (post functional warmup)."""
    threads = []
    for thread in sim.threads:
        emu = thread.emulator
        threads.append({
            "pc": emu.pc,
            "instret": emu.instret,
            "halted": emu.halted,
            "int_regs": list(emu.int_regs),
            "fp_regs": list(emu.fp_regs),
            "mem": dict(emu._mem),
            "fmem": dict(emu._fmem),
            "frames": dict(thread._frames),
            "fetch_pc": thread.fetch_pc,
            "last_data_addr": thread.last_data_addr,
        })
    hierarchy = sim.hierarchy
    cache_sets = [
        [list(s) for s in cache._sets]
        for cache in (hierarchy.icache, hierarchy.dcache,
                      hierarchy.l2, hierarchy.l3)
    ]
    tlb_maps = [OrderedDict(hierarchy.itlb._map),
                OrderedDict(hierarchy.dtlb._map)]
    return WarmImage(threads, cache_sets, tlb_maps,
                     copy.deepcopy(sim.predictor), warm_instructions)


def restore(sim: "Simulator", image: WarmImage) -> None:
    """Install ``image`` into a freshly constructed ``sim``."""
    if sim.cycle != 0:
        raise RuntimeError("warm image restore must precede simulation")
    if len(sim.threads) != len(image.threads):
        raise ValueError("image/simulator thread-count mismatch")
    for thread, st in zip(sim.threads, image.threads):
        emu = thread.emulator
        emu.pc = st["pc"]
        emu.instret = st["instret"]
        emu.halted = st["halted"]
        emu.int_regs[:] = st["int_regs"]
        emu.fp_regs[:] = st["fp_regs"]
        emu._mem.clear()
        emu._mem.update(st["mem"])
        emu._fmem.clear()
        emu._fmem.update(st["fmem"])
        thread._frames.clear()
        thread._frames.update(st["frames"])
        thread.fetch_pc = st["fetch_pc"]
        thread.last_data_addr = st["last_data_addr"]
    hierarchy = sim.hierarchy
    for cache, sets in zip(
        (hierarchy.icache, hierarchy.dcache, hierarchy.l2, hierarchy.l3),
        image.cache_sets,
    ):
        cache._sets = [list(s) for s in sets]
    hierarchy.itlb._map = OrderedDict(image.tlb_maps[0])
    hierarchy.dtlb._map = OrderedDict(image.tlb_maps[1])
    sim.predictor = copy.deepcopy(image.predictor)


# ----------------------------------------------------------------------
def lookup(key: str) -> Optional[WarmImage]:
    image = _STORE.get(key)
    if image is not None:
        _STORE.move_to_end(key)
    return image


def put(key: str, image: WarmImage) -> None:
    global _GENERATION
    _STORE[key] = image
    _STORE.move_to_end(key)
    while len(_STORE) > _MAX_IMAGES:
        _STORE.popitem(last=False)
    _GENERATION += 1


def generation() -> int:
    """Monotonic store version — the pool re-forks when it changes, so
    workers always inherit the current images copy-on-write."""
    return _GENERATION


def clear() -> None:
    """Drop all images (tests, benchmark isolation)."""
    global _GENERATION, hits, misses
    _STORE.clear()
    _GENERATION += 1
    hits = 0
    misses = 0


def size() -> int:
    return len(_STORE)


# ----------------------------------------------------------------------
def warm_via_image(sim: "Simulator", key: str,
                   warm_instructions: int) -> bool:
    """Warm ``sim``, through the image store when possible.

    On a hit the stored image is restored (no emulation); on a miss the
    ordinary :meth:`functional_warmup` runs and its outcome is captured
    for the next simulator with the same key.  Returns True on a hit.
    """
    global hits, misses
    image = lookup(key)
    if image is not None and image.warm_instructions == warm_instructions:
        restore(sim, image)
        hits += 1
        return True
    sim.functional_warmup(warm_instructions)
    put(key, capture(sim, warm_instructions))
    misses += 1
    return False
