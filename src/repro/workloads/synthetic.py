"""Synthetic benchmark generator.

Given a :class:`~repro.workloads.profiles.WorkloadProfile` and a seed,
:func:`generate_program` produces a complete, runs-forever program:

* a dispatcher loop that tours the program's procedures (I-cache
  pressure, call/return traffic for the return-address stacks),
* procedures built from basic blocks sampled from the profile's
  instruction mix, with per-procedure memory cursors persisted in a
  globals area (load/store traffic with realistic address streams),
* data-dependent branches fed from a pre-initialised "flags" array whose
  bit bias sets their predictability,
* optionally a switch-style indirect jump (BTB/jump-misprediction
  traffic) and a recursive function (return-stack depth pressure).

Everything is deterministic in (profile, seed).

Register conventions
--------------------
=========  ====================================================
r1..r10    block scratch results
r11..r18   stable (loop-invariant) integer values
r9 / r8    address computation temporaries
r10        per-procedure memory cursor (persisted in globals)
r20, r21   loop counters / recursion depth argument
r22        selector cursor (switch)
r23        flags cursor (data-dependent branches)
r24        working-set address mask (ws - 8)
r25        data base pointer
r26        aux/globals base pointer
r27        case-table base pointer
r28        pointer-chase cursor
r29        stack pointer
r31        link register
f1..f10    FP block scratch
f11..f18   stable FP values
=========  ====================================================

Memory layout (per program)
---------------------------
``[DATA_BASE, DATA_BASE + ws)``    main working set (chase nodes live here)
``AUX = DATA_BASE + ws``:

=================  =========================================
AUX + 0..2047      globals (procedure cursors, misc)
AUX + 2048         case table (one word per switch case)
AUX + 3072..7167   selector array (512 words)
AUX + 8192..16383  flags array (1024 words)
AUX + 24576..32767 stack (grows down from AUX + 32760)
=================  =========================================
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE, Program
from repro.workloads.profiles import WorkloadProfile

_AUX_GLOBALS = 0
_AUX_CASETAB = 2048
_AUX_SELECTORS = 3072
_AUX_FLAGS = 8192
_AUX_STACK_TOP = 32760
_AUX_SIZE = 32768

_N_SELECTORS = 128
_N_FLAGS = 128

_INT_STABLE = list(range(11, 19))
_FP_STABLE = list(range(11, 19))
_INT_SCRATCH = list(range(1, 8))  # r8, r9, r10 reserved for addresses/cursor
_FP_SCRATCH = list(range(1, 11))


class _Builder:
    """Accumulates assembly lines and fresh-label counters."""

    def __init__(self, profile: WorkloadProfile, rng: random.Random):
        self.p = profile
        self.rng = rng
        self.lines: List[str] = []
        self._label_counter = 0
        self._int_scratch_next = 0
        self._fp_scratch_next = 0
        self.recent_int: List[int] = list(_INT_STABLE)
        self.recent_fp: List[int] = list(_FP_STABLE)
        self.last_addr_reg: Optional[str] = None

    # -- low-level emitters -------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def label(self, name: str) -> None:
        self.lines.append(name + ":")

    def fresh(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    # -- register selection -------------------------------------------
    def _next_int_scratch(self) -> int:
        reg = _INT_SCRATCH[self._int_scratch_next % len(_INT_SCRATCH)]
        self._int_scratch_next += 1
        return reg

    def _next_fp_scratch(self) -> int:
        reg = _FP_SCRATCH[self._fp_scratch_next % len(_FP_SCRATCH)]
        self._fp_scratch_next += 1
        return reg

    def _int_source(self) -> int:
        # Dependent operands chain on the most recent result: real code's
        # critical paths are serial (address -> load -> compare -> use),
        # which is what bounds single-thread ILP on a wide machine.
        if self.rng.random() < self.p.dependence_density:
            return self.recent_int[-1]
        return self.rng.choice(_INT_STABLE)

    def _fp_source(self) -> int:
        if self.rng.random() < self.p.dependence_density:
            return self.recent_fp[-1]
        return self.rng.choice(_FP_STABLE)

    def _note_int_result(self, reg: int) -> None:
        self.recent_int.append(reg)
        if len(self.recent_int) > 8:
            self.recent_int.pop(0)

    def _note_fp_result(self, reg: int) -> None:
        self.recent_fp.append(reg)
        if len(self.recent_fp) > 8:
            self.recent_fp.pop(0)

    # -- address generation --------------------------------------------
    #: Data-region byte offset of the current procedure's hot slice;
    #: set by the procedure emitter.
    slice_base: int = 0

    def emit_address(self) -> str:
        """Emit the profile's address-stream update; return the register
        name that holds the resulting (data-region) address.

        seq/stride/random streams tile through the procedure's hot slice
        (``hot_region`` bytes at ``slice_base``): accesses mostly hit a
        cache-resident window, while different procedures' slices cover
        the whole working set over time.
        """
        pattern = self.p.access_pattern
        if pattern == "chase":
            self.emit("ld r28, 0(r28)")
            self.last_addr_reg = "r28"
            return "r28"
        hot_mask = self.p.hot_region - 8  # keeps 8-byte alignment
        if pattern == "random":
            self.emit("slli r8, r10, 13")
            self.emit("xor r10, r10, r8")
            self.emit("srli r8, r10, 7")
            self.emit("xor r10, r10, r8")
            self.emit(f"andi r9, r10, {hot_mask}")
            self.emit("add r9, r9, r25")
        else:
            stride = 8 if pattern == "seq" else self.p.stride
            if self.rng.random() < 0.35:
                # Indexed addressing: the address stream depends on
                # computed values (a[b[i]]-style), merging the address
                # recurrence into the value chain — the serial critical
                # path that bounds real single-thread ILP.
                self.emit(f"add r10, r10, r{self.recent_int[-1]}")
            else:
                self.emit(f"addi r10, r10, {stride}")
            self.emit(f"andi r10, r10, {hot_mask}")
            self.emit("add r9, r10, r25")
        if self.slice_base:
            self.emit(f"addi r9, r9, {self.slice_base}")
        self.last_addr_reg = "r9"
        return "r9"

    def _addr_for_access(self) -> str:
        """Reuse the last computed address sometimes (spatial locality),
        otherwise advance the stream."""
        if self.last_addr_reg is not None and self.rng.random() < 0.3:
            return self.last_addr_reg
        return self.emit_address()

    # -- mix ops ---------------------------------------------------------
    def emit_load(self) -> None:
        if self.p.access_pattern == "chase" and self.rng.random() < 0.5:
            # A chase step *is* a load (the next-pointer fetch).
            self.emit("ld r28, 0(r28)")
            self.last_addr_reg = "r28"
            return
        addr = self._addr_for_access()
        off = 8 if addr == "r28" else 0
        if self.p.frac_fp > 0 and self.rng.random() < 0.55:
            reg = self._next_fp_scratch()
            self.emit(f"fld f{reg}, {off}({addr})")
            self._note_fp_result(reg)
        else:
            reg = self._next_int_scratch()
            self.emit(f"ld r{reg}, {off}({addr})")
            self._note_int_result(reg)

    def emit_store(self) -> None:
        addr = self._addr_for_access()
        off = 8 if addr == "r28" else 0
        if self.p.frac_fp > 0 and self.rng.random() < 0.5:
            self.emit(f"fst f{self._fp_source()}, {off}({addr})")
        else:
            self.emit(f"st r{self._int_source()}, {off}({addr})")

    def emit_fp_op(self) -> None:
        rng = self.rng
        reg = self._next_fp_scratch()
        if rng.random() < self.p.frac_fp_div:
            op = "fdivd" if rng.random() < 0.4 else "fdiv"
            self.emit(f"{op} f{reg}, f{self._fp_source()}, f{rng.choice(_FP_STABLE)}")
        else:
            op = rng.choice(["fadd", "fadd", "fmul", "fmul", "fsub"])
            self.emit(f"{op} f{reg}, f{self._fp_source()}, f{self._fp_source()}")
        self._note_fp_result(reg)

    def emit_mul(self) -> None:
        reg = self._next_int_scratch()
        op = "mulq" if self.rng.random() < 0.25 else "mul"
        self.emit(f"{op} r{reg}, r{self._int_source()}, r{self._int_source()}")
        self._note_int_result(reg)

    def emit_int_op(self) -> None:
        rng = self.rng
        reg = self._next_int_scratch()
        r = rng.random()
        if r < 0.55:
            op = rng.choice(["add", "sub", "xor", "and", "or"])
            self.emit(f"{op} r{reg}, r{self._int_source()}, r{self._int_source()}")
        elif r < 0.75:
            self.emit(f"addi r{reg}, r{self._int_source()}, {rng.randrange(1, 64)}")
        elif r < 0.85:
            op = rng.choice(["slli", "srli"])
            self.emit(f"{op} r{reg}, r{self._int_source()}, {rng.randrange(1, 9)}")
        elif r < 0.95:
            op = rng.choice(["cmplt", "cmpeq", "cmple"])
            self.emit(f"{op} r{reg}, r{self._int_source()}, r{self._int_source()}")
        else:
            op = rng.choice(["cmovz", "cmovnz"])
            self.emit(f"{op} r{reg}, r{self._int_source()}, r{self._int_source()}")
        self._note_int_result(reg)

    def emit_data_branch(self) -> None:
        """A branch whose direction is decided by pre-initialised flag data."""
        skip = self.fresh("skip")
        self.emit("addi r23, r23, 8")
        self.emit(f"andi r23, r23, {_N_FLAGS * 8 - 1}")
        self.emit("add r8, r23, r26")
        self.emit(f"ld r7, {_AUX_FLAGS}(r8)")
        self.emit("andi r7, r7, 1")
        # bnez: taken with probability = the flag bias, so these forward
        # branches actually fragment fetch blocks like real taken
        # branches do (the filler below is the rarely-executed arm).
        self.emit(f"bnez r7, {skip}")
        for _ in range(self.rng.randrange(2, 5)):
            self.emit_int_op()
        self.label(skip)

    def emit_block(self) -> None:
        """One basic block sampled from the profile's instruction mix."""
        p, rng = self.p, self.rng
        size = rng.randrange(p.block_size[0], p.block_size[1] + 1)
        for _ in range(size):
            r = rng.random()
            if r < p.frac_fp:
                self.emit_fp_op()
            elif r < p.frac_fp + p.frac_load:
                self.emit_load()
            elif r < p.frac_fp + p.frac_load + p.frac_store:
                self.emit_store()
            elif r < p.frac_fp + p.frac_load + p.frac_store + p.frac_mul:
                self.emit_mul()
            else:
                self.emit_int_op()
        if rng.random() < p.data_branch_prob:
            self.emit_data_branch()


def _emit_procedure(b: _Builder, index: int, body_instructions: int) -> None:
    """Emit one leaf procedure: a sequence of small counted loops.

    Real loop nests are short — a backedge every block or two — which is
    what makes branch frequency high and fetch blocks fragmented (the
    effect Section 5.1 of the paper exploits).  Each loop body is one
    basic block plus the loop glue; successive loops walk the procedure's
    memory cursor further along its stream.
    """
    p, rng = b.p, b.rng
    b.label(f"proc_{index}")
    # This procedure's hot slice of the working set (line-aligned tile).
    b.slice_base = (index * p.hot_region) % p.working_set
    cursor_slot = 8 * index
    b.emit(f"ld r10, {cursor_slot}(r26)")
    # Outer loop: real code concentrates execution in hot loop nests, so
    # each inner backedge executes outer_trip * trip times per call —
    # enough for the 2-bit PHT counters to converge.
    outer = rng.randrange(p.outer_trip[0], p.outer_trip[1] + 1)
    b.emit(f"li r21, {outer}")
    b.label(f"pouter_{index}")
    emitted = 0
    segment = 0
    while emitted < body_instructions:
        before = len(b.lines)
        trip = rng.randrange(p.trip_count[0], p.trip_count[1] + 1)
        loop = f"ploop_{index}_{segment}"
        b.emit(f"li r20, {trip}")
        b.label(loop)
        b.last_addr_reg = None  # addresses don't survive the back edge
        b.emit_block()
        b.emit("addi r20, r20, -1")
        b.emit(f"bnez r20, {loop}")
        emitted += len(b.lines) - before
        segment += 1
    b.emit("addi r21, r21, -1")
    b.emit(f"bnez r21, pouter_{index}")
    b.emit(f"st r10, {cursor_slot}(r26)")
    b.emit("ret")


def _emit_switch(b: _Builder, n_cases: int, switch_id: int) -> None:
    """Emit a switch-style indirect jump.  Each switch instance gets its
    own slice of the case table (filled with its case-label addresses by
    :func:`_initialise_data`)."""
    done = b.fresh("swdone")
    table_off = switch_id * n_cases * 8
    b.emit("addi r22, r22, 8")
    b.emit(f"andi r22, r22, {_N_SELECTORS * 8 - 1}")
    b.emit("add r9, r22, r27")
    b.emit(f"ld r8, {_AUX_SELECTORS - _AUX_CASETAB}(r9)")
    b.emit("slli r8, r8, 3")
    b.emit(f"add r8, r8, r27")
    b.emit("ld r8, {0}(r8)".format(table_off))
    b.emit("jr r8")
    for case in range(n_cases):
        b.label(f"case_{switch_id}_{case}")
        for _ in range(b.rng.randrange(2, 6)):
            b.emit_int_op()
        b.emit(f"j {done}")
    b.label(done)


def _emit_recursive_fn(b: _Builder) -> None:
    """Emit a self-recursive function driven by the r20 depth argument."""
    b.label("recfn")
    b.emit("addi r29, r29, -16")
    b.emit("st r31, 0(r29)")
    b.emit("st r20, 8(r29)")
    for _ in range(4):
        b.emit_int_op()
    if b.p.access_pattern == "chase":
        b.emit("ld r28, 0(r28)")
    b.emit("addi r20, r20, -1")
    b.emit("beqz r20, recbase")
    b.emit("jal recfn")
    b.label("recbase")
    b.emit("ld r31, 0(r29)")
    b.emit("ld r20, 8(r29)")
    b.emit("addi r29, r29, 16")
    b.emit("ret")


def _emit_start(b: _Builder, ws: int) -> None:
    """Emit register initialisation."""
    aux = DATA_BASE + ws
    b.label("_start")
    b.emit(f"li r24, {ws - 8}")        # address mask (8-byte aligned)
    b.emit(f"li r25, {DATA_BASE}")     # data base
    b.emit(f"li r26, {aux}")           # globals base
    b.emit(f"li r27, {aux + _AUX_CASETAB}")
    b.emit(f"li r28, {DATA_BASE}")     # chase head
    b.emit(f"li r29, {aux + _AUX_STACK_TOP}")
    b.emit("li r22, 0")
    b.emit("li r23, 0")
    for i, reg in enumerate(_INT_STABLE):
        b.emit(f"li r{reg}, {2 * i + 3}")
    # Stable FP registers are loaded from pre-initialised globals words.
    for i, reg in enumerate(_FP_STABLE):
        b.emit(f"fld f{reg}, {1600 + 8 * i}(r26)")


def generate_program(profile: WorkloadProfile, seed: int = 0) -> Program:
    """Generate the synthetic program for ``profile``.

    Deterministic in ``(profile, seed)``.  The returned program never
    halts; the simulator runs it for a fixed cycle/instruction budget.
    """
    name_hash = zlib.crc32(profile.name.encode("ascii")) & 0xFFFF_FFFF
    rng = random.Random(name_hash ^ (seed * 0x9E3779B9))
    b = _Builder(profile, rng)
    ws = profile.working_set

    b.lines.append(".text")
    _emit_start(b, ws)

    # Dispatcher: phase-structured touring.  Real programs spend long
    # stretches in a few hot procedures before moving on; each "phase"
    # loops over a small group of procedures, which keeps the set of
    # simultaneously-active branch sites within what a 2K-entry PHT can
    # hold while still touring the whole text over time (I-cache
    # pressure at phase transitions).
    order = list(range(profile.procedures))
    rng.shuffle(order)
    if profile.calls_per_iteration:
        order = order[: profile.calls_per_iteration]
    b.label("outer")
    n_switches = 0
    max_switches = (1024 // 8) // max(1, profile.switch_cases)  # table capacity
    group_size = 2
    for g in range(0, len(order), group_size):
        group = order[g : g + group_size]
        repeats = rng.randrange(4, 11)
        b.emit(f"li r19, {repeats}")
        b.label(f"phase_{g}")
        for k in group:
            b.emit(f"jal proc_{k}")
        if (
            profile.switch_cases
            and n_switches < max_switches
        ):
            _emit_switch(b, profile.switch_cases, n_switches)
            n_switches += 1
        if profile.recursion_depth and rng.random() < 0.5:
            b.emit(f"li r20, {profile.recursion_depth}")
            b.emit("jal recfn")
        b.emit("addi r19, r19, -1")
        b.emit(f"bnez r19, phase_{g}")
    b.emit("j outer")

    body_per_proc = profile.text_instructions // profile.procedures
    for index in range(profile.procedures):
        _emit_procedure(b, index, body_per_proc)

    if profile.recursion_depth:
        _emit_recursive_fn(b)

    program = assemble("\n".join(b.lines), name=profile.name)
    program.data.size = ws + _AUX_SIZE
    _initialise_data(program, profile, rng)
    return program


def _initialise_data(
    program: Program, profile: WorkloadProfile, rng: random.Random
) -> None:
    """Fill the data segment: flags, selectors, case table, FP constants,
    cursor phases, and (for chase profiles) the pointer-chase permutation."""
    words = program.data.words
    ws = profile.working_set
    aux = DATA_BASE + ws

    # Data-dependent branch flags: a Markov chain with the profile's
    # stationary bias and temporal persistence.  (If bit_{t-1} ~
    # Bernoulli(bias), copying it with probability `persist` and
    # redrawing from Bernoulli(bias) otherwise keeps the marginal at
    # `bias` while giving the branch history real information content.)
    persist = profile.data_branch_persistence
    bit = 1 if rng.random() < profile.data_branch_bias else 0
    for i in range(_N_FLAGS):
        if rng.random() >= persist:
            bit = 1 if rng.random() < profile.data_branch_bias else 0
        words[aux + _AUX_FLAGS + 8 * i] = (rng.randrange(1 << 16) << 1) | bit

    # Switch machinery.  Each switch instance owns a slice of the case
    # table; a shared selector stream picks the case index.
    if profile.switch_cases:
        for i in range(_N_SELECTORS):
            words[aux + _AUX_SELECTORS + 8 * i] = rng.randrange(profile.switch_cases)
        switch_id = 0
        while f"case_{switch_id}_0" in program.symbols:
            for case in range(profile.switch_cases):
                slot = aux + _AUX_CASETAB + (switch_id * profile.switch_cases + case) * 8
                words[slot] = program.symbols[f"case_{switch_id}_{case}"]
            switch_id += 1

    # Stable FP constants (read back by ``fld`` in _start as floats).
    for i in range(len(_FP_STABLE)):
        words[aux + 1600 + 8 * i] = rng.randrange(1, 7)

    # Per-procedure cursor phases stagger the procedures within their
    # hot slices (random-pattern cursors must start odd for xorshift).
    for k in range(profile.procedures):
        phase = (k * 1912 * 8) % profile.hot_region & ~0x7
        words[aux + 8 * k] = phase | (1 if profile.access_pattern == "random" else 0)

    # Pointer-chase permutation: 16-byte nodes forming one random cycle.
    if profile.access_pattern == "chase":
        n_nodes = ws // 16
        perm = list(range(1, n_nodes))
        rng.shuffle(perm)
        chain = [0] + perm  # start at node 0, visit every node, wrap
        for here, there in zip(chain, chain[1:] + chain[:1]):
            words[DATA_BASE + 16 * here] = DATA_BASE + 16 * there
            words[DATA_BASE + 16 * here + 8] = rng.randrange(1 << 16)
