"""Workload profiles: the calibration knobs for each synthetic benchmark.

Each :class:`WorkloadProfile` describes one program of the paper's workload
(Section 3).  The knobs are chosen from the programs' well-documented
characters:

* **alvinn** — neural-net training: streaming FP, very predictable loops,
  moderate working set, high FP ILP.
* **doduc** — Monte-Carlo nuclear reactor model: mixed FP with frequent
  data-dependent branches, mid-size working set.
* **fpppp** — quantum chemistry: enormous basic blocks, FP-dense, very few
  branches, high register pressure.
* **ora** — ray tracing: long dependence chains through FP divides.
* **tomcatv** — vectorised mesh generation: strided FP streams over a large
  working set (the D-cache offender).
* **espresso** — logic minimisation: branchy integer bit-twiddling over a
  small working set, switch-style indirect jumps.
* **xlisp** — lisp interpreter: pointer chasing, deep recursion (return
  stack pressure), unpredictable branches, indirect dispatch.
* **tex** — document typesetting: large text footprint (the I-cache
  offender), mixed integer work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs for one synthetic benchmark generator.

    Fractions need not sum to 1; the remainder of the instruction mix is
    plain integer ALU work (address arithmetic, masks, adds).
    """

    name: str
    #: Approximate number of static *body* instructions to generate.  The
    #: text footprint in bytes is roughly 4x this (plus loop/call glue).
    text_instructions: int
    #: Number of procedures the dispatcher tours (I-cache touring).
    procedures: int
    #: Instructions per generated basic block (min, max).
    block_size: Tuple[int, int]
    #: Loop trip count per procedure (min, max) — loop branches are the
    #: predictable kind.
    trip_count: Tuple[int, int]
    #: Fraction of body slots that are FP arithmetic.
    frac_fp: float
    #: Fraction of body slots that are loads.
    frac_load: float
    #: Fraction of body slots that are stores.
    frac_store: float
    #: Fraction of body slots that are integer multiplies.
    frac_mul: float
    #: Of the FP slots, fraction that are divides (split fdiv/fdivd).
    frac_fp_div: float
    #: Per block, probability of embedding a data-dependent branch.
    data_branch_prob: float
    #: Bias of data-dependent branch data (P(bit == 1)); 0.5 is maximally
    #: unpredictable, 0.9 is mostly-taken.
    data_branch_bias: float
    #: Probability that an op's sources come from recent results
    #: (serialising) rather than loop-invariant registers (parallel).
    dependence_density: float
    #: Data working set in bytes (power of two).
    working_set: int
    #: Memory access pattern: "seq", "stride", "random", or "chase".
    access_pattern: str
    #: Stride in bytes for the "stride" pattern.
    stride: int = 64
    #: Depth of the recursive call chain (0 disables recursion).
    recursion_depth: int = 0
    #: Number of indirect-jump switch cases (0 disables the switch).
    switch_cases: int = 0
    #: How many procedures each dispatcher iteration calls.
    calls_per_iteration: int = 0  # 0 means "all procedures"
    #: Trip count of each procedure's outer loop (min, max): how many
    #: times one call re-runs the procedure's loop nest (execution
    #: concentration / branch-site hotness).
    outer_trip: tuple = (4, 10)
    #: Size in bytes (power of two) of the hot region each procedure's
    #: accesses tile through: real code re-walks blocked sub-arrays, so
    #: most accesses hit a cache-resident window while the window itself
    #: migrates across the full working set over time.
    hot_region: int = 1 << 11
    #: Temporal persistence of the branch data (P(bit_t == bit_{t-1})).
    #: Real branch streams are strongly correlated in time — this is what
    #: lets a history-based (gshare) predictor do better than the bias
    #: alone.  0.5 would be i.i.d. noise.
    data_branch_persistence: float = 0.8

    def __post_init__(self):
        if self.working_set & (self.working_set - 1):
            raise ValueError(f"{self.name}: working_set must be a power of two")
        if self.access_pattern not in ("seq", "stride", "random", "chase"):
            raise ValueError(f"{self.name}: bad access_pattern {self.access_pattern!r}")
        total = self.frac_fp + self.frac_load + self.frac_store + self.frac_mul
        if total > 0.95:
            raise ValueError(f"{self.name}: instruction mix fractions sum to {total}")


#: The eight-program workload of the paper (Section 3).
PROFILES: Dict[str, WorkloadProfile] = {
    "alvinn": WorkloadProfile(
        name="alvinn",
        text_instructions=2200,
        procedures=10,
        block_size=(3, 6),
        trip_count=(16, 48),
        frac_fp=0.45,
        frac_load=0.24,
        frac_store=0.09,
        frac_mul=0.00,
        frac_fp_div=0.01,
        data_branch_prob=0.3,
        data_branch_bias=0.92,
        data_branch_persistence=0.92,
        dependence_density=0.72,
        working_set=1 << 15,
        access_pattern="seq",
        outer_trip=(6, 12),
        hot_region=1 << 12,
    ),
    "doduc": WorkloadProfile(
        name="doduc",
        text_instructions=5600,
        procedures=22,
        block_size=(2, 5),
        trip_count=(6, 20),
        frac_fp=0.36,
        frac_load=0.22,
        frac_store=0.08,
        frac_mul=0.01,
        frac_fp_div=0.02,
        data_branch_prob=0.8,
        data_branch_bias=0.82,
        data_branch_persistence=0.88,
        dependence_density=0.7,
        working_set=1 << 15,
        access_pattern="stride",
        stride=24,
        hot_region=1 << 12,
    ),
    "fpppp": WorkloadProfile(
        name="fpppp",
        text_instructions=11000,
        procedures=8,
        block_size=(30, 60),
        trip_count=(4, 10),
        frac_fp=0.5,
        frac_load=0.25,
        frac_store=0.10,
        frac_mul=0.00,
        frac_fp_div=0.015,
        data_branch_prob=0.05,
        data_branch_bias=0.92,
        data_branch_persistence=0.92,
        dependence_density=0.62,
        working_set=1 << 14,
        access_pattern="seq",
        outer_trip=(8, 16),
        hot_region=1 << 12,
    ),
    "ora": WorkloadProfile(
        name="ora",
        text_instructions=1600,
        procedures=6,
        block_size=(3, 6),
        trip_count=(8, 24),
        frac_fp=0.48,
        frac_load=0.12,
        frac_store=0.04,
        frac_mul=0.00,
        frac_fp_div=0.06,
        data_branch_prob=0.4,
        data_branch_bias=0.88,
        data_branch_persistence=0.90,
        dependence_density=0.78,
        working_set=1 << 13,
        access_pattern="seq",
        outer_trip=(6, 12),
        hot_region=1 << 12,
    ),
    "tomcatv": WorkloadProfile(
        name="tomcatv",
        text_instructions=3000,
        procedures=9,
        block_size=(4, 8),
        trip_count=(16, 48),
        frac_fp=0.42,
        frac_load=0.26,
        frac_store=0.10,
        frac_mul=0.00,
        frac_fp_div=0.01,
        data_branch_prob=0.3,
        data_branch_bias=0.90,
        data_branch_persistence=0.92,
        dependence_density=0.55,
        working_set=1 << 16,
        access_pattern="stride",
        stride=16,
        hot_region=1 << 15,
    ),
    "espresso": WorkloadProfile(
        name="espresso",
        text_instructions=7600,
        procedures=28,
        block_size=(1, 3),
        trip_count=(4, 16),
        frac_fp=0.00,
        frac_load=0.22,
        frac_store=0.07,
        frac_mul=0.01,
        frac_fp_div=0.00,
        data_branch_prob=1.0,
        data_branch_bias=0.76,
        data_branch_persistence=0.85,
        dependence_density=0.68,
        working_set=1 << 14,
        access_pattern="random",
        switch_cases=8,
        hot_region=1 << 11,
    ),
    "xlisp": WorkloadProfile(
        name="xlisp",
        text_instructions=5600,
        procedures=20,
        block_size=(1, 3),
        trip_count=(3, 10),
        frac_fp=0.00,
        frac_load=0.28,
        frac_store=0.10,
        frac_mul=0.00,
        frac_fp_div=0.00,
        data_branch_prob=1.0,
        data_branch_bias=0.72,
        data_branch_persistence=0.85,
        dependence_density=0.72,
        working_set=1 << 13,
        access_pattern="chase",
        recursion_depth=16,
        switch_cases=12,
    ),
    "tex": WorkloadProfile(
        name="tex",
        text_instructions=9600,
        procedures=32,
        block_size=(1, 4),
        trip_count=(4, 14),
        frac_fp=0.00,
        frac_load=0.24,
        frac_store=0.09,
        frac_mul=0.01,
        frac_fp_div=0.00,
        data_branch_prob=1.0,
        data_branch_bias=0.80,
        data_branch_persistence=0.86,
        dependence_density=0.65,
        working_set=1 << 15,
        access_pattern="stride",
        stride=40,
        switch_cases=6,
        hot_region=1 << 12,
    ),
}


def profile_names() -> Tuple[str, ...]:
    """The workload programs in the paper's listing order."""
    return ("alvinn", "doduc", "fpppp", "ora", "tomcatv", "espresso", "xlisp", "tex")
