"""Multiprogrammed workload composition (paper Section 3).

The paper builds each data point from 8 runs; each run assigns a distinct
program to every hardware context, and each of the 8 runs uses a different
combination of the benchmarks, to remove benchmark-choice effects.  We
reproduce the scheme with a rotation: run ``r`` with ``T`` threads uses
programs ``names[(r + i) % 8]`` for ``i`` in ``0..T-1``.
"""

from __future__ import annotations

from typing import List

from repro.isa.program import Program
from repro.workloads.profiles import PROFILES, profile_names
from repro.workloads.synthetic import generate_program


def benchmark_rotation(n_threads: int, run_index: int) -> List[str]:
    """Names of the programs assigned to each context for one run."""
    if not 1 <= n_threads <= 8:
        raise ValueError("n_threads must be between 1 and 8")
    names = profile_names()
    return [names[(run_index + i) % len(names)] for i in range(n_threads)]


# Generated programs are pure functions of (profile, seed); cache them so
# sweeps over many configurations don't regenerate identical workloads.
_PROGRAM_CACHE = {}


def cached_program(name: str, seed: int = 0) -> Program:
    """The (memoised) generated program for one profile name.

    Shared by the rotation mixes and the multicore driver, which
    regenerates the same job programs across core rebuilds.
    """
    key = (name, seed)
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = generate_program(PROFILES[name], seed=seed)
    return _PROGRAM_CACHE[key]


_cached_program = cached_program


def standard_mix(n_threads: int, run_index: int = 0, seed: int = 0) -> List[Program]:
    """The programs for one simulation run of ``n_threads`` contexts."""
    return [
        _cached_program(name, seed) for name in benchmark_rotation(n_threads, run_index)
    ]
