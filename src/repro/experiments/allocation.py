"""The allocation study: which thread-to-core allocator wins, where?

Compares the registered allocation policies (``repro allocators``)
across machine sizes and offered loads on the open-system driver
(:mod:`repro.multicore.driver`).  The axes:

* **allocator** — ROUND_ROBIN, LOAD, PAIRING, RANDOM (all four
  registry entries);
* **core count** — 1, 2, and 4 cores (at 1 core every allocator
  collapses to the same machine: a built-in sanity row);
* **offered load** — a moderate and a heavy seeded arrival process
  (same seed across allocators, so every policy faces the identical
  job sequence).

The study reports, per cell: completed jobs, total-latency p50/p99,
queue-latency p50, mean core utilization, and throughput — the
open-system metrics the allocation papers use, rather than the
closed-system IPC of the paper's figures.

Parallelism: cells are independent, so the study fans out over the
worker pool configured through :mod:`repro.experiments.parallel`
(``--jobs`` / ``REPRO_JOBS``); results return in spec order, keeping
output and export deterministic regardless of worker count.  Each cell
memoises through the multicore document cache (allocator spec and
arrival seed are in the key), so re-renders are free.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SMTConfig
from repro.experiments import parallel
from repro.experiments.runner import RunBudget
from repro.multicore.alloc import allocator_names
from repro.multicore.driver import (
    ArrivalConfig,
    MulticoreRunSpec,
    MulticoreResult,
    run_open_system,
)

#: Allocators the study compares (the whole registry, stable order).
STUDY_ALLOCATORS: Tuple[str, ...] = tuple(allocator_names())

#: Machine sizes (cores) the study sweeps.
STUDY_CORE_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: Offered loads: label -> arrival rate in jobs per kilocycle.
STUDY_LOADS: Tuple[Tuple[str, float], ...] = (
    ("moderate", 1.0),
    ("heavy", 3.0),
)


def study_specs(
    budget: RunBudget,
    allocators: Sequence[str] = STUDY_ALLOCATORS,
    core_counts: Sequence[int] = STUDY_CORE_COUNTS,
    loads: Sequence[Tuple[str, float]] = STUDY_LOADS,
    contexts_per_core: int = 2,
    seed: int = 0,
) -> List[Tuple[str, MulticoreRunSpec]]:
    """The study's (load label, run spec) grid, in deterministic order.

    The budget scales the job count and horizon: the ``fast`` budget
    trims both so a smoke pass stays interactive, the ``full`` budget
    grows them for tighter percentiles.
    """
    scale = max(0.25, min(4.0, budget.measure_cycles / 20000))
    jobs = max(4, int(8 * scale))
    service = max(200, int(400 * scale))
    horizon = max(20_000, int(60_000 * scale))
    template = SMTConfig(n_threads=contexts_per_core)
    specs = []
    for label, rate in loads:
        arrival = ArrivalConfig(
            jobs=jobs, rate_per_kcycle=rate,
            service_instructions=service, seed=seed,
        )
        for n_cores in core_counts:
            for alloc in allocators:
                specs.append((label, MulticoreRunSpec(
                    n_cores=n_cores, allocator=alloc, config=template,
                    quantum=200, max_cycles=horizon, seed=seed,
                    arrival=arrival,
                )))
    return specs


def _run_cell(item: Tuple[str, MulticoreRunSpec, bool]) -> Dict:
    label, spec, use_cache = item
    result = run_open_system(spec, use_cache=use_cache)
    document = result.to_dict()
    document["load"] = label
    return document


def allocation_study(
    budget: Optional[RunBudget] = None,
    allocators: Sequence[str] = STUDY_ALLOCATORS,
    core_counts: Sequence[int] = STUDY_CORE_COUNTS,
    loads: Sequence[Tuple[str, float]] = STUDY_LOADS,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> List[Dict]:
    """Run the full grid; one result document per cell, in grid order.

    ``jobs``/``use_cache`` default to the shared parallel-engine
    configuration (CLI ``--jobs`` / ``--no-cache``, or the REPRO_*
    environment).  Results are plain dicts (``MulticoreResult.to_dict``
    plus a ``load`` label) so they pickle across the pool and feed the
    export layer directly.
    """
    budget = budget or RunBudget.from_environment()
    if jobs is None:
        jobs = parallel.default_jobs()
    if use_cache is None:
        use_cache = parallel.default_use_cache()
    grid = study_specs(budget, allocators=allocators,
                       core_counts=core_counts, loads=loads)
    items = [(label, spec, use_cache) for label, spec in grid]
    if jobs > 1 and len(items) > 1:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(items))) as pool:
            # map() preserves input order: deterministic under any -j.
            return pool.map(_run_cell, items)
    return [_run_cell(item) for item in items]


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------
def print_allocation_study(documents: Sequence[Dict]) -> None:
    header = (f"{'load':<10s} {'cores':>5s} {'allocator':<14s} "
              f"{'done':>6s} {'p50':>8s} {'p99':>8s} {'q.p50':>8s} "
              f"{'util':>6s} {'jobs/kc':>8s}")
    print("allocation study: open-system latency/throughput by allocator")
    print(header)
    print("-" * len(header))
    previous = None
    for doc in documents:
        latency = doc["latency"]
        group = (doc.get("load"), doc["n_cores"])
        if previous is not None and group != previous:
            print()
        previous = group
        print(
            f"{doc.get('load', '?'):<10s} {doc['n_cores']:>5d} "
            f"{doc['allocator']:<14s} "
            f"{doc['jobs_completed']:>3d}/{doc['jobs_total']:<2d} "
            f"{latency['total']['p50']:>8.0f} "
            f"{latency['total']['p99']:>8.0f} "
            f"{latency['queue']['p50']:>8.0f} "
            f"{doc['mean_utilization']:>6.1%} "
            f"{doc['throughput_per_kcycle']:>8.2f}"
        )
    print()
    print("latencies in cycles (nearest-rank percentiles over completed "
          "jobs); identical arrival sequences within each load level.")


def export_allocation_study(documents: Sequence[Dict],
                            directory: str) -> List[str]:
    """Write the study through the schema-versioned multicore export."""
    from repro.experiments import export

    return export.export_multicore_experiment(
        "allocation", documents, directory
    )
