"""Reproduction of the paper's figures (3 through 7).

Each ``figureN`` function returns a dict mapping a line label to its
list of :class:`~repro.experiments.runner.ExperimentPoint` (or, for
Figure 7, a list of points), and ``print_figureN`` renders the same
series the paper plots.

Every figure assembles its full set of ``(label, config)`` pairs and
submits them to the experiment engine as **one batch**, so the whole
figure shards across the worker pool (and the result cache) instead of
one data point at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SMTConfig, scheme
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    run_configs,
)

THREAD_COUNTS = (1, 2, 4, 6, 8)


def _grouped(labeled_configs, budget, jobs, use_cache):
    """Run one batch and regroup the points by label, in input order."""
    points = run_configs(
        labeled_configs, budget=budget, jobs=jobs, use_cache=use_cache
    )
    data: Dict[str, List[ExperimentPoint]] = {}
    for (label, _), point in zip(labeled_configs, points):
        data.setdefault(label, []).append(point)
    return data


# ----------------------------------------------------------------------
# Figure 3: instruction throughput for the base hardware design, plus
# the unmodified-superscalar point.
# ----------------------------------------------------------------------
def figure3(budget: Optional[RunBudget] = None,
            thread_counts=THREAD_COUNTS,
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Dict[str, List[ExperimentPoint]]:
    batch = [("RR.1.8", SMTConfig(n_threads=t)) for t in thread_counts]
    batch.append(
        ("superscalar", SMTConfig(n_threads=1, smt_pipeline=False))
    )
    data = _grouped(batch, budget, jobs, use_cache)
    return {
        "RR.1.8": data["RR.1.8"],
        "Unmodified Superscalar": data["superscalar"],
    }


def print_figure3(data: Dict[str, List[ExperimentPoint]]) -> None:
    print("Figure 3: Instruction throughput, base hardware architecture")
    ss = data["Unmodified Superscalar"][0]
    print(f"  Unmodified superscalar (1 thread): {ss.ipc:.2f} IPC")
    for point in data["RR.1.8"]:
        print(f"  RR.1.8 @ {point.n_threads} threads: {point.ipc:.2f} IPC")
    best = max(p.ipc for p in data["RR.1.8"])
    print(f"  peak SMT / superscalar = {best / ss.ipc:.2f}x "
          f"(paper: 1.84x, peaking before 8 threads)")


# ----------------------------------------------------------------------
# Figure 4: fetch partitioning (RR.1.8, RR.2.4, RR.4.2, RR.2.8).
# ----------------------------------------------------------------------
PARTITIONING_SCHEMES = ((1, 8), (2, 4), (4, 2), (2, 8))


def figure4(budget: Optional[RunBudget] = None,
            thread_counts=THREAD_COUNTS,
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Dict[str, List[ExperimentPoint]]:
    batch = [
        (f"RR.{num1}.{num2}", scheme("RR", num1, num2, n_threads=t))
        for num1, num2 in PARTITIONING_SCHEMES
        for t in thread_counts
    ]
    return _grouped(batch, budget, jobs, use_cache)


def print_figure4(data: Dict[str, List[ExperimentPoint]]) -> None:
    print("Figure 4: throughput for the I-cache interface / partitioning schemes")
    _print_lines(data)


# ----------------------------------------------------------------------
# Figure 5: fetch policies x {1.8, 2.8} vs round robin.
# ----------------------------------------------------------------------
FETCH_POLICY_NAMES = ("RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN")


def figure5(budget: Optional[RunBudget] = None,
            thread_counts=(2, 4, 6, 8),
            partitions=((1, 8), (2, 8)),
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Dict[str, List[ExperimentPoint]]:
    batch = [
        (f"{policy}.{num1}.{num2}", scheme(policy, num1, num2, n_threads=t))
        for num1, num2 in partitions
        for policy in FETCH_POLICY_NAMES
        for t in thread_counts
    ]
    return _grouped(batch, budget, jobs, use_cache)


def print_figure5(data: Dict[str, List[ExperimentPoint]]) -> None:
    print("Figure 5: throughput for fetch priority heuristics vs round-robin")
    _print_lines(data)


# ----------------------------------------------------------------------
# Figure 6: BIGQ and ITAG on top of ICOUNT.
# ----------------------------------------------------------------------
def figure6(budget: Optional[RunBudget] = None,
            thread_counts=THREAD_COUNTS,
            partitions=((1, 8), (2, 8)),
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Dict[str, List[ExperimentPoint]]:
    variants = (
        ("ICOUNT", {}),
        ("BIGQ,ICOUNT", {"bigq": True}),
        ("ITAG,ICOUNT", {"itag": True}),
    )
    batch = [
        (
            f"{variant}.{num1}.{num2}",
            scheme("ICOUNT", num1, num2, n_threads=t, **options),
        )
        for num1, num2 in partitions
        for variant, options in variants
        for t in thread_counts
    ]
    return _grouped(batch, budget, jobs, use_cache)


def print_figure6(data: Dict[str, List[ExperimentPoint]]) -> None:
    print("Figure 6: 64-entry queue (BIGQ) and early tag lookup (ITAG) "
          "with ICOUNT fetch")
    _print_lines(data)


# ----------------------------------------------------------------------
# Figure 7: 200 physical registers, 1-5 hardware contexts.
# ----------------------------------------------------------------------
def figure7(budget: Optional[RunBudget] = None,
            thread_counts=(1, 2, 3, 4, 5),
            total_registers: int = 200,
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> List[ExperimentPoint]:
    batch = [
        (
            f"{total_registers}regs",
            scheme("ICOUNT", 2, 8, n_threads=t,
                   phys_regs_total=total_registers),
        )
        for t in thread_counts
    ]
    return run_configs(batch, budget=budget, jobs=jobs, use_cache=use_cache)


def print_figure7(points: List[ExperimentPoint]) -> None:
    print("Figure 7: throughput with 200 physical registers, 1-5 contexts")
    for p in points:
        excess = 200 - 32 * p.n_threads
        print(f"  {p.n_threads} contexts ({excess:3d} excess regs): "
              f"{p.ipc:.2f} IPC")
    best = max(points, key=lambda p: p.ipc)
    print(f"  maximum at {best.n_threads} contexts "
          f"(paper: clear maximum at 4 threads)")


# ----------------------------------------------------------------------
def _print_lines(data: Dict[str, List[ExperimentPoint]]) -> None:
    for label, points in data.items():
        series = "  ".join(
            f"{p.n_threads}T:{p.ipc:.2f}" for p in points
        )
        print(f"  {label:16s} {series}")
