"""Reproduction of the paper's tables.

Tables 1 and 2 are machine configuration (verified by the test suite
against the paper's values); Tables 3, 4, and 5 are measurements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import SMTConfig, scheme
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    run_configs,
)
from repro.isa.instructions import INSTRUCTION_LATENCIES, InstrClass
from repro.memory.hierarchy import (
    DCACHE_PARAMS,
    ICACHE_PARAMS,
    L2_PARAMS,
    L3_PARAMS,
)


# ----------------------------------------------------------------------
# Table 1: instruction latencies (configuration).
# ----------------------------------------------------------------------
def table1() -> Dict[str, int]:
    """The simulated instruction latencies, keyed as the paper lists them."""
    return {
        "integer multiply": INSTRUCTION_LATENCIES[InstrClass.INT_MUL],
        "integer multiply (wide)": INSTRUCTION_LATENCIES[InstrClass.INT_MULQ],
        "conditional move": INSTRUCTION_LATENCIES[InstrClass.INT_CMOV],
        "compare": INSTRUCTION_LATENCIES[InstrClass.INT_CMP],
        "all other integer": INSTRUCTION_LATENCIES[InstrClass.INT_ALU],
        "FP divide": INSTRUCTION_LATENCIES[InstrClass.FP_DIV],
        "FP divide (double)": INSTRUCTION_LATENCIES[InstrClass.FP_DIVD],
        "all other FP": INSTRUCTION_LATENCIES[InstrClass.FP_ALU],
        "load (cache hit)": INSTRUCTION_LATENCIES[InstrClass.LOAD],
    }


# ----------------------------------------------------------------------
# Table 2: cache hierarchy details (configuration).
# ----------------------------------------------------------------------
def table2() -> Dict[str, Dict[str, object]]:
    rows = {}
    for params in (ICACHE_PARAMS, DCACHE_PARAMS, L2_PARAMS, L3_PARAMS):
        rows[params.name] = {
            "size": params.size,
            "associativity": params.assoc,
            "line size": params.line_size,
            "banks": params.banks,
            "transfer time": params.transfer_time,
            "accesses/cycle": params.accesses_per_cycle,
            "fill time": params.fill_time,
            "latency to next": params.latency_to_next,
        }
    return rows


# ----------------------------------------------------------------------
# Table 3: low-level metrics for the base architecture at 1/4/8 threads.
# ----------------------------------------------------------------------
TABLE3_METRICS = (
    ("out-of-registers (% of cycles)", "out_of_registers_frac"),
    ("branch misprediction rate", "branch_mispredict_rate"),
    ("jump misprediction rate", "jump_mispredict_rate"),
    ("integer IQ-full (% of cycles)", "int_iq_full_frac"),
    ("fp IQ-full (% of cycles)", "fp_iq_full_frac"),
    ("avg (combined) queue population", "avg_queue_population"),
    ("wrong-path instructions fetched", "wrong_path_fetched_frac"),
    ("wrong-path instructions issued", "wrong_path_issued_frac"),
)
TABLE3_CACHES = (
    ("I cache miss rate", "icache"),
    ("D cache miss rate", "dcache"),
    ("L2 cache miss rate", "l2"),
    ("L3 cache miss rate", "l3"),
)


def table3(budget: Optional[RunBudget] = None,
           thread_counts=(1, 4, 8),
           jobs: Optional[int] = None,
           use_cache: Optional[bool] = None) -> Dict[int, ExperimentPoint]:
    points = run_configs(
        [(None, SMTConfig(n_threads=t)) for t in thread_counts],
        budget=budget, jobs=jobs, use_cache=use_cache,
    )
    return dict(zip(thread_counts, points))


def print_table3(points: Dict[int, ExperimentPoint]) -> None:
    threads = sorted(points)
    print("Table 3: low-level metrics for the base architecture")
    header = f"  {'metric':38s}" + "".join(f"{t:>9d}T" for t in threads)
    print(header)
    for name, attr in TABLE3_METRICS:
        row = "".join(f"{points[t].metric(attr):>10.3f}" for t in threads)
        print(f"  {name:38s}{row}")
    for name, cache in TABLE3_CACHES:
        row = "".join(
            f"{points[t].cache_metric(cache, 'miss_rate'):>10.3f}"
            for t in threads
        )
        print(f"  {name:38s}{row}")
        row = "".join(
            f"{points[t].cache_metric(cache, 'mpki'):>10.1f}"
            for t in threads
        )
        print(f"  {'-misses per thousand instructions':38s}{row}")


# ----------------------------------------------------------------------
# Table 4: round-robin vs instruction-counting, 2.8 partitioning.
# ----------------------------------------------------------------------
TABLE4_METRICS = (
    ("integer IQ-full (% of cycles)", "int_iq_full_frac"),
    ("fp IQ-full (% of cycles)", "fp_iq_full_frac"),
    ("avg queue population", "avg_queue_population"),
    ("out-of-registers (% of cycles)", "out_of_registers_frac"),
)


def table4(budget: Optional[RunBudget] = None,
           jobs: Optional[int] = None,
           use_cache: Optional[bool] = None) -> Dict[str, ExperimentPoint]:
    batch = [
        ("1 thread", SMTConfig(n_threads=1)),
        ("RR.2.8", scheme("RR", 2, 8, n_threads=8)),
        ("ICOUNT.2.8", scheme("ICOUNT", 2, 8, n_threads=8)),
    ]
    points = run_configs(batch, budget=budget, jobs=jobs, use_cache=use_cache)
    return {label: point for (label, _), point in zip(batch, points)}


def print_table4(points: Dict[str, ExperimentPoint]) -> None:
    print("Table 4: low-level metrics, RR vs ICOUNT (2.8 partitioning)")
    labels = list(points)
    print(f"  {'metric':34s}" + "".join(f"{l:>12s}" for l in labels))
    for name, attr in TABLE4_METRICS:
        row = "".join(f"{points[l].metric(attr):>12.3f}" for l in labels)
        print(f"  {name:34s}{row}")


# ----------------------------------------------------------------------
# Table 5: issue priority schemes.
# ----------------------------------------------------------------------
ISSUE_SCHEMES = ("OLDEST", "OPT_LAST", "SPEC_LAST", "BRANCH_FIRST")


def table5(budget: Optional[RunBudget] = None,
           thread_counts=(1, 2, 4, 6, 8),
           jobs: Optional[int] = None,
           use_cache: Optional[bool] = None
           ) -> Dict[str, List[ExperimentPoint]]:
    batch = [
        (
            issue_policy,
            scheme("ICOUNT", 2, 8, n_threads=t, issue_policy=issue_policy),
        )
        for issue_policy in ISSUE_SCHEMES
        for t in thread_counts
    ]
    points = run_configs(batch, budget=budget, jobs=jobs, use_cache=use_cache)
    data: Dict[str, List[ExperimentPoint]] = {}
    for (label, _), point in zip(batch, points):
        data.setdefault(label, []).append(point)
    return data


def print_table5(data: Dict[str, List[ExperimentPoint]]) -> None:
    print("Table 5: issue priority schemes (IPC; wrong-path / optimistic "
          "useless issues at 8 threads)")
    for policy, points in data.items():
        series = "  ".join(f"{p.n_threads}T:{p.ipc:.2f}" for p in points)
        last = points[-1]
        print(f"  {policy:13s} {series}   "
              f"wrong-path={last.metric('wrong_path_issued_frac'):.1%} "
              f"optimistic={last.metric('squashed_optimistic_frac'):.1%}")
