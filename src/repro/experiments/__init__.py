"""Experiment harness: every table and figure of the paper's evaluation.

Each experiment function runs the relevant configurations over the
multiprogrammed workload (averaging several benchmark rotations, as the
paper averages 8 runs per data point), returns structured rows, and can
print them in the paper's format.  The benchmarks under ``benchmarks/``
call these functions and assert the qualitative shapes.

All runs flow through the parallel experiment engine
(:mod:`repro.experiments.parallel`): pass ``jobs=N`` to shard across a
worker pool, and results memoise into a persistent on-disk cache
(:mod:`repro.experiments.cache`) keyed by configuration, workload, and
budget — identical results however they were produced.
"""

from repro.experiments.cache import ResultCache, default_cache_dir, result_key
from repro.experiments.parallel import RunSpec, configure, execute_runs
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    average_runs,
    run_config,
    run_configs,
    sweep_threads,
)
from repro.experiments.supervise import (
    CampaignJournal,
    CampaignReport,
    RunFailure,
    Supervisor,
    supervised_execute_runs,
)
from repro.experiments import (
    adaptive,
    bottlenecks,
    cache,
    figures,
    parallel,
    sensitivity,
    supervise,
    tables,
)

__all__ = [
    "CampaignJournal",
    "adaptive",
    "CampaignReport",
    "ExperimentPoint",
    "ResultCache",
    "RunBudget",
    "RunFailure",
    "RunSpec",
    "Supervisor",
    "average_runs",
    "bottlenecks",
    "cache",
    "configure",
    "default_cache_dir",
    "execute_runs",
    "figures",
    "parallel",
    "result_key",
    "run_config",
    "run_configs",
    "sensitivity",
    "supervise",
    "supervised_execute_runs",
    "sweep_threads",
    "tables",
]
