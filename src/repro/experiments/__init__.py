"""Experiment harness: every table and figure of the paper's evaluation.

Each experiment function runs the relevant configurations over the
multiprogrammed workload (averaging several benchmark rotations, as the
paper averages 8 runs per data point), returns structured rows, and can
print them in the paper's format.  The benchmarks under ``benchmarks/``
call these functions and assert the qualitative shapes.
"""

from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    average_runs,
    run_config,
)
from repro.experiments import figures, tables, bottlenecks

__all__ = [
    "ExperimentPoint",
    "RunBudget",
    "average_runs",
    "run_config",
    "figures",
    "tables",
    "bottlenecks",
]
