"""Adaptive fetch-policy study: meta-policies vs the static policies.

The paper's Section 5.2 compares five *static* thread-choice heuristics
and ends by suggesting that "perhaps the best performance could be
achieved from a weighted combination of them".  This study takes the
suggestion further: the registry's meta-policies (HYSTERESIS, BANDIT,
TOURNAMENT — see :mod:`repro.policy.meta`) pick *among* the static
policies at runtime from per-interval pipeline signals, and this
experiment measures whether adapting the picker can match the best
fixed choice across thread counts.

Returns a figure-shaped ``{label: [ExperimentPoint]}`` so the standard
export/chart machinery applies; the printer additionally compares the
best static line against the best adaptive line at the highest thread
count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import scheme
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    run_configs,
)

THREAD_COUNTS = (1, 2, 4, 8)

#: The static baselines: every Section 5.2 policy at alg.2.8.
STATIC_SPECS = ("RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN")

#: The adaptive lines.  Intervals are short relative to the measured
#: window so the meta-policies see enough decision points to adapt.
META_SPECS = (
    "HYSTERESIS:interval=150,dwell=2",
    "BANDIT:interval=150",
    "BANDIT:interval=150,mode=ucb",
    "TOURNAMENT:ICOUNT/BRCOUNT:interval=150",
)


def _label(spec: str) -> str:
    """Figure label: paper-style alg.2.8 for statics, spec for metas."""
    name = spec.split(":", 1)[0]
    if spec in STATIC_SPECS:
        return f"{spec}.2.8"
    return spec if ":" not in spec else f"{name}({spec.split(':', 1)[1]})"


def adaptive_study(
    budget: Optional[RunBudget] = None,
    thread_counts=THREAD_COUNTS,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> Dict[str, List[ExperimentPoint]]:
    """Every static policy vs every meta-policy, across thread counts.

    One batch: the whole study shards across the worker pool and the
    result cache (adaptive specs hash into distinct cache keys because
    the full spec string is part of the config).
    """
    batch = [
        (_label(spec), scheme(spec, 2, 8, n_threads=t))
        for spec in STATIC_SPECS + META_SPECS
        for t in thread_counts
    ]
    points = run_configs(
        batch, budget=budget, jobs=jobs, use_cache=use_cache
    )
    data: Dict[str, List[ExperimentPoint]] = {}
    for (label, _), point in zip(batch, points):
        data.setdefault(label, []).append(point)
    return data


def _best_at(data: Dict[str, List[ExperimentPoint]], labels, threads: int):
    """(label, ipc) of the best line among ``labels`` at ``threads``."""
    best = None
    for label in labels:
        for point in data.get(label, ()):
            if point.n_threads != threads:
                continue
            if best is None or point.ipc > best[1]:
                best = (label, point.ipc)
    return best


def print_adaptive_study(data: Dict[str, List[ExperimentPoint]]) -> None:
    from repro.experiments.export import ascii_chart

    print("Adaptive study: meta-policies vs static fetch policies (alg.2.8)")
    static_labels = [_label(s) for s in STATIC_SPECS]
    meta_labels = [_label(s) for s in META_SPECS]
    for label in static_labels + meta_labels:
        points = data.get(label, [])
        series = "  ".join(f"{p.n_threads}T:{p.ipc:.2f}" for p in points)
        print(f"  {label:40s} {series}")

    threads = max(p.n_threads for pts in data.values() for p in pts)
    best_static = _best_at(data, static_labels, threads)
    best_meta = _best_at(data, meta_labels, threads)
    if best_static and best_meta:
        delta = best_meta[1] - best_static[1]
        print(f"  best static @ {threads}T : {best_static[0]} "
              f"({best_static[1]:.2f} IPC)")
        print(f"  best meta   @ {threads}T : {best_meta[0]} "
              f"({best_meta[1]:.2f} IPC, {delta:+.2f} vs best static)")
    print()
    print(ascii_chart(data, metric="ipc",
                      title="IPC vs threads (adaptive study)"))
