"""Result export and text charts.

``to_rows`` / ``write_csv`` / ``to_json`` serialise experiment data for
external analysis; :func:`ascii_chart` renders figure lines as a text
plot (the repository has no plotting dependencies by design).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence, Union

from repro.experiments.runner import ExperimentPoint

FigureData = Dict[str, List[ExperimentPoint]]

#: SimResult scalar attributes exported per point.
EXPORTED_METRICS = (
    "ipc",
    "useful_fetch_per_cycle",
    "wrong_path_fetched_frac",
    "wrong_path_issued_frac",
    "branch_mispredict_rate",
    "int_iq_full_frac",
    "fp_iq_full_frac",
    "avg_queue_population",
    "out_of_registers_frac",
)


def to_rows(data: FigureData) -> List[Dict[str, Union[str, int, float]]]:
    """Flatten figure data into one dict per (line, thread-count)."""
    rows = []
    for label, points in data.items():
        for point in points:
            row: Dict[str, Union[str, int, float]] = {
                "line": label,
                "threads": point.n_threads,
            }
            for metric in EXPORTED_METRICS:
                row[metric] = round(point.metric(metric), 6)
            for cache in ("icache", "dcache", "l2", "l3"):
                row[f"{cache}_miss_rate"] = round(
                    point.cache_metric(cache, "miss_rate"), 6
                )
            rows.append(row)
    return rows


def write_csv(data: FigureData, path: str) -> None:
    rows = to_rows(data)
    if not rows:
        raise ValueError("no data to export")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def csv_text(data: FigureData) -> str:
    rows = to_rows(data)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def to_json(data: FigureData, indent: int = 2) -> str:
    return json.dumps(to_rows(data), indent=indent)


def ascii_chart(
    data: FigureData,
    metric: str = "ipc",
    height: int = 12,
    width_per_point: int = 8,
    title: str = "",
) -> str:
    """Plot one metric of several figure lines as a text chart.

    The x axis is thread count; each line gets a letter marker.
    """
    labels = list(data)
    if not labels:
        raise ValueError("no lines to chart")
    threads = sorted({p.n_threads for pts in data.values() for p in pts})
    series = {
        label: {p.n_threads: p.metric(metric) for p in points}
        for label, points in data.items()
    }
    peak = max(v for s in series.values() for v in s.values())
    peak = peak or 1.0

    markers = "ABCDEFGHJKLMNP"
    grid = [[" "] * (len(threads) * width_per_point) for _ in range(height)]
    for li, label in enumerate(labels):
        marker = markers[li % len(markers)]
        for xi, t in enumerate(threads):
            value = series[label].get(t)
            if value is None:
                continue
            row = height - 1 - min(
                height - 1, int(value / peak * (height - 1) + 0.5)
            )
            col = xi * width_per_point + width_per_point // 2
            # Nudge right when two lines land on the same cell.
            while grid[row][col] != " " and col < len(grid[row]) - 1:
                col += 1
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for ri, row in enumerate(grid):
        yval = peak * (height - 1 - ri) / (height - 1)
        lines.append(f"{yval:6.2f} |" + "".join(row))
    axis = "-" * (len(threads) * width_per_point)
    lines.append("       +" + axis)
    xlabels = "".join(
        f"{t:^{width_per_point}d}" for t in threads
    )
    lines.append("        " + xlabels + "  (threads)")
    for li, label in enumerate(labels):
        lines.append(f"        {markers[li % len(markers)]} = {label}")
    return "\n".join(lines)
