"""Result export and text charts.

Two layers:

* ``to_rows`` / ``write_csv`` / ``to_json`` flatten experiment data for
  external analysis; :func:`ascii_chart` renders figure lines as a text
  plot (the repository has no plotting dependencies by design).
* Schema-versioned documents: :func:`run_document` serialises a single
  run (full ``SimResult`` + optional telemetry time series + optional
  timing histograms) and :func:`experiment_document` a whole
  figure/table, each stamped with ``schema`` / ``schema_version`` so
  downstream tooling can validate what it loads.  The matching loaders
  (:func:`load_run_json`, :func:`load_experiment_json`) reject unknown
  schemas and versions instead of silently misreading old artifacts.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.simulator import SimResult
from repro.experiments.runner import ExperimentPoint

FigureData = Dict[str, List[ExperimentPoint]]

#: Version stamped into every exported document.  Bump on any change to
#: the document layout or field meanings.
#: v2: run documents gained an optional ``policy`` section (fetch-policy
#: telemetry: spec, per-interval choice counts, switch events).
#: v3: multicore documents (``repro.multicore`` single open-system runs,
#: ``repro.multicore_experiment`` allocation studies).
#: v4: fabric campaign reports (``repro.fabric_campaign`` — the
#: scheduler's canonical per-task terminal states + results).
#: v5: campaign service documents (``repro.service_status`` — the
#: machine-readable campaign status shared by ``repro campaign status
#: --json`` and the service ``status`` verb; ``repro.service_stats`` —
#: server counters).
SCHEMA_VERSION = 5
RUN_SCHEMA = "repro.run"
EXPERIMENT_SCHEMA = "repro.experiment"
VIOLATION_SCHEMA = "repro.violation"
CAMPAIGN_SCHEMA = "repro.campaign"
MULTICORE_SCHEMA = "repro.multicore"
MULTICORE_EXPERIMENT_SCHEMA = "repro.multicore_experiment"
FABRIC_SCHEMA = "repro.fabric_campaign"
SERVICE_STATUS_SCHEMA = "repro.service_status"
SERVICE_STATS_SCHEMA = "repro.service_stats"

#: SimResult scalar attributes exported per point.
EXPORTED_METRICS = (
    "ipc",
    "useful_fetch_per_cycle",
    "wrong_path_fetched_frac",
    "wrong_path_issued_frac",
    "branch_mispredict_rate",
    "int_iq_full_frac",
    "fp_iq_full_frac",
    "avg_queue_population",
    "out_of_registers_frac",
    "fetch_active_frac",
    "icache_miss_stall_events",
)


def to_rows(data: FigureData) -> List[Dict[str, Union[str, int, float]]]:
    """Flatten figure data into one dict per (line, thread-count)."""
    rows = []
    for label, points in data.items():
        for point in points:
            row: Dict[str, Union[str, int, float]] = {
                "line": label,
                "threads": point.n_threads,
            }
            for metric in EXPORTED_METRICS:
                row[metric] = round(point.metric(metric), 6)
            for cache in ("icache", "dcache", "l2", "l3"):
                row[f"{cache}_miss_rate"] = round(
                    point.cache_metric(cache, "miss_rate"), 6
                )
            rows.append(row)
    return rows


def write_csv(data: FigureData, path: str) -> None:
    rows = to_rows(data)
    if not rows:
        raise ValueError("no data to export")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def csv_text(data: FigureData) -> str:
    rows = to_rows(data)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def to_json(data: FigureData, indent: int = 2) -> str:
    return json.dumps(to_rows(data), indent=indent)


# ----------------------------------------------------------------------
# Schema-versioned documents.
# ----------------------------------------------------------------------
def as_figure_data(data: Any) -> FigureData:
    """Normalise any experiment harness return shape to ``FigureData``.

    The harnesses return ``{label: [points]}`` (figures 3-6, table 5),
    ``{key: point}`` (tables 3-4, keyed by thread count or label), or a
    bare point list (figure 7); exports treat them uniformly.
    """
    if isinstance(data, list):
        grouped: FigureData = {}
        for point in data:
            grouped.setdefault(point.label, []).append(point)
        return grouped
    if isinstance(data, dict):
        out: FigureData = {}
        for key, value in data.items():
            if isinstance(value, ExperimentPoint):
                out.setdefault(value.label or str(key), []).append(value)
            else:
                out[str(key)] = list(value)
        return out
    raise TypeError(f"cannot normalise experiment data of type {type(data)!r}")


def _validate(document: Any, schema: str) -> Dict[str, Any]:
    if not isinstance(document, dict):
        raise ValueError(f"{schema} document must be a JSON object")
    found = document.get("schema")
    if found != schema:
        hint = ""
        if isinstance(found, str) and found.startswith("repro.multicore"):
            hint = (" (this is a multicore document; load it with "
                    "load_multicore_json / load_multicore_experiment_json)")
        raise ValueError(
            f"expected schema {schema!r}, got {found!r}{hint}"
        )
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {schema} schema version "
            f"{document.get('schema_version')!r} (expected {SCHEMA_VERSION})"
        )
    return document


def sim_result_to_dict(result: SimResult) -> Dict[str, Any]:
    """Every ``SimResult`` field (cache blocks nested as dicts)."""
    return dataclasses.asdict(result)


def run_document(
    result: SimResult,
    telemetry: Optional[Any] = None,
    metrics: Optional[Any] = None,
    policy: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One run as a schema-versioned document.

    ``telemetry`` is a :class:`~repro.core.telemetry.TelemetrySampler`
    and ``metrics`` a :class:`~repro.core.histograms.MetricsCollector`;
    both optional, both serialised through their ``to_rows``/``to_dict``.
    ``policy`` is a fetch-policy telemetry dict
    (:meth:`repro.policy.base.FetchPolicy.telemetry`); for adaptive
    meta-policies it carries the per-interval choice counts and switch
    events (schema v2).
    """
    document: Dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "result": sim_result_to_dict(result),
    }
    if telemetry is not None:
        document["telemetry"] = {
            "interval": telemetry.interval,
            "samples": telemetry.to_rows(),
        }
    if metrics is not None:
        document["metrics"] = metrics.to_dict()
    if policy is not None:
        document["policy"] = policy
    return document


def write_run_json(
    path: str,
    result: SimResult,
    telemetry: Optional[Any] = None,
    metrics: Optional[Any] = None,
    policy: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    document = run_document(result, telemetry=telemetry, metrics=metrics,
                            policy=policy)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def load_run_json(path: str) -> Dict[str, Any]:
    """Load and validate a :func:`write_run_json` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), RUN_SCHEMA)


def violation_document(
    violation: Any,
    case: Optional[Dict[str, Any]] = None,
    context: str = "",
) -> Dict[str, Any]:
    """An invariant violation as a schema-versioned report.

    ``violation`` is an
    :class:`~repro.verify.sanitizer.InvariantViolation` (or its
    ``to_dict()`` form); ``case`` optionally embeds the fuzz case or
    run spec that produced it, ``context`` a free-form provenance note
    (e.g. ``"fuzz seed 17"``).
    """
    payload = violation if isinstance(violation, dict) \
        else violation.to_dict()
    return {
        "schema": VIOLATION_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "violation": payload,
        "case": case,
        "context": context,
    }


def write_violation_json(
    path: str,
    violation: Any,
    case: Optional[Dict[str, Any]] = None,
    context: str = "",
) -> Dict[str, Any]:
    document = violation_document(violation, case=case, context=context)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def load_violation_json(path: str) -> Dict[str, Any]:
    """Load and validate a :func:`write_violation_json` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), VIOLATION_SCHEMA)


def campaign_document(reports: Sequence[Any],
                      name: str = "") -> Dict[str, Any]:
    """Supervised-campaign fault-tolerance report(s) as one document.

    ``reports`` are
    :class:`~repro.experiments.supervise.CampaignReport` s (or their
    ``to_dict()`` forms) — one per supervised batch; the document also
    carries aggregate totals so dashboards need not re-sum.
    """
    payloads = [
        r if isinstance(r, dict) else r.to_dict() for r in reports
    ]
    totals = {
        key: sum(p.get(key, 0) for p in payloads)
        for key in ("total", "succeeded", "failed", "retried",
                    "skipped", "cache_hits", "simulated")
    }
    totals["interrupted"] = any(p.get("interrupted") for p in payloads)
    return {
        "schema": CAMPAIGN_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "totals": totals,
        "campaigns": payloads,
    }


def write_campaign_json(path: str, reports: Sequence[Any],
                        name: str = "") -> Dict[str, Any]:
    document = campaign_document(reports, name=name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def load_campaign_json(path: str) -> Dict[str, Any]:
    """Load and validate a :func:`write_campaign_json` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), CAMPAIGN_SCHEMA)


def experiment_document(name: str, data: Any) -> Dict[str, Any]:
    """A whole figure/table as a schema-versioned document."""
    return {
        "schema": EXPERIMENT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "experiment": name,
        "rows": to_rows(as_figure_data(data)),
    }


def export_experiment(name: str, data: Any, directory: str) -> List[str]:
    """Write ``<name>.json`` and ``<name>.csv`` under ``directory``.

    Returns the written paths.
    """
    os.makedirs(directory, exist_ok=True)
    figure_data = as_figure_data(data)
    json_path = os.path.join(directory, f"{name}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(experiment_document(name, figure_data), handle, indent=2)
        handle.write("\n")
    csv_path = os.path.join(directory, f"{name}.csv")
    write_csv(figure_data, csv_path)
    return [json_path, csv_path]


def load_experiment_json(path: str) -> Dict[str, Any]:
    """Load and validate an :func:`export_experiment` JSON artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), EXPERIMENT_SCHEMA)


# ----------------------------------------------------------------------
# Multicore documents (schema v3).
# ----------------------------------------------------------------------
def multicore_document(result: Any,
                       spec: Optional[Any] = None) -> Dict[str, Any]:
    """One open-system multicore run as a schema-versioned document.

    ``result`` is a :class:`~repro.multicore.driver.MulticoreResult`
    (or its ``to_dict()`` form — which embeds per-job latency records,
    per-core utilization, the completion order, and the latency
    percentile summary).  ``spec`` optionally embeds the full
    :class:`~repro.multicore.driver.MulticoreRunSpec` fingerprint for
    provenance, so an artifact is reproducible from itself.
    """
    payload = result if isinstance(result, dict) else result.to_dict()
    document: Dict[str, Any] = {
        "schema": MULTICORE_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "result": payload,
    }
    if spec is not None:
        document["spec"] = (
            spec if isinstance(spec, dict) else spec.fingerprint()
        )
    return document


def write_multicore_json(path: str, result: Any,
                         spec: Optional[Any] = None) -> Dict[str, Any]:
    document = multicore_document(result, spec=spec)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def load_multicore_json(path: str) -> Dict[str, Any]:
    """Load and validate a :func:`write_multicore_json` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), MULTICORE_SCHEMA)


def multicore_experiment_document(name: str,
                                  results: Sequence[Any]) -> Dict[str, Any]:
    """An allocation study — many multicore runs — as one document.

    Each row carries the run's identity (allocator, core count, seed)
    plus its aggregate metrics; full per-run documents are embedded
    under ``runs`` so the flat rows never go stale against the detail.
    """
    payloads = [
        r if isinstance(r, dict) else r.to_dict() for r in results
    ]
    rows = []
    for p in payloads:
        latency = p.get("latency", {})
        rows.append({
            "allocator": p["allocator"],
            "n_cores": p["n_cores"],
            "contexts_per_core": p["contexts_per_core"],
            "seed": p["seed"],
            "cycles": p["cycles"],
            "jobs_total": p["jobs_total"],
            "jobs_completed": p["jobs_completed"],
            "throughput_per_kcycle": p["throughput_per_kcycle"],
            "mean_utilization": p["mean_utilization"],
            "latency_total_p50": latency.get("total", {}).get("p50", 0.0),
            "latency_total_p90": latency.get("total", {}).get("p90", 0.0),
            "latency_total_p99": latency.get("total", {}).get("p99", 0.0),
            "latency_queue_p50": latency.get("queue", {}).get("p50", 0.0),
            "latency_queue_p99": latency.get("queue", {}).get("p99", 0.0),
        })
    return {
        "schema": MULTICORE_EXPERIMENT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "experiment": name,
        "rows": rows,
        "runs": payloads,
    }


def export_multicore_experiment(name: str, results: Sequence[Any],
                                directory: str) -> List[str]:
    """Write ``<name>.json`` and ``<name>.csv`` for an allocation study.

    Returns the written paths (mirrors :func:`export_experiment`).
    """
    os.makedirs(directory, exist_ok=True)
    document = multicore_experiment_document(name, results)
    json_path = os.path.join(directory, f"{name}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    csv_path = os.path.join(directory, f"{name}.csv")
    rows = document["rows"]
    with open(csv_path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return [json_path, csv_path]


def load_multicore_experiment_json(path: str) -> Dict[str, Any]:
    """Load and validate an :func:`export_multicore_experiment` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), MULTICORE_EXPERIMENT_SCHEMA)


# ----------------------------------------------------------------------
# Fabric campaign reports (schema v4).
# ----------------------------------------------------------------------
def fabric_document(name: str, rows: Sequence[Any]) -> Dict[str, Any]:
    """A scheduler campaign's canonical report as one document.

    ``rows`` come from :func:`repro.sched.campaign.report_rows`: one per
    task in submit order, carrying identity (key, label), terminal
    state, and — for completed tasks — the full deterministic result
    payload.  Operational noise (attempts, workers, timings) is kept
    out by construction, so serialising this document with sorted keys
    yields bytes that are identical across fault-free and fault-ridden
    executions of the same campaign — the chaos suite's headline
    invariant.
    """
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row["state"]] = counts.get(row["state"], 0) + 1
    return {
        "schema": FABRIC_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "counts": dict(sorted(counts.items())),
        "tasks": list(rows),
    }


def fabric_report_bytes(document: Dict[str, Any]) -> bytes:
    """The report's canonical serialisation (for bit-identity checks)."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def write_fabric_json(path: str, name: str,
                      rows: Sequence[Any]) -> Dict[str, Any]:
    document = fabric_document(name, rows)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_fabric_json(path: str) -> Dict[str, Any]:
    """Load and validate a :func:`write_fabric_json` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), FABRIC_SCHEMA)


# ----------------------------------------------------------------------
# Campaign service documents (schema v5).
# ----------------------------------------------------------------------
def service_status_document(
    name: str,
    counts: Dict[str, int],
    tasks: Sequence[Dict[str, Any]],
    workers: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """A campaign's machine-readable status as one document.

    The single builder behind both ``repro campaign status --json`` and
    the service ``status`` verb — the socket and the filesystem must
    never disagree about what a campaign looks like.  ``tasks`` rows
    come from :func:`repro.sched.campaign.status_rows`: identity,
    current (not necessarily terminal) state, lease holder, attempt and
    backoff detail — the *operational* view the canonical fabric report
    deliberately omits.
    """
    return {
        "schema": SERVICE_STATUS_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "counts": dict(sorted(counts.items())),
        "all_terminal": bool(tasks) and all(
            row.get("terminal") for row in tasks),
        "tasks": list(tasks),
        "workers": dict(sorted((workers or {}).items())),
    }


def load_service_status_json(path: str) -> Dict[str, Any]:
    """Load and validate a ``repro.service_status`` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), SERVICE_STATUS_SCHEMA)


def service_stats_document(server: Dict[str, Any],
                           counters: Dict[str, int]) -> Dict[str, Any]:
    """Server observability counters as a schema-versioned document.

    ``server`` carries identity (directory, endpoints, protocol
    version, draining flag); ``counters`` the monotonic event counts
    (connections, submits, rejects, follower lag) the service ``stats``
    verb exports.
    """
    return {
        "schema": SERVICE_STATS_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "server": dict(server),
        "counters": dict(sorted(counters.items())),
    }


def load_service_stats_json(path: str) -> Dict[str, Any]:
    """Load and validate a ``repro.service_stats`` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return _validate(json.load(handle), SERVICE_STATS_SCHEMA)


def ascii_chart(
    data: FigureData,
    metric: str = "ipc",
    height: int = 12,
    width_per_point: int = 8,
    title: str = "",
) -> str:
    """Plot one metric of several figure lines as a text chart.

    The x axis is thread count; each line gets a letter marker.
    """
    labels = list(data)
    if not labels:
        raise ValueError("no lines to chart")
    threads = sorted({p.n_threads for pts in data.values() for p in pts})
    series = {
        label: {p.n_threads: p.metric(metric) for p in points}
        for label, points in data.items()
    }
    peak = max(v for s in series.values() for v in s.values())
    peak = peak or 1.0

    markers = "ABCDEFGHJKLMNP"
    grid = [[" "] * (len(threads) * width_per_point) for _ in range(height)]
    for li, label in enumerate(labels):
        marker = markers[li % len(markers)]
        for xi, t in enumerate(threads):
            value = series[label].get(t)
            if value is None:
                continue
            row = height - 1 - min(
                height - 1, int(value / peak * (height - 1) + 0.5)
            )
            col = xi * width_per_point + width_per_point // 2
            # Nudge right when two lines land on the same cell.
            while grid[row][col] != " " and col < len(grid[row]) - 1:
                col += 1
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for ri, row in enumerate(grid):
        yval = peak * (height - 1 - ri) / (height - 1)
        lines.append(f"{yval:6.2f} |" + "".join(row))
    axis = "-" * (len(threads) * width_per_point)
    lines.append("       +" + axis)
    xlabels = "".join(
        f"{t:^{width_per_point}d}" for t in threads
    )
    lines.append("        " + xlabels + "  (threads)")
    for li, label in enumerate(labels):
        lines.append(f"        {markers[li % len(markers)]} = {label}")
    return "\n".join(lines)
