"""Shared machinery for running experiment configurations.

The paper composes every data point from 8 runs, each assigning a
different combination of benchmarks to the hardware contexts, and
simulates hundreds of millions of instructions.  We reproduce the
rotation and average a configurable number of runs; run lengths are set
by a :class:`RunBudget` that scales down for quick checks (set the
``REPRO_FAST`` environment variable) and up for final numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import SMTConfig
from repro.core.simulator import SimResult, Simulator
from repro.workloads.mixes import standard_mix


@dataclass(frozen=True)
class RunBudget:
    """How much simulation to spend per data point."""

    warmup_cycles: int = 2000
    measure_cycles: int = 15000
    functional_warmup_instructions: int = 60000
    rotations: int = 2

    @classmethod
    def from_environment(cls) -> "RunBudget":
        """The default budget, honouring ``REPRO_FAST``/``REPRO_FULL``."""
        if os.environ.get("REPRO_FAST"):
            return cls(warmup_cycles=1000, measure_cycles=8000,
                       functional_warmup_instructions=30000, rotations=1)
        if os.environ.get("REPRO_FULL"):
            return cls(warmup_cycles=4000, measure_cycles=40000,
                       functional_warmup_instructions=120000, rotations=4)
        return cls()


@dataclass
class ExperimentPoint:
    """One averaged data point (the mean over workload rotations)."""

    label: str
    n_threads: int
    ipc: float
    results: List[SimResult] = field(repr=False, default_factory=list)

    def metric(self, name: str) -> float:
        """Average of any scalar SimResult attribute over the rotations."""
        values = [getattr(r, name) for r in self.results]
        return sum(values) / len(values)

    def cache_metric(self, cache: str, attr: str) -> float:
        values = [getattr(getattr(r, cache), attr) for r in self.results]
        return sum(values) / len(values)


def run_config(
    config: SMTConfig,
    budget: Optional[RunBudget] = None,
    label: Optional[str] = None,
) -> ExperimentPoint:
    """Run one machine configuration over rotated workloads; average."""
    budget = budget or RunBudget.from_environment()
    results = []
    for rotation in range(budget.rotations):
        sim = Simulator(config, standard_mix(config.n_threads, rotation))
        results.append(
            sim.run(
                warmup_cycles=budget.warmup_cycles,
                measure_cycles=budget.measure_cycles,
                functional_warmup_instructions=(
                    budget.functional_warmup_instructions
                ),
            )
        )
    ipc = sum(r.ipc for r in results) / len(results)
    return ExperimentPoint(
        label=label or config.scheme_name,
        n_threads=config.n_threads,
        ipc=ipc,
        results=results,
    )


def average_runs(points: List[ExperimentPoint]) -> float:
    """Mean IPC over a list of points (convenience for summaries)."""
    return sum(p.ipc for p in points) / len(points)


def sweep_threads(
    make_config: Callable[[int], SMTConfig],
    thread_counts=(1, 2, 4, 6, 8),
    budget: Optional[RunBudget] = None,
    label: Optional[str] = None,
) -> List[ExperimentPoint]:
    """Run a config family across thread counts (a figure line)."""
    return [
        run_config(make_config(t), budget=budget, label=label)
        for t in thread_counts
    ]
