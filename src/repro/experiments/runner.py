"""Shared machinery for running experiment configurations.

The paper composes every data point from 8 runs, each assigning a
different combination of benchmarks to the hardware contexts, and
simulates hundreds of millions of instructions.  We reproduce the
rotation and average a configurable number of runs; run lengths are set
by a :class:`RunBudget` that scales down for quick checks (set the
``REPRO_FAST`` environment variable) and up for final numbers.

All execution is routed through the parallel experiment engine
(:mod:`repro.experiments.parallel`): runs shard across a worker pool
when ``jobs > 1`` and memoise into the persistent result cache, while
preserving the exact rotation seeds and averaging order of the serial
path — the results are field-identical however they were produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import SMTConfig
from repro.core.simulator import SimResult
from repro.envutil import env_flag
from repro.experiments.parallel import (
    RunSpec,
    default_check_invariants,
    execute_runs,
)


@dataclass(frozen=True)
class RunBudget:
    """How much simulation to spend per data point."""

    warmup_cycles: int = 2000
    measure_cycles: int = 15000
    functional_warmup_instructions: int = 60000
    rotations: int = 2

    @classmethod
    def from_environment(cls) -> "RunBudget":
        """The default budget, honouring ``REPRO_FAST``/``REPRO_FULL``."""
        if env_flag("REPRO_FAST"):
            return cls(warmup_cycles=1000, measure_cycles=8000,
                       functional_warmup_instructions=30000, rotations=1)
        if env_flag("REPRO_FULL"):
            return cls(warmup_cycles=4000, measure_cycles=40000,
                       functional_warmup_instructions=120000, rotations=4)
        return cls()


@dataclass
class ExperimentPoint:
    """One averaged data point (the mean over workload rotations).

    Under campaign supervision a rotation can fail permanently (timeout,
    worker crash); the point then averages the rotations that survived,
    and a point with *no* surviving rotations reports ``nan`` rather
    than killing the whole figure.
    """

    label: str
    n_threads: int
    ipc: float
    results: List[SimResult] = field(repr=False, default_factory=list)

    @property
    def complete(self) -> bool:
        return bool(self.results)

    def metric(self, name: str) -> float:
        """Average of any scalar SimResult attribute over the rotations."""
        if not self.results:
            return float("nan")
        values = [getattr(r, name) for r in self.results]
        return sum(values) / len(values)

    def cache_metric(self, cache: str, attr: str) -> float:
        if not self.results:
            return float("nan")
        values = [getattr(getattr(r, cache), attr) for r in self.results]
        return sum(values) / len(values)


def _point_from_results(
    label: str, n_threads: int, results: List[Optional[SimResult]]
) -> ExperimentPoint:
    """Average rotations into a point, in rotation order.

    ``None`` entries (rotations lost to a supervised failure) are
    dropped; an all-failed point degrades to ``ipc = nan``.
    """
    ok = [r for r in results if r is not None]
    if not ok:
        return ExperimentPoint(
            label=label, n_threads=n_threads, ipc=float("nan"), results=[]
        )
    ipc = sum(r.ipc for r in ok) / len(ok)
    return ExperimentPoint(
        label=label, n_threads=n_threads, ipc=ipc, results=ok
    )


def run_configs(
    labeled_configs: Sequence[Tuple[Optional[str], SMTConfig]],
    budget: Optional[RunBudget] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable] = None,
    check_invariants: Optional[bool] = None,
) -> List[ExperimentPoint]:
    """Run a batch of ``(label, config)`` pairs as one sharded workload.

    Every rotation of every config becomes one unit of work, so a whole
    figure parallelises across the pool instead of one data point at a
    time.  Points come back in input order, each averaging its rotations
    in rotation order (exactly as the serial path always has).

    ``check_invariants`` (default: the engine-wide knob set by the
    CLI's ``--check-invariants`` or ``REPRO_CHECK_INVARIANTS``) runs
    every simulation with the pipeline sanitizer attached.
    """
    budget = budget or RunBudget.from_environment()
    if check_invariants is None:
        check_invariants = default_check_invariants()
    specs = [
        RunSpec(config=config, rotation=rotation, budget=budget,
                check_invariants=check_invariants)
        for _, config in labeled_configs
        for rotation in range(budget.rotations)
    ]
    results = execute_runs(specs, jobs=jobs, use_cache=use_cache,
                           progress=progress)
    points = []
    for i, (label, config) in enumerate(labeled_configs):
        chunk = results[i * budget.rotations:(i + 1) * budget.rotations]
        points.append(
            _point_from_results(
                label or config.scheme_name, config.n_threads, list(chunk)
            )
        )
    return points


def run_config(
    config: SMTConfig,
    budget: Optional[RunBudget] = None,
    label: Optional[str] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> ExperimentPoint:
    """Run one machine configuration over rotated workloads; average."""
    return run_configs(
        [(label, config)], budget=budget, jobs=jobs, use_cache=use_cache
    )[0]


def average_runs(points: List[ExperimentPoint]) -> float:
    """Mean IPC over a list of points (convenience for summaries)."""
    return sum(p.ipc for p in points) / len(points)


def sweep_threads(
    make_config: Callable[[int], SMTConfig],
    thread_counts=(1, 2, 4, 6, 8),
    budget: Optional[RunBudget] = None,
    label: Optional[str] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> List[ExperimentPoint]:
    """Run a config family across thread counts (a figure line)."""
    return run_configs(
        [(label, make_config(t)) for t in thread_counts],
        budget=budget, jobs=jobs, use_cache=use_cache,
    )
