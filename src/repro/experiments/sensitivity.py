"""Parameter sensitivity sweeps — extensions beyond the paper's own
experiments, in the spirit of its Section 7.

The paper asserts (and we verify in ``bottlenecks.py``) that the
improved architecture is insensitive to issue width, queue size, and
memory bandwidth.  These sweeps chart *how* performance responds as
each structure is scaled through its design space, which is what an
architect adopting this simulator would ask next:

* instruction queue size (8 → 64 entries),
* branch predictor capacity (PHT 256 → 8192 entries),
* return-stack depth (0 → 32, the xlisp recursion question),
* D-cache MSHRs (1 → 32, memory-level parallelism),
* hardware contexts at a fixed register budget (generalised Figure 7).

Every sweep submits its full batch to the parallel experiment engine,
so the design space shards across the worker pool and lands in the
persistent result cache.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import SMTConfig, scheme
from repro.experiments.parallel import RunSpec, execute_runs
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    run_configs,
)

Sweep = List[Tuple[int, ExperimentPoint]]


def _base(n_threads: int = 8, **overrides) -> SMTConfig:
    return scheme("ICOUNT", 2, 8, n_threads=n_threads, **overrides)


def _sweep(values, labeled_configs, budget, jobs, use_cache) -> Sweep:
    points = run_configs(
        labeled_configs, budget=budget, jobs=jobs, use_cache=use_cache
    )
    return list(zip(values, points))


def queue_size_sweep(budget: Optional[RunBudget] = None,
                     sizes=(8, 16, 32, 64),
                     n_threads: int = 8,
                     jobs: Optional[int] = None,
                     use_cache: Optional[bool] = None) -> Sweep:
    """IQ entries per queue.  The paper fixes 32; the sweep shows the
    knee (too-small queues throttle, big ones buy little)."""
    return _sweep(
        sizes,
        [(f"iq{size}", _base(n_threads, iq_size=size)) for size in sizes],
        budget, jobs, use_cache,
    )


def pht_size_sweep(budget: Optional[RunBudget] = None,
                   sizes=(256, 1024, 2048, 8192),
                   n_threads: int = 8,
                   jobs: Optional[int] = None,
                   use_cache: Optional[bool] = None) -> Sweep:
    """Pattern history table entries (paper fixes 2K; doubling both
    tables bought only ~2%)."""
    return _sweep(
        sizes,
        [(f"pht{size}", _base(n_threads, pht_entries=size)) for size in sizes],
        budget, jobs, use_cache,
    )


def ras_depth_sweep(budget: Optional[RunBudget] = None,
                    depths=(1, 4, 12, 32),
                    n_threads: int = 8,
                    jobs: Optional[int] = None,
                    use_cache: Optional[bool] = None) -> Sweep:
    """Per-context return-stack depth (paper fixes 12; xlisp's
    recursion overflows shallow stacks)."""
    return _sweep(
        depths,
        [(f"ras{depth}", _base(n_threads, ras_depth=depth)) for depth in depths],
        budget, jobs, use_cache,
    )


def mshr_sweep(budget: Optional[RunBudget] = None,
               counts=(1, 4, 16, 32),
               n_threads: int = 8,
               jobs: Optional[int] = None,
               use_cache: Optional[bool] = None) -> Sweep:
    """D-cache miss-status registers: memory-level parallelism across
    8 threads' miss streams.

    The MSHR count is not an :class:`SMTConfig` knob, so the sweep
    builds :class:`RunSpec`s with the ``dcache_mshrs`` override directly
    (the override participates in the cache key)."""
    budget = budget or RunBudget.from_environment()
    specs = [
        RunSpec(config=_base(n_threads), rotation=rotation, budget=budget,
                dcache_mshrs=count)
        for count in counts
        for rotation in range(budget.rotations)
    ]
    results = execute_runs(specs, jobs=jobs, use_cache=use_cache)
    out: Sweep = []
    for i, count in enumerate(counts):
        chunk = [
            r for r in
            results[i * budget.rotations:(i + 1) * budget.rotations]
            if r is not None  # rotation lost to a supervised failure
        ]
        ipc = sum(r.ipc for r in chunk) / len(chunk) if chunk \
            else float("nan")
        out.append((count, ExperimentPoint(
            label=f"mshr{count}", n_threads=n_threads, ipc=ipc,
            results=chunk,
        )))
    return out


def contexts_at_register_budget(budget: Optional[RunBudget] = None,
                                total_registers: int = 264,
                                thread_counts=(1, 2, 4, 6),
                                jobs: Optional[int] = None,
                                use_cache: Optional[bool] = None) -> Sweep:
    """Generalised Figure 7: the best context count for any register
    budget (264 = 8 threads' architectural registers + 8)."""
    usable = [t for t in thread_counts if total_registers > 32 * t]
    return _sweep(
        usable,
        [
            (f"{total_registers}regs", _base(t, phys_regs_total=total_registers))
            for t in usable
        ],
        budget, jobs, use_cache,
    )


def print_sweep(title: str, sweep: Sweep, unit: str = "") -> None:
    print(title)
    for value, point in sweep:
        print(f"  {value:>6d}{unit}: {point.ipc:5.2f} IPC")
    best = max(sweep, key=lambda item: item[1].ipc)
    print(f"  best at {best[0]}{unit}")
