"""Parameter sensitivity sweeps — extensions beyond the paper's own
experiments, in the spirit of its Section 7.

The paper asserts (and we verify in ``bottlenecks.py``) that the
improved architecture is insensitive to issue width, queue size, and
memory bandwidth.  These sweeps chart *how* performance responds as
each structure is scaled through its design space, which is what an
architect adopting this simulator would ask next:

* instruction queue size (8 → 64 entries),
* branch predictor capacity (PHT 256 → 8192 entries),
* return-stack depth (0 → 32, the xlisp recursion question),
* D-cache MSHRs (1 → 32, memory-level parallelism),
* hardware contexts at a fixed register budget (generalised Figure 7).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import SMTConfig, scheme
from repro.experiments.runner import ExperimentPoint, RunBudget, run_config

Sweep = List[Tuple[int, ExperimentPoint]]


def _base(n_threads: int = 8, **overrides) -> SMTConfig:
    return scheme("ICOUNT", 2, 8, n_threads=n_threads, **overrides)


def queue_size_sweep(budget: Optional[RunBudget] = None,
                     sizes=(8, 16, 32, 64),
                     n_threads: int = 8) -> Sweep:
    """IQ entries per queue.  The paper fixes 32; the sweep shows the
    knee (too-small queues throttle, big ones buy little)."""
    return [
        (size,
         run_config(_base(n_threads, iq_size=size), budget=budget,
                    label=f"iq{size}"))
        for size in sizes
    ]


def pht_size_sweep(budget: Optional[RunBudget] = None,
                   sizes=(256, 1024, 2048, 8192),
                   n_threads: int = 8) -> Sweep:
    """Pattern history table entries (paper fixes 2K; doubling both
    tables bought only ~2%)."""
    return [
        (size,
         run_config(_base(n_threads, pht_entries=size), budget=budget,
                    label=f"pht{size}"))
        for size in sizes
    ]


def ras_depth_sweep(budget: Optional[RunBudget] = None,
                    depths=(1, 4, 12, 32),
                    n_threads: int = 8) -> Sweep:
    """Per-context return-stack depth (paper fixes 12; xlisp's
    recursion overflows shallow stacks)."""
    return [
        (depth,
         run_config(_base(n_threads, ras_depth=depth), budget=budget,
                    label=f"ras{depth}"))
        for depth in depths
    ]


def mshr_sweep(budget: Optional[RunBudget] = None,
               counts=(1, 4, 16, 32),
               n_threads: int = 8) -> Sweep:
    """D-cache miss-status registers: memory-level parallelism across
    8 threads' miss streams."""
    from repro.core.simulator import Simulator
    from repro.memory.hierarchy import DCACHE_PARAMS
    from repro.workloads.mixes import standard_mix
    import dataclasses

    budget = budget or RunBudget.from_environment()
    out = []
    for count in counts:
        results = []
        for rotation in range(budget.rotations):
            config = _base(n_threads)
            sim = Simulator(config, standard_mix(n_threads, rotation))
            sim.hierarchy.dcache.params = dataclasses.replace(
                DCACHE_PARAMS, mshrs=count
            )
            results.append(sim.run(
                warmup_cycles=budget.warmup_cycles,
                measure_cycles=budget.measure_cycles,
                functional_warmup_instructions=(
                    budget.functional_warmup_instructions
                ),
            ))
        ipc = sum(r.ipc for r in results) / len(results)
        out.append((count, ExperimentPoint(
            label=f"mshr{count}", n_threads=n_threads, ipc=ipc,
            results=results,
        )))
    return out


def contexts_at_register_budget(budget: Optional[RunBudget] = None,
                                total_registers: int = 264,
                                thread_counts=(1, 2, 4, 6)) -> Sweep:
    """Generalised Figure 7: the best context count for any register
    budget (264 = 8 threads' architectural registers + 8)."""
    out = []
    for t in thread_counts:
        if total_registers <= 32 * t:
            continue
        out.append((t, run_config(
            _base(t, phys_regs_total=total_registers),
            budget=budget, label=f"{total_registers}regs",
        )))
    return out


def print_sweep(title: str, sweep: Sweep, unit: str = "") -> None:
    print(title)
    for value, point in sweep:
        print(f"  {value:>6d}{unit}: {point.ipc:5.2f} IPC")
    best = max(sweep, key=lambda item: item[1].ipc)
    print(f"  best at {best[0]}{unit}")
