"""Section 7 of the paper: "Where are the bottlenecks now?"

Each experiment takes the improved architecture (ICOUNT.2.8) as the
baseline, relieves (or restricts) one component, and reports the
throughput delta — reproducing every experiment in Section 7:

* issue bandwidth (infinite functional units),
* instruction queue size (64-entry searchable queues),
* fetch bandwidth (16-wide fetch from two threads, then also bigger
  queues and more registers),
* branch prediction (perfect prediction; doubled predictor tables),
* speculative execution (no wrong-path issue; no passing branches),
* memory throughput (infinite cache/bus bandwidth),
* register file size (excess register sweep).

Each experiment batches its configurations through the parallel
experiment engine; the repeated ICOUNT.2.8 baseline is deduplicated by
the engine and memoised by the result cache, so the full report
simulates the baseline once, not seven times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import SMTConfig, scheme
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    run_configs,
)


def improved_baseline(n_threads: int = 8, **overrides) -> SMTConfig:
    """ICOUNT.2.8 — the improved architecture of Section 7."""
    return scheme("ICOUNT", 2, 8, n_threads=n_threads, **overrides)


def _delta(base: ExperimentPoint, variant: ExperimentPoint) -> float:
    return (variant.ipc - base.ipc) / base.ipc if base.ipc else 0.0


def _labeled_batch(batch, budget, jobs, use_cache):
    points = run_configs(
        [(label, config) for label, config in batch],
        budget=budget, jobs=jobs, use_cache=use_cache,
    )
    return {label: point for (label, _), point in zip(batch, points)}


# ----------------------------------------------------------------------
def issue_bandwidth(budget: Optional[RunBudget] = None,
                    n_threads: int = 8,
                    jobs: Optional[int] = None,
                    use_cache: Optional[bool] = None
                    ) -> Dict[str, ExperimentPoint]:
    """Infinite functional units (paper: +0.5% at 8 threads)."""
    return _labeled_batch(
        [
            ("baseline", improved_baseline(n_threads)),
            ("infinite FUs", improved_baseline(n_threads, infinite_fus=True)),
        ],
        budget, jobs, use_cache,
    )


def queue_size(budget: Optional[RunBudget] = None,
               n_threads: int = 8,
               jobs: Optional[int] = None,
               use_cache: Optional[bool] = None) -> Dict[str, ExperimentPoint]:
    """Fully searchable 64-entry queues (paper: <1%)."""
    return _labeled_batch(
        [
            ("baseline", improved_baseline(n_threads)),
            ("64-entry queues", improved_baseline(n_threads, iq_size=64)),
        ],
        budget, jobs, use_cache,
    )


def fetch_bandwidth(budget: Optional[RunBudget] = None,
                    n_threads: int = 8,
                    jobs: Optional[int] = None,
                    use_cache: Optional[bool] = None
                    ) -> Dict[str, ExperimentPoint]:
    """16-wide fetch (up to 8 from each of 2 threads): paper +8%;
    plus 64-entry queues and 140 excess registers: another +7%."""
    wide = improved_baseline(
        n_threads, fetch_width=16, decode_width=16, rename_width=16
    )
    wide_big = wide.with_options(iq_size=64, excess_registers=140)
    return _labeled_batch(
        [
            ("baseline", improved_baseline(n_threads)),
            ("16-wide fetch", wide),
            ("16-wide + 64Q + 140 regs", wide_big),
        ],
        budget, jobs, use_cache,
    )


def branch_prediction(budget: Optional[RunBudget] = None,
                      thread_counts=(1, 4, 8),
                      jobs: Optional[int] = None,
                      use_cache: Optional[bool] = None
                      ) -> Dict[str, List[ExperimentPoint]]:
    """Perfect prediction (paper: +25%/+15%/+9% at 1/4/8 threads) and
    doubled BTB+PHT (paper: ~+2% at 8 threads)."""
    variants = (
        ("baseline", {}),
        ("perfect", {"perfect_branch_prediction": True}),
        ("doubled tables", {"btb_entries": 512, "pht_entries": 4096}),
    )
    batch = [
        (label, improved_baseline(t, **options))
        for t in thread_counts
        for label, options in variants
    ]
    points = run_configs(
        batch, budget=budget, jobs=jobs, use_cache=use_cache
    )
    out: Dict[str, List[ExperimentPoint]] = {
        label: [] for label, _ in variants
    }
    for (label, _), point in zip(batch, points):
        out[label].append(point)
    return out


def speculative_execution(budget: Optional[RunBudget] = None,
                          thread_counts=(1, 8),
                          jobs: Optional[int] = None,
                          use_cache: Optional[bool] = None
                          ) -> Dict[str, List[ExperimentPoint]]:
    """Restricted speculation (paper at 8/1 threads: no-wrong-path issue
    -7%/-38%; no passing branches -1.5%/-12%)."""
    variants = (
        ("baseline", {}),
        ("no wrong-path issue", {"speculation": "no_wrong_path"}),
        ("no passing branches", {"speculation": "no_pass_branch"}),
    )
    batch = [
        (label, improved_baseline(t, **options))
        for t in thread_counts
        for label, options in variants
    ]
    points = run_configs(
        batch, budget=budget, jobs=jobs, use_cache=use_cache
    )
    out: Dict[str, List[ExperimentPoint]] = {
        label: [] for label, _ in variants
    }
    for (label, _), point in zip(batch, points):
        out[label].append(point)
    return out


def memory_throughput(budget: Optional[RunBudget] = None,
                      n_threads: int = 8,
                      jobs: Optional[int] = None,
                      use_cache: Optional[bool] = None
                      ) -> Dict[str, ExperimentPoint]:
    """Infinite bandwidth caches (paper: +3%)."""
    return _labeled_batch(
        [
            ("baseline", improved_baseline(n_threads)),
            (
                "infinite bandwidth",
                improved_baseline(n_threads, infinite_memory_bandwidth=True),
            ),
        ],
        budget, jobs, use_cache,
    )


def register_file_size(budget: Optional[RunBudget] = None,
                       n_threads: int = 8,
                       excess_values=(70, 80, 90, 100, 200, 100000),
                       jobs: Optional[int] = None,
                       use_cache: Optional[bool] = None
                       ) -> List[Tuple[int, ExperimentPoint]]:
    """Excess-register sweep (paper: 90/-1%, 80/-3%, 70/-6%, inf/+2%)."""
    points = run_configs(
        [
            (None, improved_baseline(n_threads, excess_registers=excess))
            for excess in excess_values
        ],
        budget=budget, jobs=jobs, use_cache=use_cache,
    )
    return list(zip(excess_values, points))


# ----------------------------------------------------------------------
def print_report(budget: Optional[RunBudget] = None,
                 jobs: Optional[int] = None,
                 use_cache: Optional[bool] = None) -> None:
    """Run every Section 7 experiment and print paper-style deltas."""
    print("Section 7 bottleneck experiments (baseline: ICOUNT.2.8)")

    ib = issue_bandwidth(budget, jobs=jobs, use_cache=use_cache)
    print(f"  infinite FUs: {_delta(ib['baseline'], ib['infinite FUs']):+.1%} "
          "(paper: +0.5%)")

    qs = queue_size(budget, jobs=jobs, use_cache=use_cache)
    print(f"  64-entry searchable queues: "
          f"{_delta(qs['baseline'], qs['64-entry queues']):+.1%} (paper: <+1%)")

    fb = fetch_bandwidth(budget, jobs=jobs, use_cache=use_cache)
    print(f"  16-wide fetch: {_delta(fb['baseline'], fb['16-wide fetch']):+.1%} "
          "(paper: +8%)")
    print(f"  ... + 64Q + 140 regs: "
          f"{_delta(fb['baseline'], fb['16-wide + 64Q + 140 regs']):+.1%} "
          "(paper: +15% total)")

    bp = branch_prediction(budget, jobs=jobs, use_cache=use_cache)
    for i, t in enumerate((1, 4, 8)):
        d = _delta(bp["baseline"][i], bp["perfect"][i])
        paper = {1: "+25%", 4: "+15%", 8: "+9%"}[t]
        print(f"  perfect branch prediction @ {t}T: {d:+.1%} (paper: {paper})")
    d = _delta(bp["baseline"][-1], bp["doubled tables"][-1])
    print(f"  doubled BTB+PHT @ 8T: {d:+.1%} (paper: +2%)")

    sp = speculative_execution(budget, jobs=jobs, use_cache=use_cache)
    for i, t in enumerate((1, 8)):
        d1 = _delta(sp["baseline"][i], sp["no wrong-path issue"][i])
        d2 = _delta(sp["baseline"][i], sp["no passing branches"][i])
        paper1 = {1: "-38%", 8: "-7%"}[t]
        paper2 = {1: "-12%", 8: "-1.5%"}[t]
        print(f"  no wrong-path issue @ {t}T: {d1:+.1%} (paper: {paper1})")
        print(f"  no passing branches @ {t}T: {d2:+.1%} (paper: {paper2})")

    mt = memory_throughput(budget, jobs=jobs, use_cache=use_cache)
    print(f"  infinite memory bandwidth: "
          f"{_delta(mt['baseline'], mt['infinite bandwidth']):+.1%} "
          "(paper: +3%)")

    regs = register_file_size(budget, jobs=jobs, use_cache=use_cache)
    base = dict(regs)[100]
    for excess, point in regs:
        name = "inf" if excess >= 100000 else str(excess)
        print(f"  excess registers {name:>4s}: {_delta(base, point):+.1%}")
