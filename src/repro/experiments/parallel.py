"""Parallel experiment execution engine.

Every paper artifact (Figures 3-7, Tables 3-5, the Section 7 bottleneck
hunt) is assembled from dozens of independent ``(config, rotation)``
simulations.  This module shards those runs across a ``multiprocessing``
pool — each worker constructs its own :class:`Simulator` from a
picklable :class:`RunSpec` and returns a ``SimResult`` — and memoises
every result in the persistent on-disk cache of
:mod:`repro.experiments.cache`.

Determinism: a simulation is a pure function of its ``RunSpec`` (the
workload generator is seeded from stable content hashes, never from
process state), so the parallel path produces ``SimResult``s that are
field-identical to the serial path, and results are always returned in
spec order regardless of worker scheduling.

Knobs, in precedence order:

* explicit ``jobs=`` / ``use_cache=`` arguments,
* :func:`configure` (set by the CLI's ``--jobs`` / ``--no-cache``),
* the ``REPRO_JOBS`` and ``REPRO_NO_CACHE`` environment variables,
* defaults: serial, cache enabled.

The engine keeps one **persistent worker pool** alive across batches
(re-forked only when the worker count or the warm-image store changes)
and amortises functional warmup through the process-level warm-image
store of :mod:`repro.workloads.images`: a batch's distinct warm states
are computed once in the pool parent, inherited copy-on-write by every
forked worker, and replayed per run instead of re-emulated.  Both are
transparent — results stay bit-identical to the reference
:func:`run_spec` path (``REPRO_NO_WARM_IMAGES=1`` forces it).
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    TextIO,
)

from repro.core.config import SMTConfig
from repro.core.simulator import SimResult, Simulator
from repro.envutil import env_flag, env_int
from repro.experiments.cache import (
    ResultCache,
    cache_enabled_by_default,
    result_key,
)
from repro.workloads import images
from repro.workloads.mixes import standard_mix

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import RunBudget


# ----------------------------------------------------------------------
# Run specification.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully specified and picklable."""

    config: SMTConfig
    rotation: int
    budget: "RunBudget"
    seed: int = 0
    #: Out-of-config override used by the MSHR sensitivity sweep.
    dcache_mshrs: Optional[int] = None
    #: Run with the pipeline invariant sanitizer attached.  The
    #: sanitizer is purely observational, but a checked run earns a
    #: distinct cache identity: a cached unchecked result says nothing
    #: about whether the run *would* pass the checks.
    check_invariants: bool = False

    def key(self) -> str:
        """The run's content hash (its identity in the result cache)."""
        extras = {}
        if self.dcache_mshrs is not None:
            extras["dcache_mshrs"] = self.dcache_mshrs
        if self.check_invariants:
            extras["check_invariants"] = True
        return result_key(
            self.config, self.rotation, self.budget,
            seed=self.seed, extras=extras,
        )


def build_simulator(spec: RunSpec) -> Simulator:
    """Construct the simulator a spec describes (worker-side)."""
    sim = Simulator(
        spec.config,
        standard_mix(spec.config.n_threads, spec.rotation, spec.seed),
    )
    if spec.dcache_mshrs is not None:
        from repro.memory.hierarchy import DCACHE_PARAMS
        sim.hierarchy.dcache.params = dataclasses.replace(
            DCACHE_PARAMS, mshrs=spec.dcache_mshrs
        )
    return sim


def run_spec(spec: RunSpec, watchdog: Any = None) -> SimResult:
    """Execute one run start to finish (the pool worker function).

    With ``spec.check_invariants`` set, the pipeline sanitizer rides
    along and raises :class:`~repro.verify.sanitizer.InvariantViolation`
    (picklable, so it propagates cleanly out of pool workers) on the
    first breach.  ``watchdog`` (a
    :class:`~repro.core.simulator.Watchdog`, installed by the campaign
    supervisor) attaches as the simulator's abort hook so a runaway run
    raises :class:`~repro.core.simulator.SimulationAborted` instead of
    hanging its worker.
    """
    budget = spec.budget
    sim = build_simulator(spec)
    if spec.check_invariants:
        from repro.verify.sanitizer import PipelineSanitizer
        PipelineSanitizer(sim)
    if watchdog is not None:
        watchdog.attach(sim)
    return sim.run(
        warmup_cycles=budget.warmup_cycles,
        measure_cycles=budget.measure_cycles,
        functional_warmup_instructions=budget.functional_warmup_instructions,
    )


# ----------------------------------------------------------------------
# Warm-image integration.
# ----------------------------------------------------------------------
def warm_key(spec: RunSpec) -> str:
    """Identity of a spec's *warm state* (narrower than ``spec.key()``).

    Functional warmup reads only the workload and the config, so the
    timed-window budget, the MSHR override, and the sanitizer flag are
    deliberately excluded: runs differing only in those share one image.
    """
    payload = {
        "config": dataclasses.asdict(spec.config),
        "rotation": spec.rotation,
        "seed": spec.seed,
        "warm_instructions": spec.budget.functional_warmup_instructions,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def run_spec_fast(spec: RunSpec, watchdog: Any = None) -> SimResult:
    """:func:`run_spec`, but warmed through the process warm-image store.

    Bit-identical to :func:`run_spec` (functional warmup is timing-free
    and deterministic; ``tests/workloads/test_images.py`` holds the
    equality).  Falls back to the reference path when images are
    disabled or the spec does no functional warmup.
    """
    budget = spec.budget
    n_warm = budget.functional_warmup_instructions
    if not n_warm or not images.images_enabled():
        return run_spec(spec, watchdog)
    sim = build_simulator(spec)
    if spec.check_invariants:
        from repro.verify.sanitizer import PipelineSanitizer
        PipelineSanitizer(sim)
    if watchdog is not None:
        watchdog.attach(sim)
    images.warm_via_image(sim, warm_key(spec), n_warm)
    return sim.run(
        warmup_cycles=budget.warmup_cycles,
        measure_cycles=budget.measure_cycles,
        functional_warmup_instructions=0,
    )


def _ensure_images(specs: Sequence[RunSpec]) -> None:
    """Precompute the batch's warm images in the pool *parent*.

    Run before forking workers so every worker inherits the images
    copy-on-write — each distinct warm state is computed exactly once
    per process, no matter how the batch is sharded.
    """
    if not images.images_enabled():
        return
    seen = set()
    for spec in specs:
        n_warm = spec.budget.functional_warmup_instructions
        if not n_warm:
            continue
        key = warm_key(spec)
        if key in seen:
            continue
        seen.add(key)
        if images.lookup(key) is not None:
            continue
        sim = build_simulator(spec)
        sim.functional_warmup(n_warm)
        images.put(key, images.capture(sim, n_warm))


# ----------------------------------------------------------------------
# Batch progress reporting.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchProgress:
    """Snapshot of one ``execute_runs`` batch, handed to the callback.

    The callback fires once after the cache scan (so instant replays
    still report) and once per simulated run as it completes; the final
    snapshot always has ``completed == total``.
    """

    total: int        # run slots in the batch
    completed: int    # slots resolved so far (cache hits + simulated)
    cache_hits: int   # slots served from the persistent cache
    elapsed: float    # seconds since the batch started
    failed: int = 0   # slots that failed permanently (supervised runs)
    retried: int = 0  # retry attempts consumed (supervised runs)

    @property
    def simulated(self) -> int:
        return self.completed - self.cache_hits

    def __str__(self) -> str:
        text = (
            f"{self.completed}/{self.total} runs "
            f"({self.cache_hits} cache hits, {self.elapsed:.1f}s)"
        )
        if self.failed:
            text += f", {self.failed} FAILED"
        if self.retried:
            text += f", {self.retried} retried"
        return text


ProgressCallback = Callable[[BatchProgress], None]


def progress_printer(prefix: str = "",
                     stream: Optional[TextIO] = None) -> ProgressCallback:
    """A callback rendering progress to ``stream`` (default stderr).

    On a terminal the line updates in place; otherwise each snapshot is
    its own line (CI logs stay readable).
    """
    out = stream if stream is not None else sys.stderr
    interactive = getattr(out, "isatty", lambda: False)()

    def render(progress: BatchProgress) -> None:
        line = f"{prefix}{progress}"
        if interactive:
            end = "\n" if progress.completed >= progress.total else ""
            print(f"\r\x1b[2K{line}", end=end, file=out, flush=True)
        else:
            print(line, file=out, flush=True)

    return render


# ----------------------------------------------------------------------
# Engine configuration.
# ----------------------------------------------------------------------
_configured_jobs: Optional[int] = None
_configured_use_cache: Optional[bool] = None
_configured_progress: Optional[ProgressCallback] = None
_configured_check_invariants: Optional[bool] = None
_configured_cache: Optional[ResultCache] = None

_UNSET = object()


def configure(jobs: Any = _UNSET, use_cache: Any = _UNSET,
              progress: Any = _UNSET,
              check_invariants: Any = _UNSET,
              cache: Any = _UNSET) -> None:
    """Set process-wide defaults (the CLI's ``--jobs`` / ``--no-cache``
    / ``--progress`` / ``--check-invariants``).

    Pass ``None`` to reset a knob to its environment-derived default
    (for ``progress``: no reporting).  ``cache`` installs an explicit
    :class:`ResultCache` instance as the batch default — benchmarks use
    it to point sweeps at throwaway directories without mutating
    ``REPRO_CACHE_DIR`` for the whole process.
    """
    global _configured_jobs, _configured_use_cache, _configured_progress
    global _configured_check_invariants, _configured_cache
    if jobs is not _UNSET:
        _configured_jobs = jobs
    if use_cache is not _UNSET:
        _configured_use_cache = use_cache
    if progress is not _UNSET:
        _configured_progress = progress
    if check_invariants is not _UNSET:
        _configured_check_invariants = check_invariants
    if cache is not _UNSET:
        _configured_cache = cache


def default_progress() -> Optional[ProgressCallback]:
    return _configured_progress


def default_cache() -> Optional[ResultCache]:
    return _configured_cache


def default_jobs() -> int:
    if _configured_jobs is not None:
        return _configured_jobs
    return env_int("REPRO_JOBS", fallback=1, minimum=1)


def default_use_cache() -> bool:
    if _configured_use_cache is not None:
        return _configured_use_cache
    return cache_enabled_by_default()


def default_check_invariants() -> bool:
    """Whether new :class:`RunSpec` s should attach the sanitizer.

    Resolved at spec-construction time (not inside the worker) so the
    knob is reflected in each spec's cache key.
    """
    if _configured_check_invariants is not None:
        return _configured_check_invariants
    return env_flag("REPRO_CHECK_INVARIANTS")


def _pool(processes: int):
    """A worker pool; ``fork`` keeps the parent's warm program cache."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=processes)


# The persistent pool: forked once and reused across batches instead of
# paying pool construction + interpreter-state duplication per
# ``execute_runs`` call.  The pool is re-forked only when its shape no
# longer matches — a different worker count, or a warm-image store that
# has grown since the fork (workers read images copy-on-write, so a
# stale fork would re-warm from scratch inside every worker).
_worker_pool = None
_worker_pool_state: Optional[tuple] = None


def _persistent_pool(processes: int):
    global _worker_pool, _worker_pool_state
    state = (processes, images.generation())
    if _worker_pool is not None:
        if _worker_pool_state == state:
            return _worker_pool
        shutdown_pool()
    _worker_pool = _pool(processes)
    _worker_pool_state = state
    return _worker_pool


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent).

    Called automatically at interpreter exit and on Ctrl-C; tests call
    it directly to assert a clean slate.
    """
    global _worker_pool, _worker_pool_state
    if _worker_pool is not None:
        _worker_pool.terminate()
        _worker_pool.join()
        _worker_pool = None
        _worker_pool_state = None


atexit.register(shutdown_pool)


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
def execute_runs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[SimResult]:
    """Run every spec, returning results in spec order.

    Cache hits are served without simulating; identical specs within the
    batch are simulated once (runs are deterministic, so this is purely
    an optimisation — the Section 7 report alone repeats its baseline
    half a dozen times).  Misses are sharded across ``jobs`` worker
    processes when ``jobs > 1`` and stored to the cache as they finish,
    so an interrupted batch keeps its completed work.

    ``progress`` (default: the :func:`configure` d callback, if any)
    receives a :class:`BatchProgress` after the cache scan and after
    each completed simulation.

    When campaign supervision is active (``REPRO_RUN_TIMEOUT`` /
    ``REPRO_MAX_RETRIES``, or the CLI's ``--timeout`` / ``--resume``
    family), the batch routes through
    :func:`repro.experiments.supervise.supervised_execute_runs` instead:
    crash-isolated workers, watchdog timeouts, bounded retries, and a
    checkpoint journal.  Failed points come back as ``None``.

    When the campaign fabric is active (``--fabric`` / ``REPRO_FABRIC``),
    the batch routes through the durable scheduler instead
    (:func:`repro.sched.fabric.fabric_execute_runs`): a journal-backed
    queue drained by lease-holding workers, with crash recovery.
    """
    from repro.experiments import supervise
    from repro.sched import fabric

    if fabric.fabric_enabled():
        return fabric.fabric_execute_runs(
            specs, jobs=jobs, use_cache=use_cache, cache=cache,
            progress=progress,
        )
    if supervise.supervision_enabled():
        return supervise.supervised_execute_runs(
            specs, jobs=jobs, use_cache=use_cache, cache=cache,
            progress=progress,
        ).results
    if jobs is None:
        jobs = default_jobs()
    if use_cache is None:
        use_cache = default_use_cache()
    if cache is None and use_cache:
        # Explicit None test: ResultCache has __len__, so an *empty*
        # configured cache is falsy and `or` would wrongly discard it.
        configured = default_cache()
        cache = configured if configured is not None else ResultCache()
    if progress is None:
        progress = default_progress()
    started = time.perf_counter()

    results: List[Optional[SimResult]] = [None] * len(specs)
    keys = [spec.key() for spec in specs]

    if cache is not None:
        for i, key in enumerate(keys):
            results[i] = cache.get(key)

    # Dedupe outstanding work by key, preserving first-seen order.
    pending: Dict[str, List[int]] = {}
    order: List[int] = []
    for i, result in enumerate(results):
        if result is None:
            indices = pending.setdefault(keys[i], [])
            if not indices:
                order.append(i)
            indices.append(i)

    hits = len(specs) - sum(len(v) for v in pending.values())
    completed = hits

    def report() -> None:
        if progress is not None:
            progress(BatchProgress(
                total=len(specs), completed=completed, cache_hits=hits,
                elapsed=time.perf_counter() - started,
            ))

    report()

    miss_specs = [specs[i] for i in order]
    if miss_specs:
        if jobs > 1 and len(miss_specs) > 1:
            # Warm images are computed here, in the parent, so the fork
            # below hands every worker the batch's warm states for free.
            _ensure_images(miss_specs)
            procs = min(jobs, len(miss_specs))
            pool = _persistent_pool(procs)
            # Adaptive chunking: amortise dispatch IPC for big batches
            # while keeping at least four waves per worker so progress
            # stays live and stragglers re-balance.
            chunk = max(1, len(miss_specs) // (procs * 4))
            try:
                completions = pool.imap(run_spec_fast, miss_specs,
                                        chunksize=chunk)
                # imap yields lazily and in order, so results stream
                # into the cache as workers finish.
                for i, result in zip(order, completions):
                    for j in pending[keys[i]]:
                        results[j] = result
                    if cache is not None:
                        cache.put(keys[i], result)
                    completed += len(pending[keys[i]])
                    report()
            except KeyboardInterrupt:
                # Ctrl-C mid-batch: kill workers promptly (terminate,
                # then join so no children leak) and emit a final
                # partial snapshot — completed runs are already in the
                # cache, so a rerun resumes from them.
                shutdown_pool()
                report()
                raise
        else:
            for i in order:
                result = run_spec_fast(specs[i])
                for j in pending[keys[i]]:
                    results[j] = result
                if cache is not None:
                    cache.put(keys[i], result)
                completed += len(pending[keys[i]])
                report()

    return results  # type: ignore[return-value]
