"""Parallel experiment execution engine.

Every paper artifact (Figures 3-7, Tables 3-5, the Section 7 bottleneck
hunt) is assembled from dozens of independent ``(config, rotation)``
simulations.  This module shards those runs across a ``multiprocessing``
pool — each worker constructs its own :class:`Simulator` from a
picklable :class:`RunSpec` and returns a ``SimResult`` — and memoises
every result in the persistent on-disk cache of
:mod:`repro.experiments.cache`.

Determinism: a simulation is a pure function of its ``RunSpec`` (the
workload generator is seeded from stable content hashes, never from
process state), so the parallel path produces ``SimResult``s that are
field-identical to the serial path, and results are always returned in
spec order regardless of worker scheduling.

Knobs, in precedence order:

* explicit ``jobs=`` / ``use_cache=`` arguments,
* :func:`configure` (set by the CLI's ``--jobs`` / ``--no-cache``),
* the ``REPRO_JOBS`` and ``REPRO_NO_CACHE`` environment variables,
* defaults: serial, cache enabled.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.core.config import SMTConfig
from repro.core.simulator import SimResult, Simulator
from repro.experiments.cache import (
    ResultCache,
    cache_enabled_by_default,
    result_key,
)
from repro.workloads.mixes import standard_mix

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import RunBudget


# ----------------------------------------------------------------------
# Run specification.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One simulation run, fully specified and picklable."""

    config: SMTConfig
    rotation: int
    budget: "RunBudget"
    seed: int = 0
    #: Out-of-config override used by the MSHR sensitivity sweep.
    dcache_mshrs: Optional[int] = None

    def key(self) -> str:
        """The run's content hash (its identity in the result cache)."""
        extras = {}
        if self.dcache_mshrs is not None:
            extras["dcache_mshrs"] = self.dcache_mshrs
        return result_key(
            self.config, self.rotation, self.budget,
            seed=self.seed, extras=extras,
        )


def build_simulator(spec: RunSpec) -> Simulator:
    """Construct the simulator a spec describes (worker-side)."""
    sim = Simulator(
        spec.config,
        standard_mix(spec.config.n_threads, spec.rotation, spec.seed),
    )
    if spec.dcache_mshrs is not None:
        from repro.memory.hierarchy import DCACHE_PARAMS
        sim.hierarchy.dcache.params = dataclasses.replace(
            DCACHE_PARAMS, mshrs=spec.dcache_mshrs
        )
    return sim


def run_spec(spec: RunSpec) -> SimResult:
    """Execute one run start to finish (the pool worker function)."""
    budget = spec.budget
    return build_simulator(spec).run(
        warmup_cycles=budget.warmup_cycles,
        measure_cycles=budget.measure_cycles,
        functional_warmup_instructions=budget.functional_warmup_instructions,
    )


# ----------------------------------------------------------------------
# Engine configuration.
# ----------------------------------------------------------------------
_configured_jobs: Optional[int] = None
_configured_use_cache: Optional[bool] = None

_UNSET = object()


def configure(jobs: Any = _UNSET, use_cache: Any = _UNSET) -> None:
    """Set process-wide defaults (the CLI's ``--jobs`` / ``--no-cache``).

    Pass ``None`` to reset a knob to its environment-derived default.
    """
    global _configured_jobs, _configured_use_cache
    if jobs is not _UNSET:
        _configured_jobs = jobs
    if use_cache is not _UNSET:
        _configured_use_cache = use_cache


def default_jobs() -> int:
    if _configured_jobs is not None:
        return _configured_jobs
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def default_use_cache() -> bool:
    if _configured_use_cache is not None:
        return _configured_use_cache
    return cache_enabled_by_default()


def _pool(processes: int):
    """A worker pool; ``fork`` keeps the parent's warm program cache."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=processes)


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------
def execute_runs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache: Optional[ResultCache] = None,
) -> List[SimResult]:
    """Run every spec, returning results in spec order.

    Cache hits are served without simulating; identical specs within the
    batch are simulated once (runs are deterministic, so this is purely
    an optimisation — the Section 7 report alone repeats its baseline
    half a dozen times).  Misses are sharded across ``jobs`` worker
    processes when ``jobs > 1``.
    """
    if jobs is None:
        jobs = default_jobs()
    if use_cache is None:
        use_cache = default_use_cache()
    if cache is None and use_cache:
        cache = ResultCache()

    results: List[Optional[SimResult]] = [None] * len(specs)
    keys = [spec.key() for spec in specs]

    if cache is not None:
        for i, key in enumerate(keys):
            results[i] = cache.get(key)

    # Dedupe outstanding work by key, preserving first-seen order.
    pending: Dict[str, List[int]] = {}
    order: List[int] = []
    for i, result in enumerate(results):
        if result is None:
            indices = pending.setdefault(keys[i], [])
            if not indices:
                order.append(i)
            indices.append(i)

    miss_specs = [specs[i] for i in order]
    if miss_specs:
        if jobs > 1 and len(miss_specs) > 1:
            with _pool(min(jobs, len(miss_specs))) as pool:
                miss_results = pool.map(run_spec, miss_specs, chunksize=1)
        else:
            miss_results = [run_spec(spec) for spec in miss_specs]
        for i, result in zip(order, miss_results):
            for j in pending[keys[i]]:
                results[j] = result
            if cache is not None:
                cache.put(keys[i], result)

    return results  # type: ignore[return-value]
