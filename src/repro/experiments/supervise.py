"""Fault-tolerant campaign supervision for long experiment sweeps.

The parallel engine (:mod:`repro.experiments.parallel`) shards runs over
a ``multiprocessing`` pool, but a plain pool has no per-run timeout, no
retry, and no record of partial progress: one hung simulation, OOM'd
worker, or Ctrl-C loses the whole batch.  This module wraps the engine
with production-grade fault tolerance:

* **Watchdog timeouts** — each run executes in its own worker process
  with a :class:`~repro.core.simulator.Watchdog` (wall-clock + cycle
  budget) installed as the simulator's abort hook, so a pathological
  configuration aborts itself with a structured
  :class:`~repro.core.simulator.SimulationAborted`; the supervisor
  additionally hard-kills workers that blow past the deadline entirely.
* **Crash isolation + retry** — worker exceptions, signals, and OOM
  kills are converted into picklable :class:`RunFailure` records
  (taxonomy: ``timeout | crash | invariant | oom | interrupted``) and
  retried with exponential backoff up to ``max_retries`` times; one bad
  point degrades into a partial result instead of killing the batch.
* **Checkpoint journal** — an append-only JSONL
  (:class:`CampaignJournal`, by default under
  ``<cache dir>/campaigns/``) records every completed/failed spec hash;
  ``repro experiment --resume <journal>`` skips completed points (their
  results replay from the result cache) and re-queues failures.
* **Campaign report** — :class:`CampaignReport` summarises
  succeeded/failed/retried/skipped counts, the slowest points, and every
  failure record; exported through the schema-versioned documents of
  :mod:`repro.experiments.export`.

Knobs mirror the engine's convention: explicit arguments beat
:func:`configure` (set by the CLI) beat the environment
(``REPRO_RUN_TIMEOUT`` seconds per run, ``REPRO_MAX_RETRIES``).

Determinism: a run is a pure function of its spec, so supervised
results are field-identical to unsupervised ones — supervision changes
*where* a run executes, never *what* it computes.
"""

from __future__ import annotations

import json
import logging
import os
import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.simulator import SimResult, SimulationAborted, Watchdog
from repro.experiments.cache import ResultCache, default_cache_dir

log = logging.getLogger("repro.supervise")

#: Failure taxonomy (the only values ``RunFailure.kind`` takes).
FAILURE_KINDS = ("timeout", "crash", "invariant", "oom", "interrupted")

#: Kinds worth retrying: worker death and timeouts can be environmental
#: (load spikes, OOM-killer roulette); invariant violations are
#: deterministic properties of the spec, and interrupts are the user's.
RETRYABLE_KINDS = frozenset(("timeout", "crash", "oom"))

#: Extra wall-clock slack the parent grants beyond the in-worker
#: watchdog before hard-killing a worker (covers hangs inside a single
#: simulator step, where the abort hook never gets polled).
KILL_GRACE_SECONDS = 2.0

#: Slack added to a spec's nominal cycle count for the watchdog's
#: cycle-budget guard (a tripwire, not a schedule).
CYCLE_BUDGET_SLACK = 4096

JOURNAL_SCHEMA = "repro.campaign_journal"
JOURNAL_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Failure records.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunFailure:
    """One run's structured, picklable post-mortem."""

    kind: str                # one of FAILURE_KINDS
    key: str                 # task identity (spec hash / "seed:N")
    message: str
    attempts: int = 1        # executions consumed (1 = no retry)
    elapsed: float = 0.0     # wall seconds of the final attempt
    label: str = ""          # human-readable task description
    details: Optional[Dict[str, Any]] = None  # violation dict, traceback tail

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "key": self.key, "message": self.message,
            "attempts": self.attempts, "elapsed": round(self.elapsed, 3),
            "label": self.label, "details": self.details,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunFailure":
        return cls(
            kind=data.get("kind", "crash"), key=data.get("key", ""),
            message=data.get("message", ""),
            attempts=int(data.get("attempts", 1)),
            elapsed=float(data.get("elapsed", 0.0)),
            label=data.get("label", ""), details=data.get("details"),
        )

    def __str__(self) -> str:
        who = self.label or self.key[:12]
        retries = f", {self.attempts} attempts" if self.attempts > 1 else ""
        return f"[{self.kind}] {who}: {self.message}{retries}"


@dataclass
class TaskOutcome:
    """Final verdict for one supervised task (after any retries)."""

    key: str
    result: Any = None
    failure: Optional[RunFailure] = None
    attempts: int = 1
    elapsed: float = 0.0     # wall seconds of the successful attempt

    @property
    def ok(self) -> bool:
        return self.failure is None


# ----------------------------------------------------------------------
# Checkpoint journal.
# ----------------------------------------------------------------------
def default_journal_path(name: str) -> str:
    """Journal location for a named campaign, next to the result cache."""
    return os.path.join(default_cache_dir(), "campaigns", f"{name}.jsonl")


@dataclass
class JournalState:
    """What a journal says already happened (for ``--resume``).

    Replay is idempotent under duplicate terminal records: once a key
    has completed, later ``done`` records for it (two leases racing to
    finish the same run, a re-appended tail) and later ``failed``
    records (a reclaimed lease failing after the original finished) are
    counted in :attr:`duplicates` and logged, but the first completion
    stands — ``--resume`` counts stay correct.  A ``done`` after a
    ``failed`` is *not* a duplicate: that is a retry succeeding, and the
    success supersedes the failure.
    """

    completed: Set[str] = field(default_factory=set)
    failures: Dict[str, RunFailure] = field(default_factory=dict)
    seeds: Dict[int, str] = field(default_factory=dict)  # fuzz campaigns
    duplicates: int = 0  # terminal records ignored by first-wins replay

    @classmethod
    def load(cls, path: str) -> "JournalState":
        """Replay a journal, tolerating a corrupt/truncated tail (a
        writer killed mid-line must not poison the resume)."""
        state = cls()
        try:
            handle = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return state
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn write; later records are independent
                if not isinstance(record, dict):
                    continue
                event = record.get("event")
                if event == "done":
                    key = record.get("key")
                    if key:
                        if key in state.completed:
                            state.duplicates += 1
                            log.warning(
                                "journal duplicate 'done' for %s: "
                                "keeping first completion", key[:12])
                            continue
                        state.completed.add(key)
                        state.failures.pop(key, None)
                elif event == "failed":
                    key = record.get("key")
                    payload = record.get("failure")
                    if key and isinstance(payload, dict):
                        if key in state.completed:
                            # First terminal record wins: a completion
                            # already stands, so a late failure (e.g.
                            # from a reclaimed lease) changes nothing.
                            state.duplicates += 1
                            log.warning(
                                "journal 'failed' after 'done' for %s: "
                                "keeping completion", key[:12])
                            continue
                        state.failures[key] = RunFailure.from_dict(payload)
                elif event == "seed":
                    seed = record.get("seed")
                    if isinstance(seed, int):
                        state.seeds[seed] = str(record.get("status", "ok"))
        return state


class CampaignJournal:
    """Append-only JSONL checkpoint log, flushed after every record so a
    killed campaign loses at most the in-flight line.

    With ``REPRO_JOURNAL_FSYNC=1`` every record is additionally
    ``fsync``'d, trading append throughput for durability across power
    loss (see ``docs/fabric.md`` for the trade-off)."""

    def __init__(self, path: str):
        from repro.envutil import env_flag

        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = open(path, "a", encoding="utf-8")
        self._fsync = env_flag("REPRO_JOURNAL_FSYNC")
        if fresh:
            self.record({"schema": JOURNAL_SCHEMA,
                         "schema_version": JOURNAL_SCHEMA_VERSION})

    def record(self, payload: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def done(self, key: str, elapsed: float = 0.0) -> None:
        self.record({"event": "done", "key": key,
                     "elapsed": round(elapsed, 3)})

    def failed(self, failure: RunFailure) -> None:
        self.record({"event": "failed", "key": failure.key,
                     "failure": failure.to_dict()})

    def seed_done(self, seed: int, status: str) -> None:
        self.record({"event": "seed", "seed": seed, "status": status})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Supervision knobs (CLI/env), mirroring parallel.configure.
# ----------------------------------------------------------------------
_UNSET = object()

_configured_supervise: Optional[bool] = None
_configured_timeout: Optional[float] = None
_configured_max_retries: Optional[int] = None
_configured_journal_path: Optional[str] = None
_configured_resume_path: Optional[str] = None


def configure(supervise: Any = _UNSET, timeout: Any = _UNSET,
              max_retries: Any = _UNSET, journal_path: Any = _UNSET,
              resume_path: Any = _UNSET) -> None:
    """Set process-wide supervision defaults (the CLI's ``--timeout`` /
    ``--max-retries`` / ``--journal`` / ``--resume``).

    Pass ``None`` to reset a knob to its environment-derived default.
    """
    global _configured_supervise, _configured_timeout
    global _configured_max_retries, _configured_journal_path
    global _configured_resume_path
    if supervise is not _UNSET:
        _configured_supervise = supervise
    if timeout is not _UNSET:
        _configured_timeout = timeout
    if max_retries is not _UNSET:
        _configured_max_retries = max_retries
    if journal_path is not _UNSET:
        _configured_journal_path = journal_path
    if resume_path is not _UNSET:
        _configured_resume_path = resume_path


def default_run_timeout() -> Optional[float]:
    """Per-run wall-clock budget in seconds (None = no timeout)."""
    if _configured_timeout is not None:
        return _configured_timeout if _configured_timeout > 0 else None
    env = os.environ.get("REPRO_RUN_TIMEOUT")
    if env:
        try:
            value = float(env)
            return value if value > 0 else None
        except ValueError:
            pass
    return None


def default_max_retries() -> int:
    if _configured_max_retries is not None:
        return max(0, _configured_max_retries)
    env = os.environ.get("REPRO_MAX_RETRIES")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return 1


def default_journal_path_configured() -> Optional[str]:
    return _configured_journal_path


def default_resume_path() -> Optional[str]:
    return _configured_resume_path


def supervision_enabled() -> bool:
    """Whether ``execute_runs`` should route through the supervisor.

    Explicit ``configure(supervise=...)`` wins; otherwise supervision
    switches on when any supervision knob (timeout, retries, journal,
    resume) is set by ``configure`` or the environment.
    """
    if _configured_supervise is not None:
        return _configured_supervise
    if (_configured_timeout is not None
            or _configured_max_retries is not None
            or _configured_journal_path is not None
            or _configured_resume_path is not None):
        return True
    return bool(os.environ.get("REPRO_RUN_TIMEOUT")
                or os.environ.get("REPRO_MAX_RETRIES"))


# ----------------------------------------------------------------------
# The generic supervisor: crash-isolated process-per-task execution.
# ----------------------------------------------------------------------
def classify_exception(exc: BaseException) -> Tuple[str, Dict[str, Any]]:
    """Map an exception onto the failure taxonomy: ``(kind, payload)``.

    The single classification boundary shared by the supervisor's child
    processes and the scheduler's campaign workers
    (:mod:`repro.sched.worker`).  Notably, the multicore driver's
    :class:`~repro.multicore.driver.DriverInvariantError` classifies as
    ``invariant`` — a deterministic property of the run, never retried —
    rather than falling through as a generic (retryable) ``crash``.
    """
    # Lazy imports: repro.verify imports this module's package, so the
    # sanitizer cannot be imported at module load without a cycle.
    from repro.verify.sanitizer import InvariantViolation

    try:
        from repro.multicore.driver import DriverInvariantError
    except ImportError:  # pragma: no cover - partial installs
        DriverInvariantError = None  # type: ignore[assignment]

    if isinstance(exc, InvariantViolation):
        return "invariant", {"message": str(exc),
                             "violation": exc.to_dict()}
    if DriverInvariantError is not None and isinstance(
            exc, DriverInvariantError):
        return "invariant", {"message": str(exc), "details": exc.details}
    if isinstance(exc, SimulationAborted):
        return "timeout", {"message": str(exc), "cycle": exc.cycle}
    if isinstance(exc, MemoryError):
        return "oom", {"message": "MemoryError in worker"}
    if isinstance(exc, KeyboardInterrupt):
        return "interrupted", {"message": "worker interrupted"}
    return "crash", {
        "message": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc()[-2000:],
    }


def _child_main(conn, fn, payload, timeout: Optional[float]) -> None:
    """Worker-process entry: run ``fn(payload, watchdog)`` and ship a
    ``(status, payload)`` verdict back over the pipe.  Every exception
    is converted to a structured message — a worker never dies silently
    unless the OS kills it."""
    try:
        watchdog = Watchdog(wall_seconds=timeout) if timeout else None
        result = fn(payload, watchdog)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - taxonomy boundary
        conn.send(classify_exception(exc))
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _mp_context():
    """``fork`` keeps the parent's warm program cache (and lets tests
    inject behaviour via monkeypatching before the fork)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Handle:
    """One live worker process and its bookkeeping."""

    __slots__ = ("key", "payload", "attempt", "process", "conn",
                 "started", "deadline")

    def __init__(self, key, payload, attempt, process, conn, started,
                 deadline):
        self.key = key
        self.payload = payload
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline


class Supervisor:
    """Run picklable tasks in crash-isolated worker processes with
    timeouts, bounded retries, and structured failure records.

    ``fn(payload, watchdog)`` executes in a fresh child process per
    attempt (``fork`` start method); its return value must be picklable.
    ``on_outcome`` fires once per task with the final
    :class:`TaskOutcome` — successes and failures both — as tasks
    complete (journaling and progress hooks live there).

    ``run`` returns ``{key: TaskOutcome}``.  On ``KeyboardInterrupt``
    the supervisor kills every live worker, records them as
    ``interrupted`` failures (visible in :attr:`outcomes`), and
    re-raises — queued-but-unstarted tasks carry no record, so a
    resumed campaign re-runs them.
    """

    def __init__(
        self,
        fn: Callable[[Any, Optional[Watchdog]], Any],
        jobs: int = 1,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        backoff: float = 0.5,
        kill_grace: float = KILL_GRACE_SECONDS,
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    ):
        self.fn = fn
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.kill_grace = kill_grace
        self.on_outcome = on_outcome
        self.retries_used = 0
        self.outcomes: Dict[str, TaskOutcome] = {}
        self._ctx = _mp_context()

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Tuple[str, Any]]) -> Dict[str, TaskOutcome]:
        # (key, payload, attempt, not-before time)
        queue: List[Tuple[str, Any, int, float]] = [
            (key, payload, 1, 0.0) for key, payload in tasks
        ]
        live: Dict[Any, _Handle] = {}  # conn -> handle
        self.outcomes = {}
        try:
            while queue or live:
                now = time.monotonic()
                self._launch_ready(queue, live, now)
                wait_for = self._next_wait(queue, live, now)
                if live:
                    ready = _conn_wait(list(live), timeout=wait_for)
                    for conn in ready:
                        self._reap(live.pop(conn), queue)
                    self._kill_expired(live, queue)
                elif queue:
                    # Everything is backing off; sleep until the first
                    # task becomes ready again.
                    time.sleep(wait_for if wait_for is not None else 0.01)
        except KeyboardInterrupt:
            self._interrupt(live, queue)
            raise
        return self.outcomes

    # ------------------------------------------------------------------
    def _launch_ready(self, queue, live, now) -> None:
        i = 0
        while len(live) < self.jobs and i < len(queue):
            key, payload, attempt, not_before = queue[i]
            if not_before > now:
                i += 1
                continue
            queue.pop(i)
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_child_main,
                args=(child_conn, self.fn, payload, self.timeout),
                daemon=True,
            )
            process.start()
            child_conn.close()
            deadline = (
                now + self.timeout + self.kill_grace
                if self.timeout else None
            )
            live[parent_conn] = _Handle(
                key, payload, attempt, process, parent_conn, now, deadline
            )

    def _next_wait(self, queue, live, now) -> Optional[float]:
        candidates = [
            handle.deadline - now for handle in live.values()
            if handle.deadline is not None
        ]
        if len(live) < self.jobs:
            candidates.extend(
                not_before - now for _, _, _, not_before in queue
                if not_before > now
            )
        if not candidates:
            return None
        return max(0.0, min(candidates))

    # ------------------------------------------------------------------
    def _reap(self, handle: _Handle, queue) -> None:
        """A worker's pipe is ready (verdict sent, or died silently)."""
        message = None
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            handle.conn.close()
        handle.process.join(timeout=10.0)
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.kill()
            handle.process.join()
        elapsed = time.monotonic() - handle.started

        if message is not None:
            status, payload = message
            if status == "ok":
                self._finish(TaskOutcome(
                    key=handle.key, result=payload,
                    attempts=handle.attempt, elapsed=elapsed,
                ))
                return
            details = payload if isinstance(payload, dict) else \
                {"message": str(payload)}
            self._failed(handle, status, details.get("message", status),
                         details, elapsed, queue)
            return

        # Died without a verdict: a signal got it.  SIGKILL is the OOM
        # killer's signature (or an operator's); anything else is a
        # crash (segfault, bus error, runaway recursion, ...).
        exitcode = handle.process.exitcode
        if exitcode == -signal.SIGKILL:
            kind, message_text = "oom", (
                "worker killed by SIGKILL (out of memory?)"
            )
        else:
            kind, message_text = "crash", (
                f"worker died without a verdict (exit code {exitcode})"
            )
        self._failed(handle, kind, message_text, {"exitcode": exitcode},
                     elapsed, queue)

    def _kill_expired(self, live, queue) -> None:
        now = time.monotonic()
        expired = [
            conn for conn, handle in live.items()
            if handle.deadline is not None and now >= handle.deadline
        ]
        for conn in expired:
            handle = live.pop(conn)
            self._kill(handle)
            elapsed = now - handle.started
            self._failed(
                handle, "timeout",
                f"worker hard-killed after {elapsed:.1f}s "
                f"(timeout {self.timeout}s + {self.kill_grace}s grace)",
                None, elapsed, queue,
            )

    def _kill(self, handle: _Handle) -> None:
        process = handle.process
        try:
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        finally:
            try:
                handle.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _failed(self, handle, kind, message, details, elapsed,
                queue) -> None:
        if kind in RETRYABLE_KINDS and handle.attempt <= self.max_retries:
            self.retries_used += 1
            delay = self.backoff * (2 ** (handle.attempt - 1))
            queue.append((handle.key, handle.payload, handle.attempt + 1,
                          time.monotonic() + delay))
            return
        self._finish(TaskOutcome(
            key=handle.key,
            failure=RunFailure(
                kind=kind, key=handle.key, message=message,
                attempts=handle.attempt, elapsed=elapsed, details=details,
            ),
            attempts=handle.attempt, elapsed=elapsed,
        ))

    def _finish(self, outcome: TaskOutcome) -> None:
        self.outcomes[outcome.key] = outcome
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _interrupt(self, live, queue) -> None:
        """Ctrl-C: kill workers promptly, record them as interrupted."""
        queue.clear()
        for conn in list(live):
            handle = live.pop(conn)
            self._kill(handle)
            self._finish(TaskOutcome(
                key=handle.key,
                failure=RunFailure(
                    kind="interrupted", key=handle.key,
                    message="campaign interrupted (worker killed)",
                    attempts=handle.attempt,
                    elapsed=time.monotonic() - handle.started,
                ),
                attempts=handle.attempt,
            ))


# ----------------------------------------------------------------------
# Campaign report.
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """End-of-run accounting for one supervised batch."""

    name: str
    total: int                # run slots in the batch
    succeeded: int = 0        # slots with a result (cache hits included)
    failed: int = 0           # slots with no result after retries
    cache_hits: int = 0
    simulated: int = 0        # runs actually executed (deduped)
    retried: int = 0          # extra attempts consumed by retries
    skipped: int = 0          # slots satisfied by the resume journal
    elapsed: float = 0.0
    interrupted: bool = False
    journal_path: Optional[str] = None
    slowest: List[Tuple[str, float]] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "total": self.total,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "retried": self.retried,
            "skipped": self.skipped,
            "elapsed": round(self.elapsed, 3),
            "interrupted": self.interrupted,
            "journal": self.journal_path,
            "slowest": [
                {"label": label, "elapsed": round(seconds, 3)}
                for label, seconds in self.slowest
            ],
            "failures": [f.to_dict() for f in self.failures],
        }

    def describe(self) -> str:
        lines = [
            f"campaign {self.name}: {self.succeeded}/{self.total} ok, "
            f"{self.failed} failed, {self.retried} retried, "
            f"{self.skipped} skipped, {self.cache_hits} cache hits "
            f"({self.elapsed:.1f}s)"
            + (" [INTERRUPTED]" if self.interrupted else "")
        ]
        if self.journal_path:
            lines.append(f"  journal: {self.journal_path}")
        for label, seconds in self.slowest:
            lines.append(f"  slow: {label} ({seconds:.1f}s)")
        for failure in self.failures:
            lines.append(f"  {failure}")
        return "\n".join(lines)


@dataclass
class CampaignResult:
    """Results (spec order, ``None`` where a point failed) + report."""

    results: List[Optional[SimResult]]
    report: CampaignReport


#: Reports of every supervised batch since the last reset (the CLI runs
#: several batches per experiment and summarises them at exit).
_campaign_reports: List[CampaignReport] = []


def reset_campaign_log() -> None:
    del _campaign_reports[:]


def campaign_reports() -> List[CampaignReport]:
    return list(_campaign_reports)


# ----------------------------------------------------------------------
# Supervised batch execution of RunSpecs.
# ----------------------------------------------------------------------
def _run_spec_task(spec, watchdog: Optional[Watchdog] = None):
    """Supervisor task fn: one RunSpec in a worker, watchdog attached.

    Called through the module so tests can monkeypatch
    ``parallel.run_spec`` to inject crashes/hangs (the ``fork`` start
    method carries the patch into the child)."""
    from repro.experiments import parallel

    if watchdog is not None:
        budget = spec.budget
        watchdog.max_cycles = (budget.warmup_cycles
                               + budget.measure_cycles
                               + CYCLE_BUDGET_SLACK)
    return parallel.run_spec(spec, watchdog=watchdog)


def _spec_label(spec) -> str:
    return (f"{spec.config.scheme_name}/T{spec.config.n_threads}"
            f"/rot{spec.rotation}")


def supervised_execute_runs(
    specs: Sequence[Any],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable] = None,
    timeout: Any = _UNSET,
    max_retries: Optional[int] = None,
    backoff: float = 0.5,
    journal_path: Any = _UNSET,
    resume_path: Any = _UNSET,
    name: str = "batch",
) -> CampaignResult:
    """Run a batch of :class:`~repro.experiments.parallel.RunSpec` s
    under supervision.

    Mirrors :func:`~repro.experiments.parallel.execute_runs` (cache
    scan, in-batch dedupe, spec-ordered results, progress callbacks) but
    executes misses in crash-isolated worker processes with watchdog
    timeouts and bounded retries, journals every completion/failure, and
    returns a :class:`CampaignResult` whose ``results`` list holds
    ``None`` for points that failed permanently.

    On ``KeyboardInterrupt`` the journal is flushed, live workers are
    killed and recorded as ``interrupted``, the partial report is
    appended to the campaign log, and the interrupt re-raises.
    """
    from repro.experiments import parallel

    if jobs is None:
        jobs = parallel.default_jobs()
    if use_cache is None:
        use_cache = parallel.default_use_cache()
    if cache is None and use_cache:
        cache = ResultCache()
    if progress is None:
        progress = parallel.default_progress()
    if timeout is _UNSET:
        timeout = default_run_timeout()
    if max_retries is None:
        max_retries = default_max_retries()
    if journal_path is _UNSET:
        journal_path = default_journal_path_configured()
    if resume_path is _UNSET:
        resume_path = default_resume_path()
    if resume_path and not journal_path:
        journal_path = resume_path

    started = time.perf_counter()
    resume_state = JournalState.load(resume_path) if resume_path \
        else JournalState()

    results: List[Optional[SimResult]] = [None] * len(specs)
    keys = [spec.key() for spec in specs]
    labels = {key: _spec_label(spec) for key, spec in zip(keys, specs)}

    if cache is not None:
        for i, key in enumerate(keys):
            results[i] = cache.get(key)

    # Slots the resume journal marks complete AND the cache can serve
    # are skipped work; journal-complete-but-cache-missing slots re-run
    # (the journal records identity, the cache holds the payload).
    skipped = sum(
        1 for i, key in enumerate(keys)
        if results[i] is not None and key in resume_state.completed
    )

    # Dedupe outstanding work by key, preserving first-seen order.
    pending: Dict[str, List[int]] = {}
    order: List[int] = []
    for i, result in enumerate(results):
        if result is None:
            indices = pending.setdefault(keys[i], [])
            if not indices:
                order.append(i)
            indices.append(i)

    hits = len(specs) - sum(len(v) for v in pending.values())
    report = CampaignReport(
        name=name, total=len(specs), cache_hits=hits, skipped=skipped,
        journal_path=journal_path,
    )
    completed = hits
    failed_slots = 0
    retried = 0
    timings: List[Tuple[str, float]] = []

    def publish() -> None:
        if progress is not None:
            progress(parallel.BatchProgress(
                total=len(specs), completed=completed, cache_hits=hits,
                elapsed=time.perf_counter() - started,
                failed=failed_slots, retried=retried,
            ))

    publish()

    journal = CampaignJournal(journal_path) if journal_path else None
    supervisor: Optional[Supervisor] = None
    interrupted = False
    try:
        if order:
            def on_outcome(outcome: TaskOutcome) -> None:
                nonlocal completed, failed_slots, retried
                slots = pending[outcome.key]
                retried = supervisor.retries_used
                if outcome.ok:
                    for j in slots:
                        results[j] = outcome.result
                    if cache is not None:
                        cache.put(outcome.key, outcome.result)
                    if journal is not None:
                        journal.done(outcome.key, outcome.elapsed)
                    timings.append((labels[outcome.key], outcome.elapsed))
                else:
                    failure = outcome.failure
                    failure = RunFailure(
                        kind=failure.kind, key=failure.key,
                        message=failure.message, attempts=failure.attempts,
                        elapsed=failure.elapsed,
                        label=labels[outcome.key], details=failure.details,
                    )
                    report.failures.append(failure)
                    if journal is not None:
                        journal.failed(failure)
                    failed_slots += len(slots)
                completed += len(slots)
                publish()

            supervisor = Supervisor(
                _run_spec_task, jobs=jobs, timeout=timeout,
                max_retries=max_retries, backoff=backoff,
                on_outcome=on_outcome,
            )
            try:
                supervisor.run([(keys[i], specs[i]) for i in order])
            except KeyboardInterrupt:
                interrupted = True
                raise
    finally:
        if journal is not None:
            journal.close()
        elapsed = time.perf_counter() - started
        succeeded = sum(1 for r in results if r is not None)
        timings.sort(key=lambda item: item[1], reverse=True)
        report.succeeded = succeeded
        report.failed = len(specs) - succeeded
        report.simulated = len(timings)
        report.retried = supervisor.retries_used if supervisor else 0
        report.elapsed = elapsed
        report.interrupted = interrupted
        report.slowest = timings[:5]
        _campaign_reports.append(report)

    return CampaignResult(results=results, report=report)
