"""Persistent on-disk cache of simulation results.

Every experiment data point is a pure function of its inputs: the
machine configuration, the workload rotation (which itself is a pure
function of the profile set and generator seed), and the run budget.
Re-running a figure after a sweep therefore need not re-simulate
anything — the :class:`ResultCache` memoises each ``SimResult`` on disk,
keyed by a content hash over everything that determines it.

Key ingredients (all serialised canonically before hashing):

* every ``SMTConfig`` field,
* the workload fingerprint — the profile fields of every program in the
  rotation plus the generator seed — so recalibrating a workload
  invalidates its entries,
* the ``RunBudget`` fields,
* any out-of-config overrides (e.g. the D-cache MSHR count used by the
  sensitivity sweeps),
* a schema version, bumped whenever the simulator's timing behaviour
  changes.

The cache directory defaults to ``$XDG_CACHE_HOME/repro-smt`` (or
``~/.cache/repro-smt``) and is overridden by ``REPRO_CACHE_DIR``.
Caching is disabled entirely by ``REPRO_NO_CACHE=1`` or the CLI's
``--no-cache``.  Entries carry a checksum of their payload; corrupted,
truncated, or stale (version-mismatched) files are detected, dropped,
and recomputed rather than served.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Mapping, Optional

import repro
from repro.core.config import SMTConfig
from repro.envutil import env_flag
from repro.core.simulator import CacheStats, SimResult
from repro.workloads.mixes import benchmark_rotation
from repro.workloads.profiles import PROFILES

#: Bump when a change to the simulator alters results for the same
#: inputs (timing fixes, stat definitions, workload generator changes).
#: The package version is hashed into every key as well, so release
#: bumps invalidate the cache even if this is forgotten.
#: v2: SimResult gained fetch_active_frac / icache_miss_stall_events.
CACHE_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# Key derivation.
# ----------------------------------------------------------------------
def workload_fingerprint(n_threads: int, rotation: int, seed: int) -> Dict[str, Any]:
    """Everything that determines the programs of one rotation."""
    names = benchmark_rotation(n_threads, rotation)
    return {
        "seed": seed,
        "programs": [dataclasses.asdict(PROFILES[name]) for name in names],
    }


def result_key(
    config: SMTConfig,
    rotation: int,
    budget: Any,
    seed: int = 0,
    extras: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content hash identifying one ``(config, rotation, budget)`` run."""
    payload = {
        "version": CACHE_SCHEMA_VERSION,
        "package": repro.__version__,
        "config": dataclasses.asdict(config),
        "rotation": rotation,
        "budget": dataclasses.asdict(budget),
        "workload": workload_fingerprint(config.n_threads, rotation, seed),
        "extras": dict(extras or {}),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# SimResult (de)serialisation.
# ----------------------------------------------------------------------
_CACHE_FIELDS = ("icache", "dcache", "l2", "l3")


def result_to_dict(result: SimResult) -> Dict[str, Any]:
    return dataclasses.asdict(result)


def result_from_dict(data: Mapping[str, Any]) -> SimResult:
    fields = dict(data)
    for name in _CACHE_FIELDS:
        value = fields.get(name)
        if isinstance(value, dict):
            fields[name] = CacheStats(**value)
    # JSON object keys are strings; restore the per-thread int keys.
    per_thread = fields.get("committed_per_thread") or {}
    fields["committed_per_thread"] = {int(k): v for k, v in per_thread.items()}
    return SimResult(**fields)


def _checksum(result_dict: Mapping[str, Any]) -> str:
    blob = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Cache directory resolution / enablement.
# ----------------------------------------------------------------------
def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-smt")


def cache_enabled_by_default() -> bool:
    return not env_flag("REPRO_NO_CACHE")


# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of ``SimResult`` payloads, one JSON file
    per key, written atomically so concurrent workers cannot corrupt
    each other's entries."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (``<name>.json.corrupt``) so the
        slot recomputes cleanly but the evidence survives for debugging.
        The ``.corrupt`` suffix keeps it invisible to ``get``/``len``."""
        try:
            os.replace(path, path + ".corrupt")
            self.quarantined += 1
        except OSError:
            pass

    def get(self, key: str) -> Optional[SimResult]:
        """The cached result, or ``None`` on a miss.

        A corrupt or truncated entry (garbage JSON, e.g. a writer killed
        mid-write outside the atomic-rename path, a checksum mismatch,
        or a payload that no longer builds a ``SimResult``) counts as a
        miss and is quarantined — never raised.  A stale entry (schema
        version mismatch: expected churn after upgrades, not damage) is
        simply deleted.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            version = entry.get("version")
        except AttributeError:  # JSON scalar/array, not an object
            version = None
        if version != CACHE_SCHEMA_VERSION:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        try:
            result_dict = entry["result"]
            if entry.get("checksum") != _checksum(result_dict):
                raise ValueError("checksum mismatch")
            result = result_from_dict(result_dict)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        os.makedirs(self.directory, exist_ok=True)
        result_dict = result_to_dict(result)
        entry = {
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "checksum": _checksum(result_dict),
            "result": result_dict,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".json") and not name.startswith(".tmp-")
            )
        except FileNotFoundError:
            return 0

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        for name in names:
            if not (name.endswith(".json") or name.endswith(".json.corrupt")):
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "quarantined": self.quarantined}


# ----------------------------------------------------------------------
# Generic JSON-document cache (multicore driver runs).
# ----------------------------------------------------------------------
def multicore_key(spec: Any) -> str:
    """Content hash identifying one multicore driver run.

    Hashes the spec's full fingerprint — allocator spec, arrival seed
    (or trace contents), machine config, quantum, and the workload
    profile knobs — so runs that differ in any input, notably the
    allocation policy or the arrival seed, occupy distinct cache slots.
    """
    payload = {
        "version": CACHE_SCHEMA_VERSION,
        "package": repro.__version__,
        "kind": "multicore",
        "spec": spec.fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DocumentCache(ResultCache):
    """A :class:`ResultCache` whose payloads are plain JSON documents.

    Shares the directory layout, atomic writes, checksums, version
    staleness handling, and corruption quarantine with the SimResult
    store; only the payload (de)serialisation differs.  Entries are
    suffixed ``.doc.json`` so the two stores never collide.
    """

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.doc.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            self._quarantine(path)
            self.misses += 1
            return None
        version = entry.get("version") if isinstance(entry, dict) else None
        if version != CACHE_SCHEMA_VERSION:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        try:
            document = entry["document"]
            if entry.get("checksum") != _checksum(document):
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return document

    def put(self, key: str, document: Mapping[str, Any]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        document = dict(document)
        entry = {
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "checksum": _checksum(document),
            "document": document,
        }
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
