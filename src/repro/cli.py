"""Command-line interface.

Usage::

    python -m repro run --threads 8 --policy ICOUNT --num1 2 --num2 8
    python -m repro run --threads 1 --superscalar
    python -m repro run --threads 4 --metrics --metrics-json run.json --trace 48
    python -m repro run --threads 4 --check-invariants
    python -m repro experiment fig3 [--fast | --full] [--jobs N] [--no-cache]
    python -m repro experiment fig5 --export results/ --progress
    python -m repro experiment all
    python -m repro experiment fig4 --timeout 300 --max-retries 2 \
        --report campaign.json
    python -m repro experiment fig4 --resume ~/.cache/repro-smt/campaigns/fig4.jsonl
    python -m repro experiment fig3 --fast --fabric [--jobs N]
    python -m repro campaign submit runs/ --threads 8 --rotations 4 --fast
    python -m repro campaign status runs/ [--reclaim] [--json]
    python -m repro campaign drain runs/ --jobs 2 --report report.json
    python -m repro campaign cancel runs/ [--keys KEY ...]
    python -m repro serve runs/ --unix serve.sock [--port 7301]
    python -m repro campaign submit --server localhost:7301 --threads 8
    python -m repro campaign status --server serve.sock --follow
    python -m repro worker runs/ --drain [--id w0] [--chaos plan.json]
    python -m repro fuzz --seeds 25 --max-cycles 3000 [--jobs N]
    python -m repro fuzz --seeds 500 --journal fuzz.jsonl --timeout 120
    python -m repro fuzz --seeds 500 --resume fuzz.jsonl
    python -m repro fuzz --replay tests/corpus/case-0123abcd4567.json
    python -m repro run --threads 8 --fetch-policy "BANDIT:mode=ucb"
    python -m repro experiment adaptive --fast
    python -m repro perf record --quick --jobs 2
    python -m repro perf list
    python -m repro perf diff <shaA> <shaB>
    python -m repro perf check [--baseline <sha> | --window 5]
    python -m repro policies
    python -m repro multicore run --cores 2 --allocator PAIRING \
        --arrivals 8 --check-invariants
    python -m repro multicore run --cores 4 --trace jobs.jsonl --json out.json
    python -m repro experiment allocation --fast --export results/
    python -m repro fuzz --multicore --seeds 10
    python -m repro allocators
    python -m repro workload espresso --instructions 20000
    python -m repro list

Every experiment subcommand regenerates one of the paper's tables or
figures and prints it in the paper's format; ``--export DIR`` also
writes schema-versioned JSON + CSV artifacts (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, List, NamedTuple, Optional

from repro.core.config import (
    ISSUE_POLICIES,
    SMTConfig,
)
from repro.core.histograms import MetricsCollector
from repro.core.simulator import Simulator
from repro.core.telemetry import TelemetrySampler
from repro.core.trace import PipelineTracer
from repro.experiments import (
    adaptive,
    allocation,
    bottlenecks,
    export,
    figures,
    parallel,
    supervise,
    tables,
)
from repro.experiments.runner import RunBudget
from repro.workloads.mixes import standard_mix
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import generate_program


class Experiment(NamedTuple):
    """One paper artifact: a compute step and a render step.

    Keeping them separate lets ``--export`` serialise the computed data
    alongside the printed tables; ``exportable`` is False for report
    harnesses that print directly without returning tabular data.
    ``exporter`` overrides the default ``export_experiment`` writer for
    studies whose data is not ExperimentPoint-shaped (the allocation
    study exports multicore documents).
    """

    compute: Callable[[RunBudget], Any]
    render: Callable[[Any], None]
    exportable: bool = True
    exporter: Optional[Callable[[Any, str], List[str]]] = None


def _print_nothing(_data: Any) -> None:
    pass


EXPERIMENTS = {
    "fig3": Experiment(
        lambda budget: figures.figure3(budget=budget),
        figures.print_figure3,
    ),
    "fig4": Experiment(
        lambda budget: figures.figure4(budget=budget, thread_counts=(1, 4, 8)),
        figures.print_figure4,
    ),
    "fig5": Experiment(
        lambda budget: figures.figure5(budget=budget, thread_counts=(4, 8)),
        figures.print_figure5,
    ),
    "fig6": Experiment(
        lambda budget: figures.figure6(budget=budget, thread_counts=(4, 8)),
        figures.print_figure6,
    ),
    "fig7": Experiment(
        lambda budget: figures.figure7(budget=budget),
        figures.print_figure7,
    ),
    "table3": Experiment(
        lambda budget: tables.table3(budget=budget),
        tables.print_table3,
    ),
    "table4": Experiment(
        lambda budget: tables.table4(budget=budget),
        tables.print_table4,
    ),
    "table5": Experiment(
        lambda budget: tables.table5(budget=budget),
        tables.print_table5,
    ),
    "bottlenecks": Experiment(
        lambda budget: bottlenecks.print_report(budget),
        _print_nothing,
        exportable=False,
    ),
    "adaptive": Experiment(
        lambda budget: adaptive.adaptive_study(budget=budget),
        adaptive.print_adaptive_study,
    ),
    "allocation": Experiment(
        lambda budget: allocation.allocation_study(budget=budget),
        allocation.print_allocation_study,
        exporter=allocation.export_allocation_study,
    ),
}


def _fetch_policy_spec(value: str) -> str:
    """argparse type: validate a fetch-policy spec against the registry
    at parse time (bad specs exit with the registry's message, exactly
    as ``choices=`` used to)."""
    from repro.policy.registry import validate_spec

    try:
        validate_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def _alloc_spec(value: str) -> str:
    """argparse type: validate an allocator spec against the registry."""
    from repro.multicore.alloc import validate_alloc_spec

    try:
        validate_alloc_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMT processor simulator reproducing Tullsen et al., "
                    "ISCA 1996 ('Exploiting Choice').",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one machine configuration")
    run.add_argument("--threads", type=int, default=8,
                     help="hardware contexts (default 8)")
    run.add_argument("--policy", "--fetch-policy", dest="policy",
                     type=_fetch_policy_spec, default="ICOUNT",
                     metavar="SPEC",
                     help="fetch thread-choice policy: a static name "
                          "(ICOUNT, RR, ...) or an adaptive meta-policy "
                          "spec such as HYSTERESIS, BANDIT:mode=ucb or "
                          "TOURNAMENT:ICOUNT/BRCOUNT "
                          "(see 'repro policies')")
    run.add_argument("--num1", type=int, default=2,
                     help="threads fetched per cycle")
    run.add_argument("--num2", type=int, default=8,
                     help="max instructions per thread per cycle")
    run.add_argument("--issue", choices=ISSUE_POLICIES, default="OLDEST",
                     help="issue priority policy")
    run.add_argument("--bigq", action="store_true",
                     help="double queue capacity, search first 32")
    run.add_argument("--itag", action="store_true",
                     help="early I-cache tag lookup")
    run.add_argument("--superscalar", action="store_true",
                     help="conventional (non-SMT) pipeline")
    run.add_argument("--perfect-bp", action="store_true",
                     help="perfect branch prediction")
    run.add_argument("--cycles", type=int, default=15000,
                     help="measured cycles (default 15000)")
    run.add_argument("--warmup", type=int, default=2000,
                     help="timed warmup cycles (default 2000)")
    run.add_argument("--rotation", type=int, default=0,
                     help="workload rotation index (default 0)")
    run.add_argument("--seed", type=int, default=0,
                     help="config seed; feeds adaptive meta-policy "
                          "randomness (default 0)")
    run.add_argument("--metrics", action="store_true",
                     help="print timing histograms and the telemetry "
                          "time series after the run")
    run.add_argument("--metrics-json", metavar="PATH", default=None,
                     help="write a schema-versioned JSON run report "
                          "(result + histograms + telemetry)")
    run.add_argument("--trace", type=int, metavar="WINDOW", default=None,
                     help="print a text pipeview of the first WINDOW "
                          "measured cycles")
    run.add_argument("--telemetry-interval", type=int, default=200,
                     metavar="CYCLES",
                     help="telemetry sampling interval (default 200)")
    run.add_argument("--check-invariants", action="store_true",
                     help="run with the pipeline invariant sanitizer "
                          "attached (abort on the first violation)")
    run.add_argument("--profile", type=int, nargs="?", const=25,
                     default=None, metavar="N",
                     help="run the simulation under cProfile and print "
                          "the top N functions by cumulative time "
                          "(default 25)")

    exp = sub.add_parser("experiment",
                         help="regenerate a table/figure of the paper")
    exp.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    exp.add_argument("--fast", action="store_true",
                     help="small budget (quick look)")
    exp.add_argument("--full", action="store_true",
                     help="large budget (final numbers)")
    exp.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for simulation runs "
                          "(default: REPRO_JOBS or 1)")
    exp.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent result cache")
    exp.add_argument("--export", metavar="DIR", default=None,
                     help="also write <name>.json and <name>.csv "
                          "artifacts under DIR")
    exp.add_argument("--progress", action="store_true",
                     help="report batch progress (runs / cache hits / "
                          "elapsed) on stderr")
    exp.add_argument("--check-invariants", action="store_true",
                     help="attach the pipeline sanitizer to every "
                          "simulation in the batch")
    exp.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="supervised per-run wall-clock watchdog "
                          "(default: REPRO_RUN_TIMEOUT, off)")
    exp.add_argument("--max-retries", type=int, default=None, metavar="N",
                     help="retries per crashed/timed-out run "
                          "(default: REPRO_MAX_RETRIES or 1)")
    exp.add_argument("--journal", metavar="PATH", default=None,
                     help="append the campaign checkpoint journal here "
                          "(default: <cache dir>/campaigns/<name>.jsonl "
                          "when supervision is active)")
    exp.add_argument("--resume", metavar="JOURNAL", default=None,
                     help="resume a campaign: skip points the journal "
                          "records as done, re-queue its failures")
    exp.add_argument("--report", metavar="PATH", default=None,
                     help="write the schema-versioned campaign "
                          "fault-tolerance report as JSON")
    exp.add_argument("--fabric", action="store_true",
                     help="route the study's runs through the durable "
                          "campaign scheduler (journal-backed queue, "
                          "lease-holding workers, crash recovery; "
                          "see docs/fabric.md)")
    exp.add_argument("--fabric-dir", metavar="DIR", default=None,
                     help="campaign directory for --fabric (default: "
                          "<cache dir>/fabric/<batch digest>)")

    fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz the pipeline against the oracle",
    )
    fuzz.add_argument("--multicore", action="store_true",
                      help="fuzz the multicore allocation surface (core "
                           "counts x allocator specs x arrival streams) "
                           "instead of the single-core pipeline")
    fuzz.add_argument("--seeds", type=int, default=25,
                      help="number of consecutive fuzz seeds (default 25)")
    fuzz.add_argument("--start-seed", type=int, default=0,
                      help="first seed (default 0)")
    fuzz.add_argument("--max-cycles", type=int, default=3000,
                      help="cycles simulated per case (default 3000)")
    fuzz.add_argument("--check-interval", type=int, default=1,
                      help="cycles between full structural sweeps "
                           "(default 1 = every cycle)")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes (default 1)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="keep failing cases unshrunk")
    fuzz.add_argument("--corpus", metavar="DIR", default="tests/corpus",
                      help="directory for minimal reproducers "
                           "(default tests/corpus)")
    fuzz.add_argument("--report", metavar="PATH", default=None,
                      help="write the first violation as a "
                           "schema-versioned JSON report")
    fuzz.add_argument("--replay", metavar="CASE.json", default=None,
                      help="replay one corpus case instead of fuzzing")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress per-seed progress lines")
    fuzz.add_argument("--timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="per-case wall-clock watchdog (runs each "
                           "case in a crash-isolated worker)")
    fuzz.add_argument("--journal", metavar="PATH", default=None,
                      help="record executed seeds in an append-only "
                           "campaign journal")
    fuzz.add_argument("--resume", metavar="JOURNAL", default=None,
                      help="skip seeds the journal already records and "
                           "keep journaling to it")

    perf = sub.add_parser(
        "perf",
        help="per-commit performance profiles: record, diff, check",
    )
    psub = perf.add_subparsers(dest="perf_command", required=True)

    def _perf_dir(p):
        p.add_argument("--dir", metavar="DIR", default=None,
                       help="profile store directory "
                            "(default: REPRO_PERF_DIR or ./.perf)")

    rec = psub.add_parser(
        "record",
        help="run the benchmarks, store a profile keyed by git SHA")
    rec.add_argument("--quick", action="store_true",
                     help="CI smoke mode: smaller budgets and step counts")
    rec.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="workers for the pooled sweep "
                          "(default max(2, min(4, cpu_count)))")
    rec.add_argument("--steps", type=int, default=None,
                     help="timed simulator cycles per core-benchmark rep")
    rec.add_argument("--reps", type=int, default=3,
                     help="core-benchmark repetitions (min 3, median wins)")
    rec.add_argument("--sha", default=None,
                     help="store key override (default: git HEAD)")
    rec.add_argument("--bench-json", metavar="PATH", default=None,
                     help="also write the legacy BENCH_speed.json layout")
    _perf_dir(rec)

    lst = psub.add_parser("list", help="list stored profiles, oldest first")
    _perf_dir(lst)

    shw = psub.add_parser("show", help="print one profile's metrics")
    shw.add_argument("ref", nargs="?", default="latest",
                     help="git SHA, unique prefix, or 'latest'")
    shw.add_argument("--json", action="store_true",
                     help="dump the raw profile document")
    _perf_dir(shw)

    dif = psub.add_parser(
        "diff", help="per-metric deltas between two profiles (A -> B)")
    dif.add_argument("ref_a", metavar="A")
    dif.add_argument("ref_b", metavar="B")
    _perf_dir(dif)

    chk = psub.add_parser(
        "check",
        help="regression verdict for a profile (non-zero exit on "
             "significant degradation)")
    chk.add_argument("ref", nargs="?", default="latest",
                     help="profile to judge (default latest)")
    chk.add_argument("--baseline", metavar="REF", default=None,
                     help="compare against this pinned profile instead "
                          "of the trailing trend")
    chk.add_argument("--window", type=int, default=5, metavar="N",
                     help="trailing history size for the trend check "
                          "(default 5)")
    chk.add_argument("--quick", action="store_true",
                     help="double the noise tolerances (quick-mode "
                          "profiles jitter more)")
    _perf_dir(chk)

    wl = sub.add_parser("workload",
                        help="inspect a synthetic benchmark program")
    wl.add_argument("name", choices=sorted(PROFILES))
    wl.add_argument("--instructions", type=int, default=20000,
                    help="dynamic instructions to characterise")
    wl.add_argument("--listing", action="store_true",
                    help="print the first 40 lines of disassembly")

    worker = sub.add_parser(
        "worker",
        help="serve a campaign directory: claim tasks under TTL "
             "leases, execute, journal completion",
    )
    worker.add_argument("directory", metavar="JOURNAL_DIR",
                        help="campaign directory (journal + lock + "
                             "default result store)")
    worker.add_argument("--id", dest="worker_id", default=None,
                        help="worker identity in the journal "
                             "(default: host-pid-suffix)")
    worker.add_argument("--drain", action="store_true",
                        help="exit once every task is terminal instead "
                             "of polling for new submissions")
    worker.add_argument("--max-tasks", type=int, default=None, metavar="N",
                        help="exit after completing N tasks")
    worker.add_argument("--poll", type=float, default=None,
                        metavar="SECONDS",
                        help="idle poll base interval (default: "
                             "REPRO_WORKER_POLL or 0.5; idle workers "
                             "back off exponentially with jitter)")
    worker.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result store (default: "
                             "<JOURNAL_DIR>/results)")
    worker.add_argument("--chaos", metavar="PLAN.json", default=None,
                        help="arm self-inflicted faults from a chaos "
                             "plan (testing only: SIGKILL mid-lease, "
                             "dropped heartbeats)")

    camp = sub.add_parser(
        "campaign",
        help="submit to / inspect / drain a durable run campaign",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def _server_args(p):
        p.add_argument("--server", metavar="ADDR", default=None,
                       help="talk to a running 'repro serve' instead of "
                            "the filesystem: HOST:PORT or a Unix socket "
                            "path")
        p.add_argument("--token", default=None,
                       help="shared-secret auth token (default: "
                            "REPRO_SERVE_TOKEN)")

    csubmit = csub.add_parser(
        "submit", help="append a grid of runs to a campaign queue")
    csubmit.add_argument("directory", metavar="JOURNAL_DIR", nargs="?",
                         default=None)
    _server_args(csubmit)
    csubmit.add_argument("--threads", type=int, default=8,
                         help="hardware contexts per run (default 8)")
    csubmit.add_argument("--policy", type=_fetch_policy_spec,
                         default="ICOUNT", metavar="SPEC",
                         help="fetch policy for the submitted runs")
    csubmit.add_argument("--rotations", type=int, default=1, metavar="K",
                         help="submit workload rotations 0..K-1 "
                              "(default 1)")
    csubmit.add_argument("--seed", type=int, default=0,
                         help="config seed (default 0)")
    csubmit.add_argument("--fast", action="store_true",
                         help="small per-run budget")
    csubmit.add_argument("--full", action="store_true",
                         help="large per-run budget")
    csubmit.add_argument("--name", default=None,
                         help="campaign name (default: directory name)")
    csubmit.add_argument("--lease-ttl", type=float, default=60.0,
                         metavar="SECONDS",
                         help="worker lease TTL (default 60)")
    csubmit.add_argument("--max-attempts", type=int, default=3,
                         metavar="N",
                         help="executions per task before it fails for "
                              "good (default 3)")
    csubmit.add_argument("--poison-threshold", type=int, default=3,
                         metavar="K",
                         help="distinct dead workers that quarantine a "
                              "task as poison (default 3)")

    cstatus = csub.add_parser(
        "status", help="replay the journal and print campaign state")
    cstatus.add_argument("directory", metavar="JOURNAL_DIR", nargs="?",
                         default=None)
    _server_args(cstatus)
    cstatus.add_argument("--reclaim", action="store_true",
                         help="also reclaim expired leases (requeue / "
                              "quarantine / fail them) before printing")
    cstatus.add_argument("--json", action="store_true",
                         help="print the machine-readable "
                              "repro.service_status document (the same "
                              "one the service 'status' verb returns)")
    cstatus.add_argument("--follow", action="store_true",
                         help="with --server: stream state deltas until "
                              "the campaign is terminal or the server "
                              "drains")

    ccancel = csub.add_parser(
        "cancel", help="cancel pending tasks (leased and terminal tasks "
                       "are untouched)")
    ccancel.add_argument("directory", metavar="JOURNAL_DIR", nargs="?",
                         default=None)
    _server_args(ccancel)
    ccancel.add_argument("--keys", nargs="*", default=None, metavar="KEY",
                         help="cancel only these task keys "
                              "(default: every pending task)")

    cdrain = csub.add_parser(
        "drain", help="run workers until every task is terminal, then "
                      "print the campaign report")
    cdrain.add_argument("directory", metavar="JOURNAL_DIR")
    cdrain.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1, in-process)")
    cdrain.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result store (default: "
                             "<JOURNAL_DIR>/results)")
    cdrain.add_argument("--report", metavar="PATH", default=None,
                        help="write the canonical campaign report "
                             "document as JSON")

    serve = sub.add_parser(
        "serve",
        help="serve a campaign directory over TCP / a Unix socket "
             "(JSON-lines protocol; see docs/fabric.md)",
    )
    serve.add_argument("directory", metavar="JOURNAL_DIR",
                       help="campaign directory to front (created if "
                            "missing)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port (0 = ephemeral; printed at start)")
    serve.add_argument("--unix", metavar="PATH", default=None,
                       help="Unix-domain socket path")
    serve.add_argument("--token", default=None,
                       help="require this shared-secret token on every "
                            "request (default: REPRO_SERVE_TOKEN)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="concurrent submit limit before structured "
                            "'busy' rejections (default: "
                            "REPRO_SERVE_MAX_INFLIGHT or 4)")
    serve.add_argument("--follow-poll", type=float, default=0.2,
                       metavar="SECONDS",
                       help="journal re-replay interval for status "
                            "followers (default 0.2)")

    sub.add_parser(
        "policies",
        help="list registered fetch policies and the spec grammar",
    )

    mc = sub.add_parser(
        "multicore",
        help="run the N-core open-system machine",
    )
    mcsub = mc.add_subparsers(dest="multicore_command", required=True)
    mcr = mcsub.add_parser(
        "run",
        help="drive an open-system job stream through N cores",
    )
    mcr.add_argument("--cores", type=int, default=2,
                     help="number of SMT cores (default 2)")
    mcr.add_argument("--contexts", type=int, default=2,
                     help="hardware contexts per core (default 2)")
    mcr.add_argument("--allocator", type=_alloc_spec, default="LOAD",
                     metavar="SPEC",
                     help="thread-to-core allocation policy: RANDOM, "
                          "ROUND_ROBIN, LOAD, or PAIRING[:key=value,...] "
                          "(see 'repro allocators')")
    mcr.add_argument("--arrivals", type=int, default=8, metavar="N",
                     help="jobs in the seeded arrival process (default 8)")
    mcr.add_argument("--rate", type=float, default=1.0,
                     metavar="PER_KCYCLE",
                     help="mean arrival rate, jobs per 1000 cycles "
                          "(default 1.0)")
    mcr.add_argument("--service", type=int, default=400,
                     metavar="INSTRUCTIONS",
                     help="committed instructions per job (default 400)")
    mcr.add_argument("--trace", metavar="JSONL", default=None,
                     help="read arrivals from a JSONL trace instead of "
                          "the seeded distribution (one object per "
                          "line: arrival, profile, service)")
    mcr.add_argument("--quantum", type=int, default=200,
                     help="driver scheduling quantum in cycles "
                          "(default 200)")
    mcr.add_argument("--max-cycles", type=int, default=200_000,
                     help="horizon: stop even if jobs remain "
                          "(default 200000)")
    mcr.add_argument("--seed", type=int, default=0,
                     help="arrival + allocator seed (default 0)")
    mcr.add_argument("--check-invariants", action="store_true",
                     help="attach the pipeline sanitizer to every core "
                          "(driver invariants are always on)")
    mcr.add_argument("--no-cache", action="store_true",
                     help="bypass the multicore document cache")
    mcr.add_argument("--json", metavar="PATH", default=None,
                     help="write the schema-versioned multicore run "
                          "document")

    sub.add_parser(
        "allocators",
        help="list thread-to-core allocation policies",
    )

    sub.add_parser("list", help="list workloads, policies, experiments")
    return parser


def cmd_run(args) -> int:
    config = SMTConfig(
        n_threads=args.threads,
        fetch_policy=args.policy,
        fetch_threads=args.num1,
        fetch_per_thread=args.num2,
        issue_policy=args.issue,
        bigq=args.bigq,
        itag=args.itag,
        smt_pipeline=not args.superscalar,
        perfect_branch_prediction=args.perfect_bp,
        seed=args.seed,
    )
    sim = Simulator(config, standard_mix(args.threads, args.rotation))

    want_observers = args.metrics or args.metrics_json
    metrics = MetricsCollector(sim) if want_observers else None
    telemetry = (
        TelemetrySampler(sim, interval=args.telemetry_interval)
        if want_observers else None
    )
    tracer = (
        PipelineTracer(sim, max_records=4096, start_cycle=args.warmup)
        if args.trace else None
    )
    sanitizer = None
    if args.check_invariants:
        from repro.verify.sanitizer import PipelineSanitizer
        sanitizer = PipelineSanitizer(sim)

    profiler = None
    if args.profile is not None:
        import cProfile
        profiler = cProfile.Profile()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            result = sim.run(warmup_cycles=args.warmup,
                             measure_cycles=args.cycles)
        finally:
            if profiler is not None:
                profiler.disable()
    except Exception as exc:
        from repro.verify.sanitizer import InvariantViolation
        if not isinstance(exc, InvariantViolation):
            raise
        print(f"INVARIANT VIOLATION: {exc}", file=sys.stderr)
        for key, value in sorted((exc.details or {}).items()):
            print(f"  {key}: {value}", file=sys.stderr)
        return 1
    if telemetry is not None:
        telemetry.finish()

    print(f"configuration : {config.scheme_name}, {args.threads} thread(s)"
          f"{' (superscalar pipeline)' if args.superscalar else ''}")
    print(f"cycles        : {result.cycles}")
    print(f"committed     : {result.committed}")
    print(f"IPC           : {result.ipc:.3f}")
    print(f"useful fetch  : {result.useful_fetch_per_cycle:.3f} /cycle")
    print(f"fetch active  : {result.fetch_active_frac:.1%} of cycles "
          f"({result.icache_miss_stall_events} I-miss stalls)")
    print(f"wrong-path    : {result.wrong_path_fetched_frac:.1%} fetched, "
          f"{result.wrong_path_issued_frac:.1%} issued")
    print(f"branch mpred  : {result.branch_mispredict_rate:.1%} "
          f"(jumps {result.jump_mispredict_rate:.1%})")
    print(f"IQ-full       : int {result.int_iq_full_frac:.1%}, "
          f"fp {result.fp_iq_full_frac:.1%} "
          f"(avg population {result.avg_queue_population:.1f})")
    print(f"out-of-regs   : {result.out_of_registers_frac:.1%}")
    print(f"caches        : I$ {result.icache.miss_rate:.1%}  "
          f"D$ {result.dcache.miss_rate:.1%}  "
          f"L2 {result.l2.miss_rate:.1%}  L3 {result.l3.miss_rate:.1%}")
    per_thread = ", ".join(
        f"t{tid}:{count}" for tid, count in
        sorted(result.committed_per_thread.items())
    )
    print(f"per-thread    : {per_thread}")
    policy_stats = sim.policy_engine.telemetry()
    if policy_stats.get("adaptive"):
        counts = policy_stats.get("choice_counts", {})
        chosen = ", ".join(
            f"{arm}:{n}" for arm, n in counts.items() if n
        ) or "(no completed intervals)"
        print(f"meta-policy   : {policy_stats['spec']} — "
              f"{policy_stats['switch_count']} switches over "
              f"{policy_stats['intervals']} intervals of "
              f"{policy_stats['interval']} cycles; intervals per arm: "
              f"{chosen}")
    if sanitizer is not None:
        print(f"invariants    : clean ({sanitizer.cycles_checked} cycles, "
              f"{sanitizer.commits_checked} commits checked against the "
              f"oracle)")

    if tracer is not None:
        print()
        print(f"pipeline trace, cycles {args.warmup}-"
              f"{args.warmup + args.trace}:")
        print(tracer.render(args.warmup, args.warmup + args.trace))
    if args.metrics:
        print()
        print(metrics.report())
        print()
        print(f"telemetry ({args.telemetry_interval}-cycle intervals):")
        print(telemetry.report())
    if args.metrics_json:
        document = export.write_run_json(
            args.metrics_json, result, telemetry=telemetry, metrics=metrics,
            policy=policy_stats,
        )
        print(f"\nrun report    : {args.metrics_json} "
              f"(schema {document['schema']} v{document['schema_version']}, "
              f"{len(telemetry.samples)} telemetry samples)")
    if profiler is not None:
        import pstats
        print(f"\nprofile       : top {args.profile} functions by "
              f"cumulative time")
        pstats.Stats(profiler, stream=sys.stdout) \
            .sort_stats("cumulative").print_stats(args.profile)
    return 0


def cmd_experiment(args) -> int:
    if args.fast:
        budget = RunBudget(warmup_cycles=1000, measure_cycles=8000,
                           functional_warmup_instructions=30000, rotations=1)
    elif args.full:
        budget = RunBudget(warmup_cycles=4000, measure_cycles=40000,
                           functional_warmup_instructions=120000, rotations=4)
    else:
        budget = RunBudget.from_environment()
    # Pass None for unset knobs: resolving the environment-derived
    # defaults here would freeze REPRO_JOBS / REPRO_NO_CACHE for the
    # rest of the process.
    parallel.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        progress=parallel.progress_printer() if args.progress else None,
        check_invariants=True if args.check_invariants else None,
    )
    fabric_mod = None
    if args.fabric or args.fabric_dir:
        from repro.sched import fabric as fabric_mod

        fabric_mod.configure(fabric=True, fabric_dir=args.fabric_dir)
    supervising = bool(
        args.timeout is not None or args.max_retries is not None
        or args.journal or args.resume or args.report
        or supervise.supervision_enabled()
    )
    knobs = {}
    if args.timeout is not None:
        knobs["timeout"] = args.timeout
    if args.max_retries is not None:
        knobs["max_retries"] = args.max_retries
    if args.resume:
        knobs["resume_path"] = args.resume
    if supervising:
        knobs["supervise"] = True
        knobs["journal_path"] = (
            args.journal or args.resume
            or supervise.default_journal_path(args.name)
        )
    if knobs:
        supervise.configure(**knobs)
    supervise.reset_campaign_log()

    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    interrupted = False
    try:
        for name in names:
            experiment = EXPERIMENTS[name]
            data = experiment.compute(budget)
            experiment.render(data)
            if args.export:
                if experiment.exporter is not None:
                    for path in experiment.exporter(data, args.export):
                        print(f"exported: {path}")
                elif experiment.exportable:
                    for path in export.export_experiment(
                            name, data, args.export):
                        print(f"exported: {path}")
                else:
                    print(f"({name} prints a report; no tabular export)")
            print()
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted — campaign state flushed to the journal",
              file=sys.stderr)
    finally:
        if knobs:
            supervise.configure(supervise=None, timeout=None,
                                max_retries=None, journal_path=None,
                                resume_path=None)
        if fabric_mod is not None:
            fabric_mod.configure(fabric=None, fabric_dir=None)

    if not supervising:
        return 130 if interrupted else 0

    reports = supervise.campaign_reports()
    failed = sum(r.failed for r in reports)
    for report in reports:
        if report.failed or report.retried or report.skipped \
                or report.interrupted:
            print(report.describe())
    if reports:
        total = sum(r.total for r in reports)
        print(f"campaign total: {total - failed}/{total} points ok, "
              f"{sum(r.retried for r in reports)} retried, "
              f"{sum(r.skipped for r in reports)} skipped"
              + (" [INTERRUPTED]" if interrupted else ""))
        print(f"journal: {reports[-1].journal_path} "
              f"(resume with: repro experiment {args.name} "
              f"--resume {reports[-1].journal_path})")
    if args.report:
        export.write_campaign_json(args.report, reports, name=args.name)
        print(f"campaign report: {args.report}")
    if interrupted:
        return 130
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    from repro.verify import fuzz

    if args.multicore:
        log = None if args.quiet else (
            lambda message: print(message, file=sys.stderr, flush=True)
        )
        summary = fuzz.multicore_fuzz_run(
            seeds=args.seeds,
            start_seed=args.start_seed,
            max_cycles=args.max_cycles if args.max_cycles != 3000 else 6000,
            log=log,
        )
        print("multicore " + summary.describe())
        for failure in summary.failures:
            print(f"  seed {failure.seed}: {failure.outcome.describe()}")
            print(f"    case: {failure.case.to_dict()}")
        if args.report and summary.failures:
            first = summary.failures[0]
            if first.outcome.violation:
                export.write_violation_json(
                    args.report, first.outcome.violation,
                    case=first.case.to_dict(),
                    context=f"multicore fuzz seed {first.seed}",
                )
                print(f"violation report: {args.report}")
        return 0 if summary.clean else 1

    if args.replay:
        case, document = fuzz.load_corpus_case(args.replay)
        note = document.get("note") or "(no note)"
        print(f"replaying {args.replay}")
        print(f"  case : {case.to_dict()}")
        print(f"  note : {note}")
        outcome = fuzz.run_case(case)
        print(f"  -> {outcome.describe()}")
        if not outcome.ok and args.report and outcome.violation:
            export.write_violation_json(
                args.report, outcome.violation, case=case.to_dict(),
                context=f"corpus replay of {args.replay}",
            )
            print(f"  violation report: {args.report}")
        return 0 if outcome.ok else 1

    log = None if args.quiet else (
        lambda message: print(message, file=sys.stderr, flush=True)
    )
    summary = fuzz.fuzz_run(
        seeds=args.seeds,
        start_seed=args.start_seed,
        max_cycles=args.max_cycles,
        check_interval=args.check_interval,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus,
        log=log,
        timeout=args.timeout,
        journal_path=args.journal,
        resume_from=args.resume,
    )
    print(summary.describe())
    for failure in summary.failures:
        print(f"  seed {failure.seed}: {failure.outcome.describe()}")
        if failure.corpus_path:
            print(f"    reproducer: {failure.corpus_path}")
    if args.report and summary.failures:
        first = summary.failures[0]
        if first.outcome.violation:
            export.write_violation_json(
                args.report, first.outcome.violation,
                case=first.case.to_dict(),
                context=f"fuzz seed {first.seed}",
            )
            print(f"violation report: {args.report}")
    return 0 if summary.clean else 1


def cmd_worker(args) -> int:
    """Serve one campaign directory (see docs/fabric.md)."""
    from repro.experiments.cache import ResultCache
    from repro.sched.worker import Worker

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    worker = Worker(args.directory, cache=cache, worker_id=args.worker_id,
                    poll_interval=args.poll)
    if args.chaos:
        import json as _json

        from repro.verify.chaos import install_process_faults

        with open(args.chaos, "r", encoding="utf-8") as handle:
            install_process_faults(worker, _json.load(handle))
        print(f"worker {worker.worker_id}: chaos plan {args.chaos} armed",
              file=sys.stderr)
    served = worker.serve(drain=args.drain, max_tasks=args.max_tasks)
    print(f"worker {worker.worker_id}: {served} task(s) completed")
    return 0


def _print_status_counts(document) -> None:
    counts = document["counts"]
    print(f"campaign {document['name']}: "
          f"{counts['done']}/{counts['total']} done, "
          f"{counts['pending']} pending, {counts['leased']} leased, "
          f"{counts['failed']} failed, "
          f"{counts['quarantined']} quarantined")


def cmd_campaign(args) -> int:
    """The ``repro campaign`` family (see docs/fabric.md)."""
    import json as _json
    import os as _os

    from repro.experiments.cache import ResultCache
    from repro.sched import campaign as campaign_mod
    from repro.sched.state import load_state

    server = getattr(args, "server", None)
    if args.campaign_command in ("submit", "status", "cancel"):
        if server is None and args.directory is None:
            print("error: give a JOURNAL_DIR or --server ADDR",
                  file=sys.stderr)
            return 2
        if server is not None and args.directory is not None:
            print("error: JOURNAL_DIR and --server are mutually "
                  "exclusive (the server owns its directory)",
                  file=sys.stderr)
            return 2

    if args.campaign_command == "submit":
        from repro.experiments.parallel import RunSpec

        if args.fast:
            budget = RunBudget(warmup_cycles=1000, measure_cycles=8000,
                               functional_warmup_instructions=30000,
                               rotations=1)
        elif args.full:
            budget = RunBudget(warmup_cycles=4000, measure_cycles=40000,
                               functional_warmup_instructions=120000,
                               rotations=4)
        else:
            budget = RunBudget.from_environment()
        specs = [
            RunSpec(
                config=SMTConfig(n_threads=args.threads,
                                 fetch_policy=args.policy,
                                 seed=args.seed),
                rotation=rotation,
                budget=budget,
            )
            for rotation in range(max(1, args.rotations))
        ]
        name = args.name or (_os.path.basename(
            args.directory.rstrip(_os.sep)) if args.directory else None) \
            or "campaign"
        config = campaign_mod.CampaignConfig(
            name=name, lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts,
            poison_threshold=args.poison_threshold,
        )
        if server is not None:
            from repro.service.client import ServiceClient, ServiceError

            try:
                client = ServiceClient(server, token=args.token)
                ack = client.submit(specs, config)
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"submitted {ack['added']} new task(s) via {server} "
                  f"({ack['total'] - ack['added']} already queued)")
            _print_status_counts(client.status())
            return 0
        added = campaign_mod.submit_specs(args.directory, specs, config)
        print(f"submitted {added} new task(s) "
              f"({len(specs) - added} already queued)")
        print(campaign_mod.describe_status(load_state(args.directory)))
        return 0

    if args.campaign_command == "status":
        if args.follow and server is None:
            print("error: --follow needs --server (filesystem status "
                  "is a one-shot replay)", file=sys.stderr)
            return 2
        if server is not None:
            from repro.service.client import ServiceClient, ServiceError

            client = ServiceClient(server, token=args.token)
            try:
                if args.follow:
                    def _on_frame(frame) -> None:
                        if args.json:
                            print(_json.dumps(frame, sort_keys=True),
                                  flush=True)
                        elif "status" in frame:
                            _print_status_counts(frame["status"])
                        elif "counts" in frame:
                            changed = ", ".join(
                                f"{row['label'] or row['key'][:12]}:"
                                f"{row['state']}"
                                for row in frame.get("changed", []))
                            print(f"  {frame['counts']}"
                                  + (f"  ({changed})" if changed else ""),
                                  flush=True)

                    document, reason = client.follow(on_frame=_on_frame)
                    if not args.json:
                        print(f"follow ended: {reason}")
                    return 0
                document = client.status()
            except (ServiceError, ConnectionError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        else:
            state = campaign_mod.campaign_status(args.directory,
                                                 reclaim=args.reclaim)
            if not args.json:
                print(campaign_mod.describe_status(state))
                return 0
            document = campaign_mod.status_document(state)
        if args.json:
            print(_json.dumps(document, indent=2, sort_keys=True))
        else:
            _print_status_counts(document)
        return 0

    if args.campaign_command == "cancel":
        keys = args.keys if args.keys else None
        if server is not None:
            from repro.service.client import ServiceClient, ServiceError

            try:
                cancelled = ServiceClient(
                    server, token=args.token).cancel(keys)
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        else:
            cancelled = campaign_mod.cancel_tasks(args.directory, keys)
        print(f"cancelled {len(cancelled)} pending task(s)")
        for key in cancelled:
            print(f"  {key}")
        return 0

    # drain
    from repro.sched.fabric import drain_campaign

    store = ResultCache(args.cache_dir) if args.cache_dir else \
        campaign_mod.default_result_store(args.directory)
    drain_campaign(args.directory, store, jobs=args.jobs)
    state = load_state(args.directory)
    print(campaign_mod.describe_status(state))
    document = campaign_mod.campaign_report(args.directory, cache=store)
    if args.report:
        export.write_fabric_json(args.report, document["name"],
                                 document["tasks"])
        print(f"campaign report: {args.report} "
              f"(schema {document['schema']} "
              f"v{document['schema_version']})")
    counts = document["counts"]
    bad = counts.get("failed", 0) + counts.get("quarantined", 0)
    return 1 if bad else 0


def cmd_serve(args) -> int:
    """Front a campaign directory with the asyncio service
    (see docs/fabric.md, "The service front")."""
    import asyncio
    import signal as _signal

    from repro.service.server import CampaignServer

    if args.unix is None and args.port is None:
        print("error: give --unix PATH and/or --port N", file=sys.stderr)
        return 2
    server = CampaignServer(
        args.directory,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        token=args.token,
        max_inflight_submits=args.max_inflight,
        follow_poll=args.follow_poll,
    )

    async def _amain() -> None:
        await server.start()
        for endpoint in server.endpoints:
            print("serving " + args.directory + " on "
                  + ":".join(str(part) for part in endpoint), flush=True)
        if server.token is not None:
            print("auth: shared-secret token required", flush=True)
        loop = asyncio.get_running_loop()

        def _request_drain() -> None:
            asyncio.ensure_future(server.drain())

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, _request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: Ctrl-C still lands as KeyboardInterrupt
        await server.wait_drained()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    print(f"drained: {server.describe_counters()}")
    return 0


def cmd_perf(args) -> int:
    """The ``repro perf`` family (see docs/performance.md)."""
    import json as _json

    from repro.perf import diff as perf_diff
    from repro.perf import regress as perf_regress
    from repro.perf.store import ProfileStore

    store = ProfileStore(args.dir)

    def load(ref: str):
        try:
            return store.load(ref)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None

    if args.perf_command == "record":
        from repro.perf import collect

        profile = collect.collect_profile(
            quick=args.quick, jobs=args.jobs, steps=args.steps,
            reps=args.reps, sha=args.sha,
        )
        path = store.save(profile, key=args.sha)
        print(collect.summarize(profile))
        print(f"profile        : {path} "
              f"(schema {profile['schema']} "
              f"v{profile['schema_version']}, "
              f"sha {(profile.get('git_sha') or 'uncommitted')[:12]})")
        if args.bench_json:
            with open(args.bench_json, "w", encoding="utf-8") as handle:
                _json.dump(collect.legacy_report(profile), handle, indent=2)
                handle.write("\n")
            print(f"bench report   : {args.bench_json}")
        return 0

    if args.perf_command == "list":
        profiles = store.profiles()
        if not profiles:
            print(f"no profiles in {store.directory}")
            return 0
        for p in profiles:
            metrics = p.get("metrics", {})
            print(f"{(p.get('git_sha') or 'uncommitted')[:12]:>12s}  "
                  f"{p.get('recorded_at_iso', '?'):20s}  "
                  f"{'quick' if p.get('quick') else 'full ':5s}  "
                  f"core {metrics.get('core_cycles_per_sec', '?')} c/s  "
                  f"parallel {metrics.get('parallel_speedup', '?')}x")
        return 0

    if args.perf_command == "show":
        profile = load(args.ref)
        if profile is None:
            return 1
        if args.json:
            print(_json.dumps(profile, indent=2, sort_keys=True))
            return 0
        print(f"profile {(profile.get('git_sha') or 'uncommitted')[:12]} "
              f"({profile.get('recorded_at_iso', '?')}, "
              f"{'quick' if profile.get('quick') else 'full'} mode)")
        host = profile.get("host", {})
        print(f"  host: {host.get('implementation')} "
              f"{host.get('python')}, {host.get('host_cpus')} cpu(s)")
        for name, value in sorted(profile.get("metrics", {}).items()):
            print(f"  {name:28s} {value}")
        return 0

    if args.perf_command == "diff":
        before, after = load(args.ref_a), load(args.ref_b)
        if before is None or after is None:
            return 1
        scale = perf_diff.quick_tolerance_scale(before, after)
        deltas = perf_diff.diff_profiles(before, after,
                                         tolerance_scale=scale)
        print(f"{(before.get('git_sha') or '?')[:12]} -> "
              f"{(after.get('git_sha') or '?')[:12]} "
              f"(tolerance scale {scale}x)")
        print(perf_diff.format_deltas(deltas))
        regressed = [d for d in deltas
                     if d.classification == perf_diff.REGRESSED]
        return 1 if regressed else 0

    # check
    profile = load(args.ref)
    if profile is None:
        return 1
    scale = 2.0 if (args.quick or profile.get("quick")) else 1.0
    if args.baseline:
        baseline = load(args.baseline)
        if baseline is None:
            return 1
        report = perf_regress.check_against_baseline(
            profile, baseline, tolerance_scale=scale)
    else:
        history = store.history(before=profile, limit=args.window)
        report = perf_regress.check_against_history(
            profile, history, window=args.window, tolerance_scale=scale)
    print(report.describe())
    return 0 if report.ok else 1


def cmd_workload(args) -> int:
    profile = PROFILES[args.name]
    program = generate_program(profile, seed=0)
    print(f"{args.name}: {len(program)} static instructions, "
          f"working set {profile.working_set // 1024} KiB "
          f"({profile.access_pattern}), hot region "
          f"{profile.hot_region // 1024} KiB")
    if args.listing:
        for line in program.listing().splitlines()[:40]:
            print("  " + line)
        return 0

    from repro.isa.emulator import Emulator
    emulator = Emulator(program)
    counts = dict(cond=0, taken=0, mem=0, fp=0, calls=0, indirect=0)
    n = args.instructions
    for _ in range(n):
        record = emulator.step()
        instr = record.instr
        if instr.is_cond_branch:
            counts["cond"] += 1
            counts["taken"] += record.taken
        if instr.is_mem:
            counts["mem"] += 1
        if instr.is_fp:
            counts["fp"] += 1
        if instr.is_call:
            counts["calls"] += 1
        if instr.is_indirect:
            counts["indirect"] += 1
    print(f"dynamic mix over {n} instructions:")
    print(f"  conditional branches : {counts['cond'] / n:.1%} "
          f"(taken {counts['taken'] / max(counts['cond'], 1):.0%})")
    print(f"  loads+stores         : {counts['mem'] / n:.1%}")
    print(f"  FP arithmetic        : {counts['fp'] / n:.1%}")
    print(f"  calls                : {counts['calls'] / n:.2%}")
    print(f"  indirect jumps       : {counts['indirect'] / n:.2%}")
    return 0


def cmd_policies(_args) -> int:
    from repro.policy.registry import registry_entries

    entries = registry_entries()
    width = max(len(info.name) for info in entries)
    for kind, title in (("static", "static fetch policies"),
                        ("meta", "adaptive meta-policies")):
        print(f"{title}:")
        for info in entries:
            if info.kind != kind:
                continue
            print(f"  {info.name:{width}s}  {info.summary}")
            if info.params:
                options = ", ".join(sorted(info.params))
                if info.takes_arms:
                    options = "arms (ARM/ARM list), " + options
                print(f"  {'':{width}s}  options: {options}")
        print()
    print("spec grammar: NAME, NAME:key=value,...  "
          "TOURNAMENT and BANDIT accept an arm list: NAME:ARM/ARM[:opts]")
    print("examples    : ICOUNT   HYSTERESIS:interval=300,dwell=2   "
          "BANDIT:mode=ucb   TOURNAMENT:ICOUNT/BRCOUNT")
    return 0


def cmd_multicore(args) -> int:
    """The ``repro multicore`` family (see docs/multicore.md)."""
    from repro.core.config import SMTConfig as _SMTConfig
    from repro.multicore.driver import (
        ArrivalConfig,
        MulticoreRunSpec,
        load_trace,
        run_open_system,
    )

    if args.trace:
        trace, arrival = load_trace(args.trace), None
    else:
        trace = None
        arrival = ArrivalConfig(
            jobs=args.arrivals, rate_per_kcycle=args.rate,
            service_instructions=args.service, seed=args.seed,
        )
    try:
        spec = MulticoreRunSpec(
            n_cores=args.cores,
            allocator=args.allocator,
            config=_SMTConfig(n_threads=args.contexts, seed=args.seed),
            quantum=args.quantum,
            max_cycles=args.max_cycles,
            seed=args.seed,
            arrival=arrival,
            trace=trace,
            check_invariants=args.check_invariants,
        )
        result = run_open_system(
            spec, use_cache=False if args.no_cache else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    latency = result.latency()
    print(f"machine      : {result.n_cores} core(s) x "
          f"{result.contexts_per_core} context(s), allocator "
          f"{result.allocator}, quantum {result.quantum}")
    print(f"jobs         : {result.jobs_completed}/{result.jobs_total} "
          f"completed over {result.cycles} cycles"
          + (f" ({result.unfinished} unfinished at the horizon)"
             if result.unfinished else ""))
    for kind in ("queue", "service", "total"):
        p = latency[kind]
        print(f"{kind:13s}: p50 {p['p50']:.0f}  p90 {p['p90']:.0f}  "
              f"p99 {p['p99']:.0f} cycles")
    print(f"throughput   : {result.throughput_per_kcycle:.2f} jobs/kcycle")
    for core in result.cores:
        print(f"core {core.core}       : {core.utilization:.1%} busy, "
              f"{core.commits} commits, {core.jobs_served} job(s) served")
    if args.check_invariants:
        print("invariants   : clean (pipeline sanitizer on every core, "
              "driver checks every quantum)")
    if args.json:
        document = export.write_multicore_json(args.json, result, spec=spec)
        print(f"run document : {args.json} (schema {document['schema']} "
              f"v{document['schema_version']})")
    return 0


def cmd_allocators(_args) -> int:
    from repro.multicore.alloc import registry_entries

    entries = registry_entries()
    width = max(len(info.name) for info in entries)
    print("thread-to-core allocation policies:")
    for info in entries:
        print(f"  {info.name:{width}s}  {info.summary}")
        if info.params:
            print(f"  {'':{width}s}  options: "
                  f"{', '.join(sorted(info.params))}")
    print()
    print("spec grammar: NAME, NAME:key=value,...  "
          "(e.g. PAIRING:miss_weight=2.0)")
    print("used by     : repro multicore run --allocator, "
          "repro experiment allocation")
    return 0


def cmd_list(_args) -> int:
    from repro.multicore.alloc import allocator_names
    from repro.policy.registry import meta_policy_names, static_policy_names

    print("workloads   :", ", ".join(sorted(PROFILES)))
    print("fetch       :", ", ".join(static_policy_names()))
    print("meta fetch  :", ", ".join(meta_policy_names()),
          "(see 'repro policies')")
    print("issue       :", ", ".join(ISSUE_POLICIES))
    print("allocators  :", ", ".join(allocator_names()),
          "(see 'repro allocators')")
    print("experiments :", ", ".join(sorted(EXPERIMENTS)), "+ all")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "experiment": cmd_experiment,
        "fuzz": cmd_fuzz,
        "worker": cmd_worker,
        "campaign": cmd_campaign,
        "serve": cmd_serve,
        "perf": cmd_perf,
        "workload": cmd_workload,
        "policies": cmd_policies,
        "multicore": cmd_multicore,
        "allocators": cmd_allocators,
        "list": cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
