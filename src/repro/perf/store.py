"""Per-commit performance profile store.

One JSON document per git SHA, written atomically into a flat
directory (default ``.perf`` in the working directory, overridden by
``REPRO_PERF_DIR`` or an explicit ``directory=``).  Loads are
validated the same way :mod:`repro.experiments.export` validates run
documents: a profile whose ``schema`` / ``schema_version`` stamp does
not match is rejected with a clear error instead of being silently
misread.

The store is the substrate for ``repro perf list/show/diff/check``:
profiles sort by their ``recorded_at`` timestamp, so "the trailing N
profiles before this one" — the history the regression detector
reasons over — is well-defined without consulting git.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

#: Stamped into every profile; loaders reject other values.  Bump on
#: any change to the profile layout or metric meanings.
PERF_SCHEMA = "repro.perf"
PERF_SCHEMA_VERSION = 1

#: Key used when a profile was recorded outside a git checkout.
UNKEYED = "uncommitted"


def default_profile_dir() -> str:
    env = os.environ.get("REPRO_PERF_DIR")
    if env:
        return env
    return os.path.join(os.getcwd(), ".perf")


def validate_profile(document: Any) -> Dict[str, Any]:
    """Return ``document`` if it is a current-schema profile, else raise
    :class:`ValueError` naming what is wrong (mirrors
    ``export._validate``)."""
    if not isinstance(document, dict):
        raise ValueError(f"{PERF_SCHEMA} document must be a JSON object")
    if document.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"expected schema {PERF_SCHEMA!r}, got {document.get('schema')!r}"
        )
    if document.get("schema_version") != PERF_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {PERF_SCHEMA} schema version "
            f"{document.get('schema_version')!r} "
            f"(expected {PERF_SCHEMA_VERSION})"
        )
    if not isinstance(document.get("metrics"), dict):
        raise ValueError(f"{PERF_SCHEMA} document has no metrics mapping")
    return document


class ProfileStore:
    """Directory of validated performance profiles keyed by git SHA."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_profile_dir()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def keys(self) -> List[str]:
        """Every stored key (unordered; use :meth:`profiles` for the
        recorded-at ordering)."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return sorted(
            name[:-5] for name in names
            if name.endswith(".json") and not name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------
    def save(self, profile: Dict[str, Any],
             key: Optional[str] = None) -> str:
        """Validate and write ``profile``; returns the stored path.

        The key defaults to the profile's ``git_sha`` (re-recording the
        same commit overwrites its profile), or :data:`UNKEYED` outside
        a git checkout.
        """
        validate_profile(profile)
        if key is None:
            key = profile.get("git_sha") or UNKEYED
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(profile, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def load(self, ref: str) -> Dict[str, Any]:
        """The profile ``ref`` names: an exact key, a unique SHA
        prefix (>= 4 chars), or the literal ``"latest"``.

        Raises :class:`KeyError` when nothing matches and
        :class:`ValueError` for an ambiguous prefix or an invalid
        document.
        """
        if ref == "latest":
            latest = self.latest()
            if latest is None:
                raise KeyError("profile store is empty")
            return latest
        key = ref if ref in self else None
        if key is None and len(ref) >= 4:
            matches = [k for k in self.keys() if k.startswith(ref)]
            if len(matches) > 1:
                raise ValueError(
                    f"ambiguous profile ref {ref!r}: "
                    f"matches {', '.join(matches)}"
                )
            key = matches[0] if matches else None
        if key is None:
            raise KeyError(f"no profile for {ref!r} in {self.directory}")
        with open(self.path_for(key), "r", encoding="utf-8") as handle:
            return validate_profile(json.load(handle))

    # ------------------------------------------------------------------
    def profiles(self) -> List[Dict[str, Any]]:
        """Every valid profile, oldest first (by ``recorded_at``).

        Invalid or stale-schema files are skipped, not raised: one old
        artifact must not brick ``repro perf list``.
        """
        loaded = []
        for key in self.keys():
            try:
                with open(self.path_for(key), "r",
                          encoding="utf-8") as handle:
                    loaded.append(validate_profile(json.load(handle)))
            except (ValueError, OSError):
                continue
        loaded.sort(key=lambda p: (p.get("recorded_at") or 0.0,
                                   p.get("git_sha") or ""))
        return loaded

    def latest(self) -> Optional[Dict[str, Any]]:
        ordered = self.profiles()
        return ordered[-1] if ordered else None

    def history(
        self,
        before: Optional[Dict[str, Any]] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Profiles recorded strictly before ``before`` (default: all),
        oldest first, optionally truncated to the trailing ``limit``.

        This is the trend window ``repro perf check`` reasons over.
        """
        ordered = self.profiles()
        if before is not None:
            cutoff = before.get("recorded_at") or 0.0
            key = before.get("git_sha")
            ordered = [
                p for p in ordered
                if (p.get("recorded_at") or 0.0) < cutoff
                and p.get("git_sha") != key
            ]
        if limit is not None and limit >= 0:
            ordered = ordered[len(ordered) - min(limit, len(ordered)):]
        return ordered
