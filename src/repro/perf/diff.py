"""Noise-aware comparison of two performance profiles.

Benchmark numbers off a busy host jitter; a 3% wobble in
``figure3_serial_s`` is weather, not a regression.  Every metric the
profile tracks therefore carries a :class:`MetricSpec` — which
direction is better and how much relative movement is within expected
noise — and :func:`diff_profiles` classifies each delta as
``improved`` / ``regressed`` / ``unchanged`` against that tolerance
(scaled up for ``--quick`` profiles, which use smaller budgets and are
noisier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

HIGHER = "higher"
LOWER = "lower"

IMPROVED = "improved"
REGRESSED = "regressed"
UNCHANGED = "unchanged"
ADDED = "added"
REMOVED = "removed"


@dataclass(frozen=True)
class MetricSpec:
    """How to judge one profile metric."""

    name: str
    direction: str        # HIGHER or LOWER is better
    rel_tolerance: float  # relative movement considered noise
    summary: str = ""


#: The tracked metrics.  Wall-clock metrics get wider tolerances than
#: rate metrics (they absorb scheduler noise directly); the warm-cache
#: replay is near-instant, so its relative jitter is large.
METRIC_SPECS = (
    MetricSpec("core_cycles_per_sec", HIGHER, 0.10,
               "fast-step inner-loop speed"),
    MetricSpec("reference_cycles_per_sec", HIGHER, 0.10,
               "reference step() loop speed"),
    MetricSpec("fast_vs_reference_speedup", HIGHER, 0.10,
               "fast loop speedup over reference (A/B, host-noise immune)"),
    MetricSpec("figure3_serial_s", LOWER, 0.15,
               "serial cold-cache Figure 3 sweep wall-clock"),
    MetricSpec("figure3_jobs_s", LOWER, 0.15,
               "pooled cold-cache Figure 3 sweep wall-clock"),
    MetricSpec("figure3_warm_cache_s", LOWER, 0.50,
               "cache-replay Figure 3 sweep wall-clock"),
    MetricSpec("parallel_speedup", HIGHER, 0.10,
               "pooled sweep speedup over serial"),
    MetricSpec("warm_cache_speedup", HIGHER, 0.50,
               "cache replay speedup over serial"),
    MetricSpec("warm_cache_hit_rate", HIGHER, 0.05,
               "result-cache hit rate of the replay sweep"),
)

SPECS_BY_NAME = {spec.name: spec for spec in METRIC_SPECS}


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two profiles."""

    metric: str
    direction: str
    rel_tolerance: float
    before: Optional[float]
    after: Optional[float]
    #: Signed relative change, ``(after - before) / |before|``.
    rel_change: Optional[float]
    classification: str

    @property
    def significant(self) -> bool:
        return self.classification in (IMPROVED, REGRESSED)

    def describe(self) -> str:
        if self.classification in (ADDED, REMOVED):
            return (f"{self.metric}: {self.classification} "
                    f"({self.before} -> {self.after})")
        arrow = {IMPROVED: "+", REGRESSED: "!", UNCHANGED: "="}
        pct = f"{self.rel_change:+.1%}" if self.rel_change is not None \
            else "n/a"
        return (f"[{arrow[self.classification]}] {self.metric}: "
                f"{self.before} -> {self.after} ({pct}, "
                f"tol {self.rel_tolerance:.0%}, "
                f"{self.direction} is better) {self.classification}")


def profile_metrics(profile: Mapping[str, Any]) -> Dict[str, float]:
    """The profile's numeric metrics (non-numeric entries dropped)."""
    out = {}
    for name, value in (profile.get("metrics") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[name] = float(value)
    return out


def classify(
    spec: MetricSpec,
    before: Optional[float],
    after: Optional[float],
    tolerance_scale: float = 1.0,
) -> MetricDelta:
    """Judge one metric's movement under the spec's tolerance."""
    if before is None or after is None:
        kind = ADDED if before is None else REMOVED
        return MetricDelta(spec.name, spec.direction, spec.rel_tolerance,
                           before, after, None, kind)
    if before == 0:
        rel = 0.0 if after == 0 else float("inf") * (1 if after > 0 else -1)
    else:
        rel = (after - before) / abs(before)
    tolerance = spec.rel_tolerance * tolerance_scale
    better = rel if spec.direction == HIGHER else -rel
    if better > tolerance:
        kind = IMPROVED
    elif better < -tolerance:
        kind = REGRESSED
    else:
        kind = UNCHANGED
    return MetricDelta(spec.name, spec.direction, spec.rel_tolerance,
                       before, after, rel, kind)


def diff_profiles(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    tolerance_scale: float = 1.0,
) -> List[MetricDelta]:
    """Per-metric deltas between two profiles, in spec order.

    Metrics unknown to :data:`METRIC_SPECS` are judged
    higher-is-better with a 10% tolerance, so forward-compatible
    profiles still diff sensibly.
    """
    a = profile_metrics(before)
    b = profile_metrics(after)
    deltas = []
    names = [spec.name for spec in METRIC_SPECS]
    names += sorted((set(a) | set(b)) - set(names))
    for name in names:
        if name not in a and name not in b:
            continue
        spec = SPECS_BY_NAME.get(name, MetricSpec(name, HIGHER, 0.10))
        deltas.append(
            classify(spec, a.get(name), b.get(name), tolerance_scale)
        )
    return deltas


def quick_tolerance_scale(*profiles: Mapping[str, Any]) -> float:
    """2x tolerances when any side was recorded in ``--quick`` mode."""
    return 2.0 if any(p.get("quick") for p in profiles) else 1.0


def format_deltas(deltas: List[MetricDelta]) -> str:
    return "\n".join(delta.describe() for delta in deltas)
