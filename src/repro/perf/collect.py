"""Benchmark collection: one schema-versioned performance profile.

This is the library behind ``repro perf record`` and the
``scripts/bench_speed.py`` shim.  It runs the two benchmark suites —
the fast-vs-reference core loop and the Figure 3 sweep
(serial / pooled / warm-cache) — and assembles the results into a
**performance profile**: a single JSON document keyed by the git SHA it
was measured at, validated by :mod:`repro.perf.store` on every load.

Measurement methodology (unchanged from the former monolithic script):

1. ``core_cycles_per_sec`` — timed ``run_cycles`` of an ICOUNT.2.8
   machine at 8 threads.  A warmup pass precedes timing and the figure
   is the **median of >=3 repetitions**, interleaved A/B with the
   reference ``step()`` path so host noise hits both alike.
2. ``figure3_serial_s`` / ``figure3_jobs_s`` — wall time for the fast
   Figure 3 sweep run serially vs on the persistent worker pool
   (``jobs``, default ``max(2, min(4, cpu_count))`` so the pooled path
   is always exercised), both with a cold result cache.  The serial
   sweep populates the process warm-image store, so the pooled sweep
   (forked afterwards) inherits every warm state copy-on-write.
3. ``figure3_warm_cache_s`` — the same sweep replayed from the result
   cache, with the observed ``warm_cache_hit_rate``.

Each sweep gets a **throwaway cache directory handed to the engine as
an explicit** :class:`~repro.experiments.cache.ResultCache` (via
``parallel.configure(cache=...)``, restored in a ``finally``) — the
benchmark no longer mutates ``REPRO_CACHE_DIR``, so nothing run
afterwards in-process can accidentally inherit a deleted temp dir.
"""

from __future__ import annotations

import multiprocessing
import os
import platform
import shutil
import statistics
import subprocess
import tempfile
import time
from typing import Any, Dict, Optional

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.experiments import figures, parallel
from repro.experiments.cache import ResultCache
from repro.experiments.runner import RunBudget
from repro.perf.store import PERF_SCHEMA, PERF_SCHEMA_VERSION
from repro.workloads import images
from repro.workloads.mixes import standard_mix

FAST_BUDGET = RunBudget(warmup_cycles=1000, measure_cycles=8000,
                        functional_warmup_instructions=30000, rotations=1)
QUICK_BUDGET = RunBudget(warmup_cycles=500, measure_cycles=3000,
                         functional_warmup_instructions=15000, rotations=1)

DEFAULT_STEPS = 12000
QUICK_STEPS = 4000


def default_bench_jobs() -> int:
    """Workers for the pooled sweep: ``max(2, min(4, cpu_count))`` —
    at least 2 so the pooled path is always exercised, at most 4 so the
    benchmark stays comparable across large hosts."""
    return max(2, min(4, multiprocessing.cpu_count()))


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """HEAD of the repository at ``cwd`` (default: the working
    directory), or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=cwd or os.getcwd(),
        )
    except OSError:
        return None
    return proc.stdout.strip() if proc.returncode == 0 else None


def host_metadata() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "host_cpus": multiprocessing.cpu_count(),
        "platform": platform.platform(),
    }


def bench_core(steps: int, reps: int, warm_instructions: int) -> dict:
    """Median cycles/second of the simulator inner loop, fast vs reference.

    One long-lived simulator per path; repetitions are interleaved
    fast/reference so drift in host load lands on both paths equally.
    """
    config = scheme("ICOUNT", 2, 8, n_threads=8)

    def make(fast: bool) -> Simulator:
        sim = Simulator(config, standard_mix(8, 0))
        sim.use_fast_step = fast
        sim.functional_warmup(warm_instructions)
        sim.run_cycles(500)  # warmup pass: settle the pipeline, warm dicts
        return sim

    sims = {"fast": make(True), "reference": make(False)}
    times = {"fast": [], "reference": []}
    for _ in range(max(3, reps)):
        for label, sim in sims.items():
            t0 = time.perf_counter()
            sim.run_cycles(steps)
            times[label].append(time.perf_counter() - t0)

    fast_med = statistics.median(times["fast"])
    ref_med = statistics.median(times["reference"])
    return {
        "steps": steps,
        "reps": max(3, reps),
        "fast_rep_seconds": [round(t, 3) for t in times["fast"]],
        "reference_rep_seconds": [round(t, 3) for t in times["reference"]],
        "core_cycles_per_sec": round(steps / fast_med, 1),
        "reference_cycles_per_sec": round(steps / ref_med, 1),
        "fast_vs_reference_speedup": round(ref_med / fast_med, 2),
    }


def bench_figure3(jobs: int, budget: RunBudget) -> dict:
    """Figure 3 sweep: serial cold, parallel cold, then warm cache.

    Each sweep writes into an explicit throwaway :class:`ResultCache`
    installed via ``parallel.configure(cache=...)`` — the process
    environment (``REPRO_CACHE_DIR`` included) is never touched, and
    the previously configured cache is restored on every exit path.
    """
    times = {}

    def sweep(label, run_jobs, cache):
        parallel.configure(cache=cache)
        t0 = time.perf_counter()
        figures.figure3(budget=budget, jobs=run_jobs, use_cache=True)
        times[label] = round(time.perf_counter() - t0, 3)

    serial_dir = tempfile.mkdtemp(prefix="bench-cache-")
    pooled_dir = tempfile.mkdtemp(prefix="bench-cache-")
    serial_cache = ResultCache(serial_dir)
    pooled_cache = ResultCache(pooled_dir)
    prior_cache = parallel.default_cache()
    images.clear()
    try:
        sweep("figure3_serial_s", 1, serial_cache)
        # Fork the persistent pool outside the timed region: campaigns
        # reuse one long-lived pool, so steady-state is what matters.
        parallel._persistent_pool(jobs)
        sweep("figure3_jobs_s", jobs, pooled_cache)
        hits_before = pooled_cache.hits
        misses_before = pooled_cache.misses
        sweep("figure3_warm_cache_s", 1, pooled_cache)
        warm_hits = pooled_cache.hits - hits_before
        warm_lookups = warm_hits + (pooled_cache.misses - misses_before)
        entries = len(pooled_cache)
    finally:
        parallel.configure(cache=prior_cache)
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(pooled_dir, ignore_errors=True)

    serial, pooled = times["figure3_serial_s"], times["figure3_jobs_s"]
    times.update(
        jobs=jobs,
        cache_entries=entries,
        warm_image_entries=images.size(),
        warm_cache_hit_rate=(
            round(warm_hits / warm_lookups, 4) if warm_lookups else None
        ),
        parallel_speedup=round(serial / pooled, 2) if pooled else None,
        warm_cache_speedup=(
            round(serial / times["figure3_warm_cache_s"], 2)
            if times["figure3_warm_cache_s"] else None
        ),
    )
    return times


#: Flat metric names lifted from the raw benchmark blocks into the
#: profile's ``metrics`` mapping (the keys diff/check operate on).
_CORE_METRICS = (
    "core_cycles_per_sec",
    "reference_cycles_per_sec",
    "fast_vs_reference_speedup",
)
_FIGURE3_METRICS = (
    "figure3_serial_s",
    "figure3_jobs_s",
    "figure3_warm_cache_s",
    "parallel_speedup",
    "warm_cache_speedup",
    "warm_cache_hit_rate",
)


def collect_profile(
    quick: bool = False,
    jobs: Optional[int] = None,
    steps: Optional[int] = None,
    reps: int = 3,
    sha: Optional[str] = None,
) -> Dict[str, Any]:
    """Run both benchmark suites and return one performance profile.

    ``sha`` overrides the git SHA the profile is keyed by (default:
    the working directory's HEAD, or ``None`` outside git).
    """
    budget = QUICK_BUDGET if quick else FAST_BUDGET
    if jobs is None:
        jobs = default_bench_jobs()
    if steps is None:
        steps = QUICK_STEPS if quick else DEFAULT_STEPS

    core = bench_core(steps, reps, budget.functional_warmup_instructions)
    figure3 = bench_figure3(jobs, budget)

    metrics: Dict[str, Any] = {}
    for name in _CORE_METRICS:
        metrics[name] = core[name]
    for name in _FIGURE3_METRICS:
        metrics[name] = figure3[name]

    now = time.time()
    return {
        "schema": PERF_SCHEMA,
        "schema_version": PERF_SCHEMA_VERSION,
        "git_sha": sha if sha is not None else git_sha(),
        "recorded_at": now,
        "recorded_at_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
        ),
        "quick": quick,
        "host": host_metadata(),
        "metrics": metrics,
        "raw": {"core": core, "figure3": figure3},
    }


def legacy_report(profile: Dict[str, Any]) -> Dict[str, Any]:
    """The profile reshaped as the historical ``BENCH_speed.json``
    layout (metadata / quick / core / figure3), kept so dashboards and
    the CI artifact stay comparable across the refactor."""
    metadata = dict(profile["host"])
    metadata = {"git_sha": profile.get("git_sha"), **metadata}
    return {
        "metadata": metadata,
        "quick": profile.get("quick", False),
        "core": profile["raw"]["core"],
        "figure3": profile["raw"]["figure3"],
    }


def summarize(profile: Dict[str, Any]) -> str:
    """The two human-readable benchmark lines record/bench print."""
    core = profile["raw"]["core"]
    fig = profile["raw"]["figure3"]
    lines = [
        f"core loop      : {core['core_cycles_per_sec']:.0f} cycles/sec "
        f"median of {core['reps']}x{core['steps']} steps "
        f"(reference {core['reference_cycles_per_sec']:.0f}, "
        f"{core['fast_vs_reference_speedup']}x)",
        f"figure 3 sweep : serial {fig['figure3_serial_s']}s, "
        f"--jobs {fig['jobs']} {fig['figure3_jobs_s']}s "
        f"({fig['parallel_speedup']}x), "
        f"warm cache {fig['figure3_warm_cache_s']}s "
        f"({fig['warm_cache_speedup']}x, "
        f"hit rate {fig['warm_cache_hit_rate']})",
    ]
    return "\n".join(lines)
