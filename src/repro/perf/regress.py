"""Regression verdicts over performance profiles.

Three detectors compose into one :class:`RegressionReport` (the exit
status of ``repro perf check``):

* **Baseline compare** — pairwise noise-aware diff against one pinned
  profile (``--baseline SHA``); any metric classified ``regressed``
  fails.
* **Trend check** — against the trailing-N history: a metric fails the
  *median test* when the current value is worse than the history
  median by more than its tolerance (a step regression against a noisy
  background), and the *slope test* when a least-squares fit over the
  normalised series (history + current, >= 4 points) degrades faster
  than :data:`SLOPE_THRESHOLD` per sample (a slow leak no single
  pairwise diff would flag).
* **Floors** — absolute invariants that hold regardless of history,
  e.g. the pooled Figure 3 sweep must never be slower than serial
  (``parallel_speedup >= 1``), the gate the old ``bench_speed.py``
  enforced.  Floors make ``repro perf check`` meaningful even on a
  fresh checkout with no stored history (the CI case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.perf.diff import (
    HIGHER,
    REGRESSED,
    SPECS_BY_NAME,
    MetricSpec,
    diff_profiles,
    profile_metrics,
)

#: Absolute floors: metric -> minimum acceptable value.
FLOORS: Dict[str, float] = {
    "parallel_speedup": 1.0,
}

#: Normalised degradation per sample beyond which the slope test fails.
SLOPE_THRESHOLD = 0.03
#: Minimum points (history + current) for the slope test to engage.
SLOPE_MIN_POINTS = 4


@dataclass(frozen=True)
class MetricVerdict:
    """One detector's judgement of one metric."""

    metric: str
    kind: str  # "baseline" | "median" | "slope" | "floor"
    ok: bool
    value: Optional[float]
    reference: Optional[float]
    detail: str

    def describe(self) -> str:
        status = "ok" if self.ok else "REGRESSION"
        return f"[{status}] {self.metric} ({self.kind}): {self.detail}"


@dataclass
class RegressionReport:
    """Every verdict for one checked profile."""

    sha: Optional[str]
    mode: str  # "baseline" | "trend"
    verdicts: List[MetricVerdict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def failures(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def describe(self) -> str:
        sha = (self.sha or "?")[:12]
        lines = [f"perf check ({self.mode}) for {sha}:"]
        lines += [f"  {note}" for note in self.notes]
        lines += [f"  {v.describe()}" for v in self.verdicts]
        verdict = "OK" if self.ok else \
            f"FAIL ({len(self.failures)} regression(s))"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def _slope(values: Sequence[float]) -> float:
    """Least-squares slope of ``values`` over x = 0..n-1."""
    n = len(values)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    num = sum((i - mean_x) * (y - mean_y) for i, y in enumerate(values))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


def floor_verdicts(current: Mapping[str, Any]) -> List[MetricVerdict]:
    metrics = profile_metrics(current)
    verdicts = []
    for name, minimum in FLOORS.items():
        value = metrics.get(name)
        if value is None:
            continue
        ok = value >= minimum
        verdicts.append(MetricVerdict(
            name, "floor", ok, value, minimum,
            f"{value} {'>=' if ok else '<'} floor {minimum}",
        ))
    return verdicts


def check_against_baseline(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance_scale: float = 1.0,
) -> RegressionReport:
    """Pairwise noise-aware compare against one pinned profile."""
    report = RegressionReport(current.get("git_sha"), "baseline")
    base_sha = (baseline.get("git_sha") or "?")[:12]
    report.notes.append(f"baseline: {base_sha} "
                        f"(tolerance scale {tolerance_scale}x)")
    for delta in diff_profiles(baseline, current, tolerance_scale):
        if delta.before is None or delta.after is None:
            continue
        ok = delta.classification != REGRESSED
        pct = f"{delta.rel_change:+.1%}" if delta.rel_change is not None \
            else "n/a"
        report.verdicts.append(MetricVerdict(
            delta.metric, "baseline", ok, delta.after, delta.before,
            f"{delta.before} -> {delta.after} ({pct}) "
            f"{delta.classification}",
        ))
    report.verdicts.extend(floor_verdicts(current))
    return report


def check_against_history(
    current: Mapping[str, Any],
    history: Sequence[Mapping[str, Any]],
    window: int = 5,
    tolerance_scale: float = 1.0,
) -> RegressionReport:
    """Median + slope trend check over the trailing ``window`` profiles.

    With no usable history, only the absolute floors apply (and the
    report says so) — a fresh checkout is never an automatic failure.
    """
    report = RegressionReport(current.get("git_sha"), "trend")
    trailing = list(history)[-window:] if window else list(history)
    if not trailing:
        report.notes.append("no history: floor checks only")
        report.verdicts.extend(floor_verdicts(current))
        return report
    report.notes.append(
        f"history: {len(trailing)} profile(s), "
        f"tolerance scale {tolerance_scale}x"
    )

    metrics = profile_metrics(current)
    for name, value in metrics.items():
        spec = SPECS_BY_NAME.get(name, MetricSpec(name, HIGHER, 0.10))
        series = [
            profile_metrics(p)[name] for p in trailing
            if name in profile_metrics(p)
        ]
        if not series:
            continue
        ref = median(series)
        tolerance = spec.rel_tolerance * tolerance_scale
        if ref == 0:
            worse_than_median = False
            rel = 0.0
        else:
            rel = (value - ref) / abs(ref)
            better = rel if spec.direction == HIGHER else -rel
            worse_than_median = better < -tolerance
        report.verdicts.append(MetricVerdict(
            name, "median", not worse_than_median, value, ref,
            f"{value} vs median {round(ref, 4)} of {len(series)} "
            f"({rel:+.1%}, tol {tolerance:.0%})",
        ))

        full = series + [value]
        if len(full) >= SLOPE_MIN_POINTS and ref != 0:
            slope = _slope([v / abs(ref) for v in full])
            degrade = -slope if spec.direction == HIGHER else slope
            ok = degrade <= SLOPE_THRESHOLD
            report.verdicts.append(MetricVerdict(
                name, "slope", ok, value, ref,
                f"normalised slope {slope:+.3f}/sample over "
                f"{len(full)} points (threshold "
                f"{'-' if spec.direction == HIGHER else '+'}"
                f"{SLOPE_THRESHOLD})",
            ))

    report.verdicts.extend(floor_verdicts(current))
    return report
