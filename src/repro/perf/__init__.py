"""Per-commit performance tracking (the ``repro perf`` subsystem).

Turns the ad-hoc ``BENCH_speed.json`` snapshot into a trajectory: every
commit can record a schema-versioned **performance profile** (core
cycles/sec, Figure 3 wall-clocks, parallel / warm-cache speedups, cache
hit rate, host metadata) keyed by its git SHA, and regressions are
detected against a pinned baseline or the trailing trend — with
noise-aware tolerances, so host jitter is not a build failure but a
real slowdown is.

Modules:

* :mod:`repro.perf.collect` — run the benchmark suites, assemble one
  profile document (the library behind ``scripts/bench_speed.py``).
* :mod:`repro.perf.store` — the validated per-SHA profile store.
* :mod:`repro.perf.diff` — noise-aware per-metric deltas.
* :mod:`repro.perf.regress` — baseline / trend / floor verdicts.
"""

from repro.perf.diff import (  # noqa: F401
    METRIC_SPECS,
    MetricDelta,
    diff_profiles,
    format_deltas,
    quick_tolerance_scale,
)
from repro.perf.regress import (  # noqa: F401
    FLOORS,
    RegressionReport,
    check_against_baseline,
    check_against_history,
)
from repro.perf.store import (  # noqa: F401
    PERF_SCHEMA,
    PERF_SCHEMA_VERSION,
    ProfileStore,
    default_profile_dir,
    validate_profile,
)

#: Benchmark collection (``repro.perf.collect``) is imported lazily by
#: callers that need it — it drags in the whole experiment engine,
#: which ``perf list``/``show``/``diff``/``check`` never touch.
