"""Uniform parsing of ``REPRO_*`` environment knobs.

Boolean knobs grew up independently and disagreed on semantics:
``REPRO_NO_FAST_STEP`` and ``REPRO_NO_WARM_IMAGES`` treated ``""`` and
``"0"`` as unset, while ``REPRO_NO_CACHE`` and
``REPRO_CHECK_INVARIANTS`` used bare truthiness of the string — so
``REPRO_NO_CACHE=0`` *disabled* the cache and
``REPRO_CHECK_INVARIANTS=0`` *enabled* invariant checking.  Every
boolean knob now routes through :func:`env_flag`, which gives them all
one rule:

* unset, ``""``, ``"0"``, ``"false"``, ``"no"``, ``"off"`` (any case)
  → the flag's default (off, for every current knob);
* anything else (``"1"``, ``"true"``, ``"yes"``, ...) → on.

The boolean knobs: ``REPRO_NO_CACHE``, ``REPRO_CHECK_INVARIANTS``,
``REPRO_NO_FAST_STEP``, ``REPRO_NO_WARM_IMAGES``, ``REPRO_FAST``,
``REPRO_FULL``, ``REPRO_JOURNAL_FSYNC`` (fsync every campaign-journal
append — durability across power loss at a per-record syscall cost),
``REPRO_FABRIC`` (route ``execute_runs`` batches through the campaign
scheduler).  (``REPRO_CACHE_DIR``, ``REPRO_JOBS``,
``REPRO_RUN_TIMEOUT``, ``REPRO_MAX_RETRIES``, ``REPRO_SERVE_TOKEN``,
``REPRO_SERVE_MAX_INFLIGHT``, ``REPRO_WORKER_POLL`` carry values, not
truth.)

:func:`env_int` and :func:`env_float` cover the numeric knobs: an
unparsable value warns — naming the variable, the bad value, and the
fallback — instead of being silently ignored.  :func:`env_str` covers
string knobs (the service auth token), treating whitespace-only values
as unset.
"""

from __future__ import annotations

import os
import warnings
from typing import Mapping, Optional

#: Values equivalent to "this flag is unset" (case-insensitive,
#: surrounding whitespace ignored).
FALSE_TOKENS = frozenset({"", "0", "false", "no", "off"})

#: Every boolean ``REPRO_*`` knob, for documentation and truth-table
#: tests.  Add new flags here so the uniform-semantics test covers them.
BOOLEAN_KNOBS = (
    "REPRO_NO_CACHE",
    "REPRO_CHECK_INVARIANTS",
    "REPRO_NO_FAST_STEP",
    "REPRO_NO_WARM_IMAGES",
    "REPRO_FAST",
    "REPRO_FULL",
    "REPRO_JOURNAL_FSYNC",
    "REPRO_FABRIC",
)


def env_flag(
    name: str,
    default: bool = False,
    environ: Optional[Mapping[str, str]] = None,
) -> bool:
    """The boolean value of environment flag ``name``.

    A missing variable or a :data:`FALSE_TOKENS` value returns
    ``default``; any other value means the flag is set.
    """
    source = os.environ if environ is None else environ
    raw = source.get(name)
    if raw is None or raw.strip().lower() in FALSE_TOKENS:
        return default
    return True


def env_int(
    name: str,
    fallback: int,
    minimum: Optional[int] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> int:
    """The integer value of environment variable ``name``.

    Unset or empty returns ``fallback``.  An unparsable value emits a
    :class:`RuntimeWarning` naming the variable, the offending value,
    and the fallback, then returns the fallback — a typo'd
    ``REPRO_JOBS=fourr`` must not silently serialise a campaign.
    ``minimum`` clamps the parsed value.
    """
    source = os.environ if environ is None else environ
    raw = source.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (not an integer); "
            f"using {fallback}",
            RuntimeWarning,
            stacklevel=2,
        )
        return fallback
    if minimum is not None:
        value = max(minimum, value)
    return value


def env_float(
    name: str,
    fallback: float,
    minimum: Optional[float] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> float:
    """The float value of environment variable ``name``.

    Same contract as :func:`env_int`: unset/empty returns the
    fallback, garbage warns and returns the fallback, ``minimum``
    clamps.  Used by ``REPRO_WORKER_POLL`` (worker idle-poll base
    interval, seconds).
    """
    source = os.environ if environ is None else environ
    raw = source.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (not a number); "
            f"using {fallback}",
            RuntimeWarning,
            stacklevel=2,
        )
        return fallback
    if minimum is not None:
        value = max(minimum, value)
    return value


def env_str(
    name: str,
    fallback: Optional[str] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """The stripped string value of ``name``; whitespace-only is unset.

    Used by ``REPRO_SERVE_TOKEN`` (the campaign service's shared-secret
    auth token) — an accidental ``REPRO_SERVE_TOKEN=" "`` must not
    silently require a one-space password.
    """
    source = os.environ if environ is None else environ
    raw = source.get(name)
    if raw is None or not raw.strip():
        return fallback
    return raw.strip()
