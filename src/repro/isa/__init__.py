"""Instruction-set substrate for the SMT reproduction.

This package defines a small load/store RISC instruction set (standing in
for the Alpha ISA used by the paper), a two-pass assembler, a program image
container, and a functional emulator.  The emulator provides the
"oracle" stream of correct-path dynamic instructions that the timing core
consumes; wrong-path fetch reads static instructions straight from the
program image.
"""

from repro.isa.instructions import (
    Instruction,
    InstrClass,
    Opcode,
    RegFile,
    latency_for,
    INSTRUCTION_LATENCIES,
)
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.program import DataSegment, Program, TEXT_BASE, DATA_BASE
from repro.isa.emulator import Emulator, OracleRecord

__all__ = [
    "Instruction",
    "InstrClass",
    "Opcode",
    "RegFile",
    "latency_for",
    "INSTRUCTION_LATENCIES",
    "AssemblyError",
    "assemble",
    "DataSegment",
    "Program",
    "TEXT_BASE",
    "DATA_BASE",
    "Emulator",
    "OracleRecord",
]
