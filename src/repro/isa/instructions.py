"""Instruction definitions for the reproduction ISA.

The ISA is a conventional 64-bit load/store RISC, deliberately close in
spirit to the Alpha ISA the paper simulates: 32 integer registers, 32
floating-point registers, 4-byte instructions, and the instruction-class
latencies of Table 1 of the paper.

Only the pieces of the ISA that matter to a timing model are represented:
each static instruction knows its opcode, operand registers (and which
register file each lives in), immediate, and branch target.  The functional
emulator in :mod:`repro.isa.emulator` gives these instructions their
semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class RegFile(enum.IntEnum):
    """Which physical register file an operand register lives in."""

    INT = 0
    FP = 1


class InstrClass(enum.IntEnum):
    """Instruction classes; these determine latency (paper Table 1) and
    which instruction queue / functional unit an instruction uses."""

    INT_ALU = 0        # all other integer: latency 1
    INT_MUL = 1        # integer multiply: latency 8
    INT_MULQ = 2       # wide integer multiply: latency 16
    INT_CMP = 3        # compare: latency 0
    INT_CMOV = 4       # conditional move: latency 2
    FP_ALU = 5         # all other FP: latency 4
    FP_DIV = 6         # FP divide (single): latency 17
    FP_DIVD = 7        # FP divide (double): latency 30
    LOAD = 8           # load (cache hit): latency 1
    STORE = 9
    BRANCH = 10        # conditional branch
    JUMP = 11          # unconditional direct jump / call
    JUMP_IND = 12      # indirect jump / return
    NOP = 13
    HALT = 14


#: Instruction latencies in cycles, from Table 1 of the paper.  Latency is
#: the producer-to-consumer distance: a latency-1 producer issued at cycle
#: ``t`` can feed a consumer issued at ``t + 1``; a latency-0 compare can
#: feed a consumer issued in the same cycle.
INSTRUCTION_LATENCIES = {
    InstrClass.INT_ALU: 1,
    InstrClass.INT_MUL: 8,
    InstrClass.INT_MULQ: 16,
    InstrClass.INT_CMP: 0,
    InstrClass.INT_CMOV: 2,
    InstrClass.FP_ALU: 4,
    InstrClass.FP_DIV: 17,
    InstrClass.FP_DIVD: 30,
    InstrClass.LOAD: 1,
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.JUMP: 1,
    InstrClass.JUMP_IND: 1,
    InstrClass.NOP: 1,
    InstrClass.HALT: 1,
}


class Opcode(enum.Enum):
    """Every opcode in the reproduction ISA.

    The value is ``(mnemonic, instruction class)``.
    """

    # Integer ALU, register-register.
    ADD = ("add", InstrClass.INT_ALU)
    SUB = ("sub", InstrClass.INT_ALU)
    AND = ("and", InstrClass.INT_ALU)
    OR = ("or", InstrClass.INT_ALU)
    XOR = ("xor", InstrClass.INT_ALU)
    SLL = ("sll", InstrClass.INT_ALU)
    SRL = ("srl", InstrClass.INT_ALU)
    SRA = ("sra", InstrClass.INT_ALU)
    # Integer ALU, register-immediate.
    ADDI = ("addi", InstrClass.INT_ALU)
    ANDI = ("andi", InstrClass.INT_ALU)
    ORI = ("ori", InstrClass.INT_ALU)
    XORI = ("xori", InstrClass.INT_ALU)
    SLLI = ("slli", InstrClass.INT_ALU)
    SRLI = ("srli", InstrClass.INT_ALU)
    LI = ("li", InstrClass.INT_ALU)
    # Multiplies (Table 1: "integer multiply 8,16").
    MUL = ("mul", InstrClass.INT_MUL)
    MULQ = ("mulq", InstrClass.INT_MULQ)
    # Compares (Table 1: "compare 0").
    CMPEQ = ("cmpeq", InstrClass.INT_CMP)
    CMPLT = ("cmplt", InstrClass.INT_CMP)
    CMPLE = ("cmple", InstrClass.INT_CMP)
    # Conditional move (Table 1: "conditional move 2").
    CMOVZ = ("cmovz", InstrClass.INT_CMOV)
    CMOVNZ = ("cmovnz", InstrClass.INT_CMOV)
    # Floating point (Table 1: "all other FP 4", "FP divide 17,30").
    FADD = ("fadd", InstrClass.FP_ALU)
    FSUB = ("fsub", InstrClass.FP_ALU)
    FMUL = ("fmul", InstrClass.FP_ALU)
    FCMP = ("fcmp", InstrClass.FP_ALU)
    FCVT = ("fcvt", InstrClass.FP_ALU)
    FMOV = ("fmov", InstrClass.FP_ALU)
    FDIV = ("fdiv", InstrClass.FP_DIV)
    FDIVD = ("fdivd", InstrClass.FP_DIVD)
    # Memory (Table 1: "load (cache hit) 1").
    LD = ("ld", InstrClass.LOAD)
    ST = ("st", InstrClass.STORE)
    FLD = ("fld", InstrClass.LOAD)
    FST = ("fst", InstrClass.STORE)
    # Control.
    BEQZ = ("beqz", InstrClass.BRANCH)
    BNEZ = ("bnez", InstrClass.BRANCH)
    J = ("j", InstrClass.JUMP)
    JAL = ("jal", InstrClass.JUMP)
    JR = ("jr", InstrClass.JUMP_IND)
    RET = ("ret", InstrClass.JUMP_IND)
    # Misc.
    NOP = ("nop", InstrClass.NOP)
    HALT = ("halt", InstrClass.HALT)

    @property
    def mnemonic(self) -> str:
        return self.value[0]

    @property
    def iclass(self) -> InstrClass:
        return self.value[1]


#: Mnemonic -> Opcode lookup used by the assembler.
MNEMONIC_TO_OPCODE = {op.mnemonic: op for op in Opcode}

_CONTROL_CLASSES = frozenset(
    {InstrClass.BRANCH, InstrClass.JUMP, InstrClass.JUMP_IND}
)
_FP_CLASSES = frozenset({InstrClass.FP_ALU, InstrClass.FP_DIV, InstrClass.FP_DIVD})


def latency_for(iclass: InstrClass) -> int:
    """Return the Table-1 latency (in cycles) for an instruction class."""
    return INSTRUCTION_LATENCIES[iclass]


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Operand conventions (register indices are 0..31):

    ``rd``
        destination register, or ``None``.
    ``rs1``, ``rs2``
        source registers, or ``None``.  For stores ``rs1`` is the base
        address register and ``rs2`` the value being stored.  For loads
        ``rs1`` is the base address register.
    ``imm``
        immediate / displacement.
    ``target``
        byte address of a direct branch/jump target (resolved by the
        assembler), or ``None`` for indirect jumps.

    ``rd_file`` / ``rs1_file`` / ``rs2_file`` say which register file each
    operand belongs to, so the renamer knows which physical pool to use.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    rd_file: RegFile = RegFile.INT
    rs1_file: RegFile = RegFile.INT
    rs2_file: RegFile = RegFile.INT

    # ------------------------------------------------------------------
    # Static classification, precomputed once per static instruction.
    #
    # Every dynamic uop consults these (millions of reads per run); as
    # plain instance attributes they are one dict lookup instead of a
    # property call chaining through two enum descriptor lookups.
    # ``is_fp`` follows the paper: the *integer* queue handles integer
    # instructions and all loads/stores (including FP ones); the FP
    # queue handles FP arithmetic only.
    # ------------------------------------------------------------------
    def __post_init__(self):
        opcode = self.opcode
        iclass = opcode.value[1]
        cache = object.__setattr__  # the dataclass is frozen
        cache(self, "iclass", iclass)
        cache(self, "latency", INSTRUCTION_LATENCIES[iclass])
        cache(self, "is_control", iclass in _CONTROL_CLASSES)
        cache(self, "is_cond_branch", iclass is InstrClass.BRANCH)
        cache(self, "is_jump",
              iclass is InstrClass.JUMP or iclass is InstrClass.JUMP_IND)
        cache(self, "is_indirect", iclass is InstrClass.JUMP_IND)
        cache(self, "is_call", opcode is Opcode.JAL)
        cache(self, "is_return", opcode is Opcode.RET)
        cache(self, "is_load", iclass is InstrClass.LOAD)
        cache(self, "is_store", iclass is InstrClass.STORE)
        cache(self, "is_mem",
              iclass is InstrClass.LOAD or iclass is InstrClass.STORE)
        cache(self, "is_fp", iclass in _FP_CLASSES)
        cache(self, "writes_reg", self.rd is not None)
        srcs = []
        if self.rs1 is not None:
            srcs.append((self.rs1, self.rs1_file))
        if self.rs2 is not None:
            srcs.append((self.rs2, self.rs2_file))
        cache(self, "_sources", tuple(srcs))
        # Rename-stage fast path: the (logical, is_fp) pairs and the
        # destination file as plain bools, so the per-uop rename loop
        # never touches the RegFile enum.
        cache(self, "_sources_fp",
              tuple((reg, rf is RegFile.FP) for reg, rf in srcs))
        cache(self, "_rd_is_fp", self.rd_file is RegFile.FP)

    def sources(self) -> Tuple[Tuple[int, RegFile], ...]:
        """Return the (register, regfile) pairs this instruction reads."""
        return self._sources

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        op = self.opcode
        m = op.mnemonic
        def r(i, f):
            return ("f" if f is RegFile.FP else "r") + str(i)

        if op in (Opcode.NOP, Opcode.HALT, Opcode.RET):
            return m
        if op in (Opcode.LD, Opcode.FLD):
            return f"{m} {r(self.rd, self.rd_file)}, {self.imm}({r(self.rs1, self.rs1_file)})"
        if op in (Opcode.ST, Opcode.FST):
            return f"{m} {r(self.rs2, self.rs2_file)}, {self.imm}({r(self.rs1, self.rs1_file)})"
        if op in (Opcode.BEQZ, Opcode.BNEZ):
            return f"{m} {r(self.rs1, self.rs1_file)}, {self.target:#x}"
        if op in (Opcode.J, Opcode.JAL):
            return f"{m} {self.target:#x}"
        if op is Opcode.JR:
            return f"{m} {r(self.rs1, self.rs1_file)}"
        if op is Opcode.LI:
            return f"{m} {r(self.rd, self.rd_file)}, {self.imm}"
        parts = []
        if self.rd is not None:
            parts.append(r(self.rd, self.rd_file))
        if self.rs1 is not None:
            parts.append(r(self.rs1, self.rs1_file))
        if self.rs2 is not None:
            parts.append(r(self.rs2, self.rs2_file))
        if op.mnemonic.endswith("i") and op not in (Opcode.LI,):
            parts.append(str(self.imm))
        return f"{m} " + ", ".join(parts)
