"""A two-pass assembler for the reproduction ISA.

Syntax example::

    .data
    table:  .space 1024          # reserve 1024 bytes (zeroed)
    seed:   .word  12345         # one 8-byte word

    .text
    _start:
        li    r1, table          # labels are usable as immediates
        li    r2, 0
    loop:
        ld    r3, 0(r1)
        add   r2, r2, r3
        addi  r1, r1, 8
        cmplt r4, r1, r5
        bnez  r4, loop
        halt

Integer registers are ``r0``..``r31`` (``r0`` is hardwired to zero;
``r31`` is the link register written by ``jal``).  FP registers are
``f0``..``f31``.  Comments run from ``#`` or ``;`` to end of line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import (
    Instruction,
    MNEMONIC_TO_OPCODE,
    Opcode,
    RegFile,
)
from repro.isa.program import (
    DATA_BASE,
    DataSegment,
    INSTR_BYTES,
    Program,
    TEXT_BASE,
    WORD_BYTES,
)


class AssemblyError(Exception):
    """Raised for any syntax or semantic error in assembly source."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\s*\(\s*([rf]\d+)\s*\)$")

#: Opcodes whose final operand is an immediate.
_IMM_OPS = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI,
}
#: Three-register integer ops.
_RRR_OPS = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.MUL, Opcode.MULQ,
    Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE,
}
#: Conditional moves: rd, rs1 (cond), rs2 (value).
_CMOV_OPS = {Opcode.CMOVZ, Opcode.CMOVNZ}
#: Three-register FP ops.
_FRRR_OPS = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FDIVD}
#: rd, rs1 FP ops.
_FRR_OPS = {Opcode.FCVT, Opcode.FMOV}


def _parse_reg(token: str, line_no: int) -> Tuple[int, RegFile]:
    token = token.strip().lower()
    m = re.match(r"^([rf])(\d+)$", token)
    if not m:
        raise AssemblyError(f"expected register, got {token!r}", line_no)
    idx = int(m.group(2))
    if not 0 <= idx <= 31:
        raise AssemblyError(f"register index out of range: {token!r}", line_no)
    return idx, RegFile.INT if m.group(1) == "r" else RegFile.FP


def _strip_comment(line: str) -> str:
    for ch in "#;":
        pos = line.find(ch)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


class _Assembler:
    """Internal two-pass assembler state machine."""

    def __init__(self, source: str, name: str):
        self.source = source
        self.name = name
        self.symbols: Dict[str, int] = {}
        self.instructions: List[Instruction] = []
        self.data = DataSegment(words={}, size=0)

    # ------------------------------------------------------------------
    def assemble(self) -> Program:
        lines = self.source.splitlines()
        self._pass_one(lines)
        self._pass_two(lines)
        # Give the data segment generous headroom past the last initialiser
        # so stack-like access patterns near the end stay in-bounds.
        self.data.size = max(self.data.size, 1 << 16)
        return Program(
            self.instructions, data=self.data, symbols=self.symbols, name=self.name
        )

    # ------------------------------------------------------------------
    def _pass_one(self, lines: List[str]) -> None:
        """Assign addresses to every label without emitting code."""
        section = ".text"
        text_idx = 0
        data_off = 0
        for line_no, raw in enumerate(lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if line.startswith("."):
                directive, _, rest = line.partition(" ")
                if directive in (".text", ".data"):
                    section = directive
                    continue
                raise AssemblyError(f"unexpected directive {directive!r}", line_no)
            label, line = self._take_label(line, line_no)
            if label is not None:
                addr = (
                    TEXT_BASE + INSTR_BYTES * text_idx
                    if section == ".text"
                    else DATA_BASE + data_off
                )
                if label in self.symbols:
                    raise AssemblyError(f"duplicate label {label!r}", line_no)
                self.symbols[label] = addr
            if not line:
                continue
            if section == ".text":
                text_idx += 1
            else:
                data_off += self._data_size(line, line_no)

    def _pass_two(self, lines: List[str]) -> None:
        """Emit instructions and data with all labels resolved."""
        section = ".text"
        data_off = 0
        for line_no, raw in enumerate(lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if line.startswith("."):
                directive = line.split()[0]
                if directive in (".text", ".data"):
                    section = directive
                continue
            _, line = self._take_label(line, line_no)
            if not line:
                continue
            if section == ".text":
                self.instructions.append(self._encode(line, line_no))
            else:
                data_off = self._emit_data(line, line_no, data_off)
        self.data.size = max(self.data.size, data_off)

    # ------------------------------------------------------------------
    @staticmethod
    def _take_label(line: str, line_no: int) -> Tuple[Optional[str], str]:
        if ":" not in line:
            return None, line
        label, _, rest = line.partition(":")
        label = label.strip()
        if not _LABEL_RE.match(label):
            raise AssemblyError(f"invalid label {label!r}", line_no)
        return label, rest.strip()

    # ------------------------------------------------------------------
    @staticmethod
    def _data_size(line: str, line_no: int) -> int:
        directive, _, rest = line.partition(" ")
        if directive == ".word":
            n_values = len(_split_operands(rest))
            if n_values == 0:
                raise AssemblyError(".word requires at least one value", line_no)
            return WORD_BYTES * n_values
        if directive == ".space":
            try:
                size = int(rest.strip(), 0)
            except ValueError:
                raise AssemblyError(f"bad .space size {rest!r}", line_no)
            if size <= 0 or size % WORD_BYTES:
                raise AssemblyError(
                    ".space size must be a positive multiple of 8", line_no
                )
            return size
        raise AssemblyError(f"unknown data directive {directive!r}", line_no)

    def _emit_data(self, line: str, line_no: int, off: int) -> int:
        directive, _, rest = line.partition(" ")
        if directive == ".word":
            for tok in _split_operands(rest):
                self.data.words[DATA_BASE + off] = self._int_value(tok, line_no)
                off += WORD_BYTES
            return off
        if directive == ".space":
            return off + int(rest.strip(), 0)
        raise AssemblyError(f"unknown data directive {directive!r}", line_no)

    def _int_value(self, token: str, line_no: int) -> int:
        token = token.strip()
        if token in self.symbols:
            return self.symbols[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError(f"bad integer or unknown symbol {token!r}", line_no)

    def _target(self, token: str, line_no: int) -> int:
        addr = self._int_value(token, line_no)
        if addr % INSTR_BYTES:
            raise AssemblyError(f"branch target {token!r} is misaligned", line_no)
        return addr

    # ------------------------------------------------------------------
    def _encode(self, line: str, line_no: int) -> Instruction:
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
        if opcode is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)
        ops = _split_operands(rest)

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblyError(
                    f"{mnemonic} expects {n} operand(s), got {len(ops)}", line_no
                )

        if opcode in (Opcode.NOP, Opcode.HALT):
            need(0)
            return Instruction(opcode)

        if opcode is Opcode.RET:
            # ret is jr r31; it reads the link register.
            need(0)
            return Instruction(opcode, rs1=31)

        if opcode in _RRR_OPS:
            need(3)
            rd, _ = _parse_reg(ops[0], line_no)
            rs1, _ = _parse_reg(ops[1], line_no)
            rs2, _ = _parse_reg(ops[2], line_no)
            return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)

        if opcode in _CMOV_OPS:
            need(3)
            rd, _ = _parse_reg(ops[0], line_no)
            rs1, _ = _parse_reg(ops[1], line_no)
            rs2, _ = _parse_reg(ops[2], line_no)
            return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)

        if opcode in _IMM_OPS:
            need(3)
            rd, _ = _parse_reg(ops[0], line_no)
            rs1, _ = _parse_reg(ops[1], line_no)
            return Instruction(
                opcode, rd=rd, rs1=rs1, imm=self._int_value(ops[2], line_no)
            )

        if opcode is Opcode.LI:
            need(2)
            rd, _ = _parse_reg(ops[0], line_no)
            return Instruction(opcode, rd=rd, imm=self._int_value(ops[1], line_no))

        if opcode in _FRRR_OPS:
            need(3)
            rd, fd = _parse_reg(ops[0], line_no)
            rs1, f1 = _parse_reg(ops[1], line_no)
            rs2, f2 = _parse_reg(ops[2], line_no)
            if RegFile.INT in (fd, f1, f2):
                raise AssemblyError(f"{mnemonic} operands must be FP registers", line_no)
            return Instruction(
                opcode, rd=rd, rs1=rs1, rs2=rs2,
                rd_file=RegFile.FP, rs1_file=RegFile.FP, rs2_file=RegFile.FP,
            )

        if opcode in _FRR_OPS:
            need(2)
            rd, _ = _parse_reg(ops[0], line_no)
            rs1, _ = _parse_reg(ops[1], line_no)
            return Instruction(
                opcode, rd=rd, rs1=rs1, rd_file=RegFile.FP, rs1_file=RegFile.FP
            )

        if opcode is Opcode.FCMP:
            # fcmp rd(int), fs1, fs2 — produces an integer truth value.
            need(3)
            rd, fd = _parse_reg(ops[0], line_no)
            rs1, f1 = _parse_reg(ops[1], line_no)
            rs2, f2 = _parse_reg(ops[2], line_no)
            if fd is not RegFile.INT or f1 is not RegFile.FP or f2 is not RegFile.FP:
                raise AssemblyError("fcmp expects rd(int), fs1, fs2", line_no)
            return Instruction(
                opcode, rd=rd, rs1=rs1, rs2=rs2,
                rd_file=RegFile.INT, rs1_file=RegFile.FP, rs2_file=RegFile.FP,
            )

        if opcode in (Opcode.LD, Opcode.FLD):
            need(2)
            rd, fd = _parse_reg(ops[0], line_no)
            imm, base, base_file = self._mem_operand(ops[1], line_no)
            want = RegFile.FP if opcode is Opcode.FLD else RegFile.INT
            if fd is not want:
                raise AssemblyError(f"{mnemonic} destination register file mismatch", line_no)
            return Instruction(
                opcode, rd=rd, rs1=base, imm=imm,
                rd_file=want, rs1_file=base_file,
            )

        if opcode in (Opcode.ST, Opcode.FST):
            need(2)
            rv, fv = _parse_reg(ops[0], line_no)
            imm, base, base_file = self._mem_operand(ops[1], line_no)
            want = RegFile.FP if opcode is Opcode.FST else RegFile.INT
            if fv is not want:
                raise AssemblyError(f"{mnemonic} value register file mismatch", line_no)
            return Instruction(
                opcode, rs1=base, rs2=rv, imm=imm,
                rs1_file=base_file, rs2_file=want,
            )

        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            need(2)
            rs1, _ = _parse_reg(ops[0], line_no)
            return Instruction(opcode, rs1=rs1, target=self._target(ops[1], line_no))

        if opcode is Opcode.J:
            need(1)
            return Instruction(opcode, target=self._target(ops[0], line_no))

        if opcode is Opcode.JAL:
            need(1)
            # jal writes the return address to the link register r31.
            return Instruction(opcode, rd=31, target=self._target(ops[0], line_no))

        if opcode is Opcode.JR:
            need(1)
            rs1, _ = _parse_reg(ops[0], line_no)
            return Instruction(opcode, rs1=rs1)

        raise AssemblyError(f"unhandled opcode {mnemonic!r}", line_no)

    def _mem_operand(self, token: str, line_no: int) -> Tuple[int, int, RegFile]:
        m = _MEM_OPERAND_RE.match(token.strip())
        if not m:
            raise AssemblyError(f"expected disp(reg) operand, got {token!r}", line_no)
        disp = self._int_value(m.group(1), line_no)
        base, base_file = _parse_reg(m.group(2), line_no)
        return disp, base, base_file


def assemble(source: str, name: str = "anonymous") -> Program:
    """Assemble ``source`` into a :class:`~repro.isa.program.Program`.

    Raises :class:`AssemblyError` on any syntax or semantic problem.
    """
    return _Assembler(source, name).assemble()
