"""Program image: text segment, data segment, and symbols.

A :class:`Program` is what the fetch unit and the functional emulator both
read.  The text segment is a flat list of static instructions starting at
``TEXT_BASE``; instruction ``i`` lives at byte address ``TEXT_BASE + 4*i``.
The data segment is word-addressed (8-byte words) starting at ``DATA_BASE``.

Wrong-path fetch reads arbitrary text addresses, so :meth:`Program.fetch`
is total: addresses outside the text segment return ``None`` and the fetch
unit treats them as an (immediately squashed) fetch stall, mirroring how a
real front end would fault or fetch garbage that is later squashed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction

#: Base byte address of the text segment (all programs).
TEXT_BASE = 0x0001_0000
#: Base byte address of the data segment (all programs).
DATA_BASE = 0x0100_0000
#: Bytes per instruction.
INSTR_BYTES = 4
#: Bytes per data word.
WORD_BYTES = 8


@dataclass
class DataSegment:
    """Initial data memory contents for a program.

    ``words`` maps byte addresses (multiples of 8, relative to absolute
    address space, i.e. already offset by ``DATA_BASE``) to 64-bit integer
    values.  ``size`` is the extent in bytes of the addressable data region
    starting at ``DATA_BASE``; loads inside the region but not in ``words``
    read zero.
    """

    words: Dict[int, int] = field(default_factory=dict)
    size: int = 1 << 20  # 1 MiB default data region

    def read(self, addr: int) -> int:
        return self.words.get(addr & ~0x7, 0)


class Program:
    """An executable image: instructions, initial data, and symbols."""

    def __init__(
        self,
        instructions: List[Instruction],
        data: Optional[DataSegment] = None,
        symbols: Optional[Dict[str, int]] = None,
        name: str = "anonymous",
    ):
        if not instructions:
            raise ValueError("a program must contain at least one instruction")
        self.instructions: List[Instruction] = list(instructions)
        self.data: DataSegment = data if data is not None else DataSegment()
        self.symbols: Dict[str, int] = dict(symbols or {})
        self.name = name
        self.entry: int = self.symbols.get("_start", TEXT_BASE)
        # Cached bound for the fetch hot path (consulted per fetched uop).
        self._text_end: int = TEXT_BASE + INSTR_BYTES * len(self.instructions)

    # ------------------------------------------------------------------
    @property
    def text_start(self) -> int:
        return TEXT_BASE

    @property
    def text_end(self) -> int:
        """One past the last valid instruction byte address."""
        return self._text_end

    def __len__(self) -> int:
        return len(self.instructions)

    def in_text(self, pc: int) -> bool:
        return TEXT_BASE <= pc < self._text_end and pc % INSTR_BYTES == 0

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Return the static instruction at byte address ``pc``.

        Total over all addresses: out-of-segment or misaligned PCs (which
        can only arise on wrong paths) return ``None``.
        """
        if not self.in_text(pc):
            return None
        return self.instructions[(pc - TEXT_BASE) // INSTR_BYTES]

    def address_of(self, index: int) -> int:
        """Byte address of instruction ``index``."""
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"instruction index {index} out of range")
        return TEXT_BASE + INSTR_BYTES * index

    def index_of(self, pc: int) -> int:
        """Instruction index of byte address ``pc``."""
        if not self.in_text(pc):
            raise ValueError(f"pc {pc:#x} not in text segment")
        return (pc - TEXT_BASE) // INSTR_BYTES

    def listing(self) -> str:
        """Human-readable disassembly listing, mainly for debugging."""
        addr_to_label = {v: k for k, v in self.symbols.items()}
        lines = []
        for i, instr in enumerate(self.instructions):
            addr = self.address_of(i)
            label = addr_to_label.get(addr)
            if label:
                lines.append(f"{label}:")
            lines.append(f"  {addr:#010x}:  {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Program(name={self.name!r}, instructions={len(self.instructions)}, "
            f"data_words={len(self.data.words)})"
        )
