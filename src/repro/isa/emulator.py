"""Functional emulator: the correct-path oracle.

The timing core never computes values; it follows *predicted* paths and
tracks dependences structurally.  What it needs from each correct-path
dynamic instruction is exactly what the emulator provides in an
:class:`OracleRecord`: the true next PC (so mispredictions can be detected
and resolved at the execute stage) and the true effective address of memory
operations (so the cache hierarchy sees the program's real access stream).

The emulator is deterministic: same program, same sequence of records.

Execution strategy: the first emulator built for a program compiles one
handler closure per *static* instruction (operands, immediates and the
fall-through PC bound as closure constants), cached per program so every
thread context and every warmup replay reuses them.  Static instructions
whose operand pattern falls outside the assembler's conventions get no
handler and fall back to :meth:`Emulator._step_interpreted`, the original
if/elif interpreter, which remains the semantic reference (the equivalence
tests run both and compare record streams).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction, Opcode, RegFile
from repro.isa.program import DATA_BASE, INSTR_BYTES, TEXT_BASE, Program

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


class OracleRecord:
    """One correct-path dynamic instruction, as the timing core sees it."""

    __slots__ = ("seq", "pc", "instr", "next_pc", "taken", "eff_addr")

    def __init__(
        self,
        seq: int,
        pc: int,
        instr: Instruction,
        next_pc: int,
        taken: bool,
        eff_addr: Optional[int],
    ):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken          # for control instructions
        self.eff_addr = eff_addr    # for loads/stores

    def __repr__(self) -> str:
        return (
            f"OracleRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"instr={self.instr!s}, next_pc={self.next_pc:#x})"
        )


class EmulatorError(Exception):
    """Raised when architectural execution goes somewhere undefined."""


# ----------------------------------------------------------------------
# Per-program compiled handler tables.  Kept out of Program.__dict__ so
# program images stay picklable; a weak key keeps the table alive exactly
# as long as its program.
# ----------------------------------------------------------------------
_HANDLER_CACHE: "weakref.WeakKeyDictionary[Program, list]" = (
    weakref.WeakKeyDictionary()
)

# Pure int ALU register-register expressions (int rd, int rs1, int rs2).
# Each lambda receives the int register file and the two source indices
# and returns the raw (unmasked) result.
_INT_RRR = {
    Opcode.ADD: lambda ir, a, b: ir[a] + ir[b],
    Opcode.SUB: lambda ir, a, b: ir[a] - ir[b],
    Opcode.AND: lambda ir, a, b: ir[a] & ir[b],
    Opcode.OR: lambda ir, a, b: ir[a] | ir[b],
    Opcode.XOR: lambda ir, a, b: ir[a] ^ ir[b],
    Opcode.SLL: lambda ir, a, b: ir[a] << (ir[b] & 63),
    Opcode.SRL: lambda ir, a, b: (ir[a] & _MASK64) >> (ir[b] & 63),
    Opcode.SRA: lambda ir, a, b: _to_signed(ir[a]) >> (ir[b] & 63),
    Opcode.MUL: lambda ir, a, b: ir[a] * ir[b],
    Opcode.MULQ: lambda ir, a, b: ir[a] * ir[b],
    Opcode.CMPEQ: lambda ir, a, b: int(ir[a] == ir[b]),
    Opcode.CMPLT: lambda ir, a, b: int(_to_signed(ir[a]) < _to_signed(ir[b])),
    Opcode.CMPLE: lambda ir, a, b: int(_to_signed(ir[a]) <= _to_signed(ir[b])),
    Opcode.CMOVZ: lambda ir, a, b: ir[b] if ir[a] == 0 else 0,
    Opcode.CMOVNZ: lambda ir, a, b: ir[b] if ir[a] != 0 else 0,
}

# Int ALU register-immediate expressions (int rd, int rs1, imm).
_INT_RRI = {
    Opcode.ADDI: lambda ir, a, imm: ir[a] + imm,
    Opcode.ANDI: lambda ir, a, imm: ir[a] & imm,
    Opcode.ORI: lambda ir, a, imm: ir[a] | imm,
    Opcode.XORI: lambda ir, a, imm: ir[a] ^ imm,
    Opcode.SLLI: lambda ir, a, imm: ir[a] << (imm & 63),
    Opcode.SRLI: lambda ir, a, imm: (ir[a] & _MASK64) >> (imm & 63),
}

# FP arithmetic with an FP destination (fp rd, fp rs1[, fp rs2]).
_FP_OPS = {
    Opcode.FADD: lambda fr, a, b: fr[a] + fr[b],
    Opcode.FSUB: lambda fr, a, b: fr[a] - fr[b],
    Opcode.FMUL: lambda fr, a, b: fr[a] * fr[b],
    Opcode.FDIV: lambda fr, a, b: fr[a] / fr[b] if fr[b] != 0.0 else 0.0,
    Opcode.FDIVD: lambda fr, a, b: fr[a] / fr[b] if fr[b] != 0.0 else 0.0,
    Opcode.FCVT: lambda fr, a, b: float(int(fr[a])),
    Opcode.FMOV: lambda fr, a, b: fr[a],
}


def _make_handler(instr, pc, data_size, text_end, words_get):
    """Compile one static instruction into a step closure, or return
    ``None`` if its operand pattern is unusual (interpreter fallback).

    Every closure reproduces exactly the interpreter's semantics: same
    register-write masking, same address wrapping, same record fields,
    same error messages.
    """
    op = instr.opcode
    np = pc + INSTR_BYTES
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    target = instr.target
    R = OracleRecord

    if op in _INT_RRR:
        if (rd is None or rs1 is None or rs2 is None
                or instr.rd_file is not RegFile.INT):
            return None
        expr = _INT_RRR[op]
        # FCMP shares the shape but reads FP sources; handled separately.
        if instr.rs1_file is not RegFile.INT or instr.rs2_file is not RegFile.INT:
            return None
        if rd != 0:
            def h(self, _e=expr, _pc=pc, _np=np, _i=instr, _rd=rd,
                  _a=rs1, _b=rs2, _R=R, _M=_MASK64):
                ir = self.int_regs
                ir[_rd] = _e(ir, _a, _b) & _M
                r = _R(self.instret, _pc, _i, _np, False, None)
                self.pc = _np
                self.instret += 1
                return r
        else:
            def h(self, _e=expr, _pc=pc, _np=np, _i=instr,
                  _a=rs1, _b=rs2, _R=R):
                ir = self.int_regs
                _e(ir, _a, _b)  # r0 is hardwired to zero
                r = _R(self.instret, _pc, _i, _np, False, None)
                self.pc = _np
                self.instret += 1
                return r
        return h

    if op in _INT_RRI:
        if (rd is None or rs1 is None
                or instr.rd_file is not RegFile.INT
                or instr.rs1_file is not RegFile.INT):
            return None
        expr = _INT_RRI[op]

        def h(self, _e=expr, _pc=pc, _np=np, _i=instr, _rd=rd,
              _a=rs1, _imm=imm, _R=R, _M=_MASK64):
            ir = self.int_regs
            if _rd:
                ir[_rd] = _e(ir, _a, _imm) & _M
            r = _R(self.instret, _pc, _i, _np, False, None)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.LI:
        if rd is None or instr.rd_file is not RegFile.INT:
            return None
        value = imm & _MASK64

        def h(self, _pc=pc, _np=np, _i=instr, _rd=rd, _v=value, _R=R):
            if _rd:
                self.int_regs[_rd] = _v
            r = _R(self.instret, _pc, _i, _np, False, None)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op in _FP_OPS:
        if rd is None or rs1 is None or instr.rd_file is not RegFile.FP:
            return None
        if op in (Opcode.FCVT, Opcode.FMOV):
            if instr.rs1_file is not RegFile.FP:
                return None
            b = rs1  # unused second operand
        else:
            if (rs2 is None or instr.rs1_file is not RegFile.FP
                    or instr.rs2_file is not RegFile.FP):
                return None
            b = rs2
        expr = _FP_OPS[op]

        def h(self, _e=expr, _pc=pc, _np=np, _i=instr, _rd=rd,
              _a=rs1, _b=b, _R=R):
            fr = self.fp_regs
            fr[_rd] = float(_e(fr, _a, _b))
            r = _R(self.instret, _pc, _i, _np, False, None)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.FCMP:
        # FP compare writes an *integer* destination (assembler rule).
        if (rd is None or rs1 is None or rs2 is None
                or instr.rd_file is not RegFile.INT
                or instr.rs1_file is not RegFile.FP
                or instr.rs2_file is not RegFile.FP):
            return None

        def h(self, _pc=pc, _np=np, _i=instr, _rd=rd, _a=rs1, _b=rs2, _R=R):
            fr = self.fp_regs
            if _rd:
                self.int_regs[_rd] = int(fr[_a] < fr[_b])
            r = _R(self.instret, _pc, _i, _np, False, None)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.LD:
        if (rd is None or rs1 is None
                or instr.rd_file is not RegFile.INT
                or instr.rs1_file is not RegFile.INT):
            return None

        def h(self, _pc=pc, _np=np, _i=instr, _rd=rd, _a=rs1, _imm=imm,
              _R=R, _M=_MASK64, _D=DATA_BASE, _sz=data_size, _get=words_get):
            ir = self.int_regs
            addr = _D + ((ir[_a] + _imm - _D) % _sz & ~0x7)
            mem = self._mem
            v = mem[addr] if addr in mem else _get(addr, 0)
            if _rd:
                ir[_rd] = v & _M
            r = _R(self.instret, _pc, _i, _np, False, addr)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.FLD:
        if (rd is None or rs1 is None
                or instr.rd_file is not RegFile.FP
                or instr.rs1_file is not RegFile.INT):
            return None

        def h(self, _pc=pc, _np=np, _i=instr, _rd=rd, _a=rs1, _imm=imm,
              _R=R, _M=_MASK64, _S=_SIGN64, _D=DATA_BASE, _sz=data_size,
              _get=words_get):
            addr = _D + ((self.int_regs[_a] + _imm - _D) % _sz & ~0x7)
            fmem = self._fmem
            if addr in fmem:
                v = fmem[addr]
            else:
                mem = self._mem
                w = (mem[addr] if addr in mem else _get(addr, 0)) & _M
                v = float(w - (1 << 64) if w & _S else w)
            self.fp_regs[_rd] = v
            r = _R(self.instret, _pc, _i, _np, False, addr)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.ST:
        if (rs1 is None or rs2 is None
                or instr.rs1_file is not RegFile.INT
                or instr.rs2_file is not RegFile.INT):
            return None

        def h(self, _pc=pc, _np=np, _i=instr, _a=rs1, _b=rs2, _imm=imm,
              _R=R, _M=_MASK64, _D=DATA_BASE, _sz=data_size):
            ir = self.int_regs
            addr = _D + ((ir[_a] + _imm - _D) % _sz & ~0x7)
            self._mem[addr] = ir[_b] & _M
            r = _R(self.instret, _pc, _i, _np, False, addr)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.FST:
        if (rs1 is None or rs2 is None
                or instr.rs1_file is not RegFile.INT
                or instr.rs2_file is not RegFile.FP):
            return None

        def h(self, _pc=pc, _np=np, _i=instr, _a=rs1, _b=rs2, _imm=imm,
              _R=R, _D=DATA_BASE, _sz=data_size):
            addr = _D + ((self.int_regs[_a] + _imm - _D) % _sz & ~0x7)
            self._fmem[addr] = self.fp_regs[_b]
            r = _R(self.instret, _pc, _i, _np, False, addr)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op in (Opcode.BEQZ, Opcode.BNEZ):
        if (rs1 is None or target is None
                or instr.rs1_file is not RegFile.INT):
            return None
        want_zero = op is Opcode.BEQZ

        def h(self, _pc=pc, _np=np, _i=instr, _a=rs1, _t=target,
              _z=want_zero, _R=R):
            taken = (self.int_regs[_a] == 0) == _z
            r = _R(self.instret, _pc, _i, _t if taken else _np, taken, None)
            self.pc = _t if taken else _np
            self.instret += 1
            return r
        return h

    if op is Opcode.J:
        if target is None:
            return None

        def h(self, _pc=pc, _i=instr, _t=target, _R=R):
            r = _R(self.instret, _pc, _i, _t, True, None)
            self.pc = _t
            self.instret += 1
            return r
        return h

    if op is Opcode.JAL:
        if rd is None or target is None or instr.rd_file is not RegFile.INT:
            return None

        def h(self, _pc=pc, _np=np, _i=instr, _rd=rd, _t=target, _R=R):
            if _rd:
                self.int_regs[_rd] = _np  # return address (pc + 4 < 2**64)
            r = _R(self.instret, _pc, _i, _t, True, None)
            self.pc = _t
            self.instret += 1
            return r
        return h

    if op in (Opcode.JR, Opcode.RET):
        if rs1 is None or instr.rs1_file is not RegFile.INT:
            return None

        def h(self, _pc=pc, _i=instr, _a=rs1, _R=R, _M=_MASK64,
              _T=TEXT_BASE, _end=text_end):
            nxt = self.int_regs[_a] & _M
            if nxt % INSTR_BYTES or not _T <= nxt < _end:
                raise EmulatorError(
                    f"indirect jump at {_pc:#x} to invalid target {nxt:#x}"
                )
            r = _R(self.instret, _pc, _i, nxt, True, None)
            self.pc = nxt
            self.instret += 1
            return r
        return h

    if op is Opcode.NOP:

        def h(self, _pc=pc, _np=np, _i=instr, _R=R):
            r = _R(self.instret, _pc, _i, _np, False, None)
            self.pc = _np
            self.instret += 1
            return r
        return h

    if op is Opcode.HALT:

        def h(self, _pc=pc, _np=np, _i=instr, _R=R):
            self.halted = True
            r = _R(self.instret, _pc, _i, _np, False, None)
            self.pc = _np
            self.instret += 1
            return r
        return h

    return None


def _compile_handlers(program: Program) -> List:
    """One handler per static instruction (``None`` = interpret)."""
    data_size = max(program.data.size, 8)
    words_get = program.data.words.get
    text_end = program.text_end
    handlers = []
    pc = TEXT_BASE
    for instr in program.instructions:
        handlers.append(
            _make_handler(instr, pc, data_size, text_end, words_get)
        )
        pc += INSTR_BYTES
    return handlers


class Emulator:
    """Architectural interpreter for one program (one thread).

    Use :meth:`step` to retrieve successive :class:`OracleRecord` objects.
    ``halted`` becomes true after a ``halt`` instruction executes; stepping
    a halted emulator raises :class:`EmulatorError`.  Workload programs are
    written as infinite outer loops, so in normal simulation the emulator
    never halts.
    """

    def __init__(self, program: Program):
        self.program = program
        self.pc: int = program.entry
        self.int_regs = [0] * 32
        self.fp_regs = [0.0] * 32
        # Runtime memory is an overlay over the program's initial data.
        self._mem: Dict[int, int] = {}
        self._fmem: Dict[int, float] = {}
        self.halted = False
        self.instret = 0  # architecturally retired instruction count
        data = program.data
        self._data_size = max(data.size, 8)
        handlers = _HANDLER_CACHE.get(program)
        if handlers is None:
            handlers = _compile_handlers(program)
            _HANDLER_CACHE[program] = handlers
        self._handlers = handlers

    # ------------------------------------------------------------------
    # Memory helpers.  Addresses are wrapped into the data region so that
    # synthetic programs can never wander out of bounds; the *wrapped*
    # address is what the cache hierarchy sees.
    # ------------------------------------------------------------------
    def _wrap(self, addr: int) -> int:
        return DATA_BASE + ((addr - DATA_BASE) % self._data_size & ~0x7)

    def read_word(self, addr: int) -> int:
        addr = self._wrap(addr)
        if addr in self._mem:
            return self._mem[addr]
        return self.program.data.read(addr)

    def write_word(self, addr: int, value: int) -> None:
        self._mem[self._wrap(addr)] = value & _MASK64

    def read_fp(self, addr: int) -> float:
        addr = self._wrap(addr)
        if addr in self._fmem:
            return self._fmem[addr]
        # Integer-initialised memory reads back as its numeric value.
        return float(_to_signed(self.read_word(addr)))

    def write_fp(self, addr: int, value: float) -> None:
        self._fmem[self._wrap(addr)] = value

    # ------------------------------------------------------------------
    def step(self) -> OracleRecord:
        """Execute one instruction; return its oracle record."""
        if self.halted:
            raise EmulatorError("stepping a halted emulator")
        pc = self.pc
        idx = (pc - TEXT_BASE) >> 2
        handlers = self._handlers
        if pc & 3 or not 0 <= idx < len(handlers):
            raise EmulatorError(
                f"architectural PC {pc:#x} outside text segment"
            )
        h = handlers[idx]
        if h is None:
            return self._step_interpreted()
        return h(self)

    # ------------------------------------------------------------------
    def _step_interpreted(self) -> OracleRecord:
        """Reference interpreter: one instruction via the if/elif chain.

        Semantics source of truth; the compiled handlers must match this
        bit for bit (see ``tests/isa/test_emulator_compiled.py``).
        """
        if self.halted:
            raise EmulatorError("stepping a halted emulator")
        pc = self.pc
        instr = self.program.fetch(pc)
        if instr is None:
            raise EmulatorError(f"architectural PC {pc:#x} outside text segment")

        next_pc = pc + INSTR_BYTES
        taken = False
        eff_addr: Optional[int] = None
        op = instr.opcode
        ir = self.int_regs
        fr = self.fp_regs

        if op is Opcode.ADD:
            result = ir[instr.rs1] + ir[instr.rs2]
        elif op is Opcode.SUB:
            result = ir[instr.rs1] - ir[instr.rs2]
        elif op is Opcode.AND:
            result = ir[instr.rs1] & ir[instr.rs2]
        elif op is Opcode.OR:
            result = ir[instr.rs1] | ir[instr.rs2]
        elif op is Opcode.XOR:
            result = ir[instr.rs1] ^ ir[instr.rs2]
        elif op is Opcode.SLL:
            result = ir[instr.rs1] << (ir[instr.rs2] & 63)
        elif op is Opcode.SRL:
            result = (ir[instr.rs1] & _MASK64) >> (ir[instr.rs2] & 63)
        elif op is Opcode.SRA:
            result = _to_signed(ir[instr.rs1]) >> (ir[instr.rs2] & 63)
        elif op is Opcode.ADDI:
            result = ir[instr.rs1] + instr.imm
        elif op is Opcode.ANDI:
            result = ir[instr.rs1] & instr.imm
        elif op is Opcode.ORI:
            result = ir[instr.rs1] | instr.imm
        elif op is Opcode.XORI:
            result = ir[instr.rs1] ^ instr.imm
        elif op is Opcode.SLLI:
            result = ir[instr.rs1] << (instr.imm & 63)
        elif op is Opcode.SRLI:
            result = (ir[instr.rs1] & _MASK64) >> (instr.imm & 63)
        elif op is Opcode.LI:
            result = instr.imm
        elif op in (Opcode.MUL, Opcode.MULQ):
            result = ir[instr.rs1] * ir[instr.rs2]
        elif op is Opcode.CMPEQ:
            result = int(ir[instr.rs1] == ir[instr.rs2])
        elif op is Opcode.CMPLT:
            result = int(_to_signed(ir[instr.rs1]) < _to_signed(ir[instr.rs2]))
        elif op is Opcode.CMPLE:
            result = int(_to_signed(ir[instr.rs1]) <= _to_signed(ir[instr.rs2]))
        elif op is Opcode.CMOVZ:
            # Non-destructive select: rd = rs1 == 0 ? rs2 : 0.  (The timing
            # model only cares that cmov is a 2-cycle integer op.)
            result = ir[instr.rs2] if ir[instr.rs1] == 0 else 0
        elif op is Opcode.CMOVNZ:
            result = ir[instr.rs2] if ir[instr.rs1] != 0 else 0
        elif op is Opcode.FADD:
            result = fr[instr.rs1] + fr[instr.rs2]
        elif op is Opcode.FSUB:
            result = fr[instr.rs1] - fr[instr.rs2]
        elif op is Opcode.FMUL:
            result = fr[instr.rs1] * fr[instr.rs2]
        elif op is Opcode.FDIV or op is Opcode.FDIVD:
            denom = fr[instr.rs2]
            result = fr[instr.rs1] / denom if denom != 0.0 else 0.0
        elif op is Opcode.FCVT:
            result = float(int(fr[instr.rs1]))
        elif op is Opcode.FMOV:
            result = fr[instr.rs1]
        elif op is Opcode.FCMP:
            result = int(fr[instr.rs1] < fr[instr.rs2])
        elif op is Opcode.LD:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            result = self.read_word(eff_addr)
        elif op is Opcode.FLD:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            result = self.read_fp(eff_addr)
        elif op is Opcode.ST:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            self.write_word(eff_addr, ir[instr.rs2])
            result = None
        elif op is Opcode.FST:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            self.write_fp(eff_addr, fr[instr.rs2])
            result = None
        elif op is Opcode.BEQZ:
            taken = ir[instr.rs1] == 0
            if taken:
                next_pc = instr.target
            result = None
        elif op is Opcode.BNEZ:
            taken = ir[instr.rs1] != 0
            if taken:
                next_pc = instr.target
            result = None
        elif op is Opcode.J:
            taken = True
            next_pc = instr.target
            result = None
        elif op is Opcode.JAL:
            taken = True
            result = pc + INSTR_BYTES  # return address into r31
            next_pc = instr.target
        elif op is Opcode.JR or op is Opcode.RET:
            taken = True
            next_pc = ir[instr.rs1] & _MASK64
            if next_pc % INSTR_BYTES or not self.program.in_text(next_pc):
                raise EmulatorError(
                    f"indirect jump at {pc:#x} to invalid target {next_pc:#x}"
                )
            result = None
        elif op is Opcode.NOP:
            result = None
        elif op is Opcode.HALT:
            self.halted = True
            result = None
        else:  # pragma: no cover - exhaustive over Opcode
            raise EmulatorError(f"unimplemented opcode {op}")

        if instr.rd is not None and result is not None:
            if instr.rd_file.name == "FP":
                fr[instr.rd] = float(result)
            elif instr.rd != 0:  # r0 is hardwired to zero
                ir[instr.rd] = int(result) & _MASK64

        record = OracleRecord(self.instret, pc, instr, next_pc, taken, eff_addr)
        self.pc = next_pc
        self.instret += 1
        return record

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until ``halt`` or the instruction budget; return instret."""
        for _ in range(max_instructions):
            if self.halted:
                break
            self.step()
        return self.instret
