"""Functional emulator: the correct-path oracle.

The timing core never computes values; it follows *predicted* paths and
tracks dependences structurally.  What it needs from each correct-path
dynamic instruction is exactly what the emulator provides in an
:class:`OracleRecord`: the true next PC (so mispredictions can be detected
and resolved at the execute stage) and the true effective address of memory
operations (so the cache hierarchy sees the program's real access stream).

The emulator is deterministic: same program, same sequence of records.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import DATA_BASE, INSTR_BYTES, Program

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


class OracleRecord:
    """One correct-path dynamic instruction, as the timing core sees it."""

    __slots__ = ("seq", "pc", "instr", "next_pc", "taken", "eff_addr")

    def __init__(
        self,
        seq: int,
        pc: int,
        instr: Instruction,
        next_pc: int,
        taken: bool,
        eff_addr: Optional[int],
    ):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken          # for control instructions
        self.eff_addr = eff_addr    # for loads/stores

    def __repr__(self) -> str:
        return (
            f"OracleRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"instr={self.instr!s}, next_pc={self.next_pc:#x})"
        )


class EmulatorError(Exception):
    """Raised when architectural execution goes somewhere undefined."""


class Emulator:
    """Architectural interpreter for one program (one thread).

    Use :meth:`step` to retrieve successive :class:`OracleRecord` objects.
    ``halted`` becomes true after a ``halt`` instruction executes; stepping
    a halted emulator raises :class:`EmulatorError`.  Workload programs are
    written as infinite outer loops, so in normal simulation the emulator
    never halts.
    """

    def __init__(self, program: Program):
        self.program = program
        self.pc: int = program.entry
        self.int_regs = [0] * 32
        self.fp_regs = [0.0] * 32
        # Runtime memory is an overlay over the program's initial data.
        self._mem: Dict[int, int] = {}
        self._fmem: Dict[int, float] = {}
        self.halted = False
        self.instret = 0  # architecturally retired instruction count
        data = program.data
        self._data_size = max(data.size, 8)

    # ------------------------------------------------------------------
    # Memory helpers.  Addresses are wrapped into the data region so that
    # synthetic programs can never wander out of bounds; the *wrapped*
    # address is what the cache hierarchy sees.
    # ------------------------------------------------------------------
    def _wrap(self, addr: int) -> int:
        return DATA_BASE + ((addr - DATA_BASE) % self._data_size & ~0x7)

    def read_word(self, addr: int) -> int:
        addr = self._wrap(addr)
        if addr in self._mem:
            return self._mem[addr]
        return self.program.data.read(addr)

    def write_word(self, addr: int, value: int) -> None:
        self._mem[self._wrap(addr)] = value & _MASK64

    def read_fp(self, addr: int) -> float:
        addr = self._wrap(addr)
        if addr in self._fmem:
            return self._fmem[addr]
        # Integer-initialised memory reads back as its numeric value.
        return float(_to_signed(self.read_word(addr)))

    def write_fp(self, addr: int, value: float) -> None:
        self._fmem[self._wrap(addr)] = value

    # ------------------------------------------------------------------
    def step(self) -> OracleRecord:
        """Execute one instruction; return its oracle record."""
        if self.halted:
            raise EmulatorError("stepping a halted emulator")
        pc = self.pc
        instr = self.program.fetch(pc)
        if instr is None:
            raise EmulatorError(f"architectural PC {pc:#x} outside text segment")

        next_pc = pc + INSTR_BYTES
        taken = False
        eff_addr: Optional[int] = None
        op = instr.opcode
        ir = self.int_regs
        fr = self.fp_regs

        if op is Opcode.ADD:
            result = ir[instr.rs1] + ir[instr.rs2]
        elif op is Opcode.SUB:
            result = ir[instr.rs1] - ir[instr.rs2]
        elif op is Opcode.AND:
            result = ir[instr.rs1] & ir[instr.rs2]
        elif op is Opcode.OR:
            result = ir[instr.rs1] | ir[instr.rs2]
        elif op is Opcode.XOR:
            result = ir[instr.rs1] ^ ir[instr.rs2]
        elif op is Opcode.SLL:
            result = ir[instr.rs1] << (ir[instr.rs2] & 63)
        elif op is Opcode.SRL:
            result = (ir[instr.rs1] & _MASK64) >> (ir[instr.rs2] & 63)
        elif op is Opcode.SRA:
            result = _to_signed(ir[instr.rs1]) >> (ir[instr.rs2] & 63)
        elif op is Opcode.ADDI:
            result = ir[instr.rs1] + instr.imm
        elif op is Opcode.ANDI:
            result = ir[instr.rs1] & instr.imm
        elif op is Opcode.ORI:
            result = ir[instr.rs1] | instr.imm
        elif op is Opcode.XORI:
            result = ir[instr.rs1] ^ instr.imm
        elif op is Opcode.SLLI:
            result = ir[instr.rs1] << (instr.imm & 63)
        elif op is Opcode.SRLI:
            result = (ir[instr.rs1] & _MASK64) >> (instr.imm & 63)
        elif op is Opcode.LI:
            result = instr.imm
        elif op in (Opcode.MUL, Opcode.MULQ):
            result = ir[instr.rs1] * ir[instr.rs2]
        elif op is Opcode.CMPEQ:
            result = int(ir[instr.rs1] == ir[instr.rs2])
        elif op is Opcode.CMPLT:
            result = int(_to_signed(ir[instr.rs1]) < _to_signed(ir[instr.rs2]))
        elif op is Opcode.CMPLE:
            result = int(_to_signed(ir[instr.rs1]) <= _to_signed(ir[instr.rs2]))
        elif op is Opcode.CMOVZ:
            # Non-destructive select: rd = rs1 == 0 ? rs2 : 0.  (The timing
            # model only cares that cmov is a 2-cycle integer op.)
            result = ir[instr.rs2] if ir[instr.rs1] == 0 else 0
        elif op is Opcode.CMOVNZ:
            result = ir[instr.rs2] if ir[instr.rs1] != 0 else 0
        elif op is Opcode.FADD:
            result = fr[instr.rs1] + fr[instr.rs2]
        elif op is Opcode.FSUB:
            result = fr[instr.rs1] - fr[instr.rs2]
        elif op is Opcode.FMUL:
            result = fr[instr.rs1] * fr[instr.rs2]
        elif op is Opcode.FDIV or op is Opcode.FDIVD:
            denom = fr[instr.rs2]
            result = fr[instr.rs1] / denom if denom != 0.0 else 0.0
        elif op is Opcode.FCVT:
            result = float(int(fr[instr.rs1]))
        elif op is Opcode.FMOV:
            result = fr[instr.rs1]
        elif op is Opcode.FCMP:
            result = int(fr[instr.rs1] < fr[instr.rs2])
        elif op is Opcode.LD:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            result = self.read_word(eff_addr)
        elif op is Opcode.FLD:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            result = self.read_fp(eff_addr)
        elif op is Opcode.ST:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            self.write_word(eff_addr, ir[instr.rs2])
            result = None
        elif op is Opcode.FST:
            eff_addr = self._wrap(ir[instr.rs1] + instr.imm)
            self.write_fp(eff_addr, fr[instr.rs2])
            result = None
        elif op is Opcode.BEQZ:
            taken = ir[instr.rs1] == 0
            if taken:
                next_pc = instr.target
            result = None
        elif op is Opcode.BNEZ:
            taken = ir[instr.rs1] != 0
            if taken:
                next_pc = instr.target
            result = None
        elif op is Opcode.J:
            taken = True
            next_pc = instr.target
            result = None
        elif op is Opcode.JAL:
            taken = True
            result = pc + INSTR_BYTES  # return address into r31
            next_pc = instr.target
        elif op is Opcode.JR or op is Opcode.RET:
            taken = True
            next_pc = ir[instr.rs1] & _MASK64
            if next_pc % INSTR_BYTES or not self.program.in_text(next_pc):
                raise EmulatorError(
                    f"indirect jump at {pc:#x} to invalid target {next_pc:#x}"
                )
            result = None
        elif op is Opcode.NOP:
            result = None
        elif op is Opcode.HALT:
            self.halted = True
            result = None
        else:  # pragma: no cover - exhaustive over Opcode
            raise EmulatorError(f"unimplemented opcode {op}")

        if instr.rd is not None and result is not None:
            if instr.rd_file.name == "FP":
                fr[instr.rd] = float(result)
            elif instr.rd != 0:  # r0 is hardwired to zero
                ir[instr.rd] = int(result) & _MASK64

        record = OracleRecord(self.instret, pc, instr, next_pc, taken, eff_addr)
        self.pc = next_pc
        self.instret += 1
        return record

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until ``halt`` or the instruction budget; return instret."""
        for _ in range(max_instructions):
            if self.halted:
                break
            self.step()
        return self.instret
