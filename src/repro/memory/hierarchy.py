"""The full cache/memory hierarchy of Table 2.

====================  ======  ======  =======  =====
(level)               ICache  DCache  L2       L3
====================  ======  ======  =======  =====
Size                  32 KB   32 KB   256 KB   2 MB
Associativity         DM      DM      4-way    DM
Line size             64      64      64       64
Banks                 8       8       8        1
Transfer time/cycles  1       1       1        4
Accesses/cycle        var     4       1        1/4
Cache fill time       2       2       2        8
Latency to next       6       6       12       62
====================  ======  ======  =======  =====

The two L1s share the L2; the L2 misses to the L3; the L3 misses to an
infinitely-large memory whose request latency is the L3's
``latency_to_next``.  Inter-level buses are modelled by each level's port
limit plus a memory-side bus that accepts one line transfer per
``memory_bus_interval`` cycles — enough to create the queueing delays the
paper observes without saturating any single bus.

``infinite_bandwidth=True`` removes every bank, port, bus, and MSHR
constraint while keeping all latencies — the Section 7 "Memory
Throughput" experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.memory.cache import BankedCache, CacheParams
from repro.memory.tlb import TLB


@dataclass(slots=True)
class AccessResult:
    """Outcome of a data-side access."""

    l1_hit: bool
    ready_cycle: int
    #: The access could not even start (bank/port busy or MSHRs full);
    #: the requester must retry.  ready_cycle is the suggested retry time.
    rejected: bool = False


class MemoryHierarchy:
    """I-side and D-side cache hierarchy with shared L2/L3."""

    def __init__(
        self,
        icache: Optional[CacheParams] = None,
        dcache: Optional[CacheParams] = None,
        l2: Optional[CacheParams] = None,
        l3: Optional[CacheParams] = None,
        itlb_entries: int = 64,
        dtlb_entries: int = 64,
        memory_bus_interval: int = 2,
        infinite_bandwidth: bool = False,
    ):
        self.icache = BankedCache(icache or ICACHE_PARAMS)
        self.dcache = BankedCache(dcache or DCACHE_PARAMS)
        self.l2 = BankedCache(l2 or L2_PARAMS)
        self.l3 = BankedCache(l3 or L3_PARAMS)
        self.itlb = TLB(itlb_entries)
        self.dtlb = TLB(dtlb_entries)
        self.memory_bus_interval = memory_bus_interval
        self.infinite_bandwidth = infinite_bandwidth
        self._memory_bus_free = 0
        self._last_expire = 0
        # One full memory access (for the TLB-miss penalty): request
        # flight through every level plus the memory service itself.
        self.full_memory_latency = (
            self.icache.params.latency_to_next
            + self.l2.params.latency_to_next
            + self.l3.params.latency_to_next
            + self.l3.params.transfer_time
        )

    # ------------------------------------------------------------------
    def _tick_housekeeping(self, cycle: int) -> None:
        # Trim past bookkeeping every so often to bound memory use.
        if cycle - self._last_expire >= 1024:
            for cache in (self.icache, self.dcache, self.l2, self.l3):
                cache.expire(cycle)
            self._last_expire = cycle

    # ------------------------------------------------------------------
    def _memory_ready(self, arrival: int) -> int:
        """When a line requested from memory at ``arrival`` is delivered."""
        if self.infinite_bandwidth:
            return arrival
        start = max(arrival, self._memory_bus_free)
        self._memory_bus_free = start + self.memory_bus_interval
        return start

    def _lower_access(self, cache: BankedCache, addr: int, cycle: int) -> int:
        """Access ``cache`` (L2 or L3) at ``cycle``; return the cycle its
        line data is available to the requesting level."""
        params = cache.params
        if not self.infinite_bandwidth:
            in_flight = cache.mshr_lookup(addr, cycle)
            if in_flight is not None:
                # Merge with the outstanding fill.
                cache.accesses += 1
                return in_flight + params.transfer_time
            # Queue for the port/bank.
            start = cycle
            while not cache.can_accept(addr, start):
                start += 1
            cache.grant_port(start)
        else:
            start = cycle
        hit = cache.lookup(addr, start)
        if hit:
            return start + params.transfer_time
        # Miss: go one level down.  ``arrival`` already includes this
        # level's request flight time (latency_to_next).
        arrival = start + params.latency_to_next
        if cache is self.l2:
            lower_ready = self._lower_access(self.l3, addr, arrival)
        else:
            lower_ready = self._memory_ready(arrival)
        fill_done = lower_ready + params.fill_time
        if self.infinite_bandwidth:
            cache.install(addr)
        else:
            cache.start_fill(addr, fill_done)
        return fill_done + params.transfer_time

    # ------------------------------------------------------------------
    def _l1_access(
        self, cache: BankedCache, tlb: TLB, tid: int, addr: int, cycle: int
    ) -> AccessResult:
        if cycle - self._last_expire >= 1024:
            self._tick_housekeeping(cycle)
        params = cache.params
        if not self.infinite_bandwidth:
            if not cache.can_accept(addr, cycle):
                return AccessResult(False, cycle + 1, rejected=True)

        tlb_penalty = 0
        if not tlb.access(tid, addr):
            tlb_penalty = 2 * self.full_memory_latency

        if not self.infinite_bandwidth:
            in_flight = cache.mshr_lookup(addr, cycle)
            if in_flight is not None:
                cache.accesses += 1
                cache.grant_port(cycle)
                return AccessResult(False, in_flight + tlb_penalty)
            if cache.mshr_full(cycle):
                return AccessResult(False, cycle + 1, rejected=True)
            cache.grant_port(cycle)

        hit = cache.lookup(addr, cycle)
        if hit:
            # L1 hit latency itself is part of the pipeline (load latency
            # 1); ready_cycle == cycle means "hit, data on time".
            return AccessResult(True, cycle + tlb_penalty)
        arrival = cycle + params.latency_to_next
        lower_ready = self._lower_access(self.l2, addr, arrival)
        # The page-walk penalty is charged to the requester's completion
        # (overlapping it with the line fill's resource bookings keeps
        # the port model monotonic).
        fill_done = lower_ready + params.fill_time + tlb_penalty
        if self.infinite_bandwidth:
            cache.install(addr)
        else:
            cache.start_fill(addr, fill_done)
        return AccessResult(False, fill_done)

    # ------------------------------------------------------------------
    def ifetch(self, tid: int, addr: int, cycle: int) -> AccessResult:
        """Instruction-side access for one fetch block."""
        return self._l1_access(self.icache, self.itlb, tid, addr, cycle)

    def daccess(self, tid: int, addr: int, cycle: int, is_store: bool = False) -> AccessResult:
        """Data-side access for a load or store."""
        return self._l1_access(self.dcache, self.dtlb, tid, addr, cycle)

    # ------------------------------------------------------------------
    def icache_probe(self, addr: int) -> bool:
        """Early tag lookup (the ITAG scheme): hit/miss without access.

        A line whose fill is still in flight counts as a miss (the data
        is not there yet), so the probe is simply the tag check minus
        lines still outstanding."""
        if not self.icache.probe(addr):
            return False
        return self.icache.outstanding.get(self.icache.line_of(addr)) is None

    def warm_access(self, tid: int, addr: int, is_instr: bool) -> None:
        """Functional (timing-free) access for cache warmup: walks the
        hierarchy updating tags/LRU/TLBs only."""
        tlb = self.itlb if is_instr else self.dtlb
        tlb.access(tid, addr)
        l1 = self.icache if is_instr else self.dcache
        if l1.warm_touch(addr):
            return
        if self.l2.warm_touch(addr):
            return
        self.l3.warm_touch(addr)

    def reset_stats(self) -> None:
        for cache in (self.icache, self.dcache, self.l2, self.l3):
            cache.reset_stats()
        self.itlb.reset_stats()
        self.dtlb.reset_stats()


#: Table 2 parameter rows.
ICACHE_PARAMS = CacheParams(
    name="ICache", size=32 * 1024, assoc=1, line_size=64, banks=8,
    transfer_time=1, accesses_per_cycle=4, fill_time=2, latency_to_next=6,
)
DCACHE_PARAMS = CacheParams(
    name="DCache", size=32 * 1024, assoc=1, line_size=64, banks=8,
    transfer_time=1, accesses_per_cycle=4, fill_time=2, latency_to_next=6,
    mshrs=16,
)
L2_PARAMS = CacheParams(
    name="L2", size=256 * 1024, assoc=4, line_size=64, banks=8,
    transfer_time=1, accesses_per_cycle=1, fill_time=2, latency_to_next=12,
    mshrs=16,
)
L3_PARAMS = CacheParams(
    name="L3", size=2 * 1024 * 1024, assoc=1, line_size=64, banks=1,
    transfer_time=4, accesses_per_cycle=0.25, fill_time=8, latency_to_next=62,
)


def default_hierarchy(**overrides) -> MemoryHierarchy:
    """The paper's hierarchy; keyword overrides pass through."""
    return MemoryHierarchy(**overrides)
