"""TLB model.

The paper: "We model lockup-free caches and TLBs.  TLB misses require two
full memory accesses and no execution resources."  The TLB here is a
fully-associative, LRU, thread-tagged translation cache; on a miss the
hierarchy charges two full memory round trips of latency to the access
and installs the entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple


class TLB:
    """Fully-associative, LRU translation lookaside buffer."""

    def __init__(self, entries: int = 64, page_bytes: int = 8192):
        if page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        self.entries = entries
        self.page_shift = page_bytes.bit_length() - 1
        self._map: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr >> self.page_shift

    def access(self, tid: int, addr: int) -> bool:
        """Touch the translation for (tid, page); return True on hit.

        On a miss the entry is installed (the hierarchy accounts the
        two-memory-access penalty)."""
        self.accesses += 1
        key = (tid, addr >> self.page_shift)
        amap = self._map
        if key in amap:
            amap.move_to_end(key)
            return True
        self.misses += 1
        if len(amap) >= self.entries:
            amap.popitem(last=False)
        amap[key] = True
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
