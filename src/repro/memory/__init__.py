"""Memory hierarchy substrate (paper Table 2).

The hierarchy is modelled "in great detail, simulating bandwidth
limitations and access conflicts at multiple levels" (Section 2.1):
banked, lockup-free caches with miss-status holding registers, per-level
ports and inter-level bus occupancy, and TLBs whose misses cost two full
memory accesses.
"""

from repro.memory.cache import BankedCache, CacheParams
from repro.memory.tlb import TLB
from repro.memory.hierarchy import AccessResult, MemoryHierarchy, default_hierarchy

__all__ = [
    "BankedCache",
    "CacheParams",
    "TLB",
    "AccessResult",
    "MemoryHierarchy",
    "default_hierarchy",
]
