"""Banked, lockup-free cache model.

Each cache level is interleaved into banks on line address (following
Sohi & Franklin, as the paper does); a bank serves one access per cycle
and is additionally occupied for ``fill_time`` cycles when a miss fill
returns.  Outstanding misses are tracked in MSHRs: a second miss to a
line already in flight merges with the first (lockup-free behaviour) and
costs no extra downstream traffic.

Tag state (hit/miss, LRU) is updated eagerly at access time; timing is
returned to the caller as absolute cycle numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one cache level (one row of Table 2)."""

    name: str
    size: int                 # bytes
    assoc: int                # 1 = direct mapped
    line_size: int = 64
    banks: int = 8
    transfer_time: int = 1    # cycles to move a line over the output bus
    accesses_per_cycle: float = 1.0   # port limit across all banks
    fill_time: int = 2        # cycles a bank is busy accepting a fill
    latency_to_next: int = 6  # request flight time to the next level
    mshrs: int = 8            # outstanding distinct line misses

    def __post_init__(self):
        if self.size % (self.line_size * self.assoc * self.banks):
            raise ValueError(f"{self.name}: size not divisible into sets/banks")

    @property
    def n_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)


class BankedCache:
    """One cache level with banks, ports, and MSHRs."""

    def __init__(self, params: CacheParams):
        self.params = params
        self.n_sets = params.n_sets
        self._line_shift = params.line_size.bit_length() - 1
        # Hot-path constants, denormalised out of the params dataclass
        # (attribute chains through a frozen dataclass cost two lookups
        # per access in code that runs millions of times per run).
        self._banks = params.banks
        self._assoc = params.assoc
        self._apc_ge1 = params.accesses_per_cycle >= 1
        self._apc = params.accesses_per_cycle
        self._slow_interval = (
            0 if self._apc_ge1 else round(1 / params.accesses_per_cycle)
        )
        # Per-set LRU-ordered tag lists (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        # Bank -> earliest cycle the bank can take another access
        # (serialises same-bank accesses at one per cycle).
        self._bank_free = [0] * params.banks
        # Bank -> [(start, end)] windows during which a returning fill
        # occupies the bank and rejects reads.
        self._fill_windows: List[List[tuple]] = [[] for _ in range(params.banks)]
        # Port accounting: cycle -> accesses already granted that cycle.
        # (accesses_per_cycle < 1 means one access per 1/apc cycles,
        # modelled with the same bank-free mechanism on bank 0.)
        self._port_grants: Dict[int, int] = {}
        # MSHRs: line address -> cycle the fill completes.
        self.outstanding: Dict[int, int] = {}
        # Statistics.
        self.accesses = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def bank_of(self, addr: int) -> int:
        return self.line_of(addr) % self.params.banks

    def _set_of(self, addr: int) -> int:
        return self.line_of(addr) % self.n_sets

    # ------------------------------------------------------------------
    def expire(self, cycle: int) -> None:
        """Retire bookkeeping that is strictly in the past."""
        self.outstanding = {
            line: ready for line, ready in self.outstanding.items() if ready > cycle
        }
        self._port_grants = {
            c: n for c, n in self._port_grants.items() if c >= cycle
        }
        self._fill_windows = [
            [(s, e) for (s, e) in windows if e >= cycle]
            for windows in self._fill_windows
        ]

    # ------------------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Tag check only; no state change (used by ITAG early lookup)."""
        tags = self._sets[self._set_of(addr)]
        return self.line_of(addr) in tags

    def bank_free_at(self, addr: int, cycle: int) -> bool:
        bank = (addr >> self._line_shift) % self._banks
        if self._bank_free[bank] > cycle:
            return False
        for start, end in self._fill_windows[bank]:
            if start <= cycle < end:
                return False
        return True

    def can_accept(self, addr: int, cycle: int) -> bool:
        """``port_available(cycle) and bank_free_at(addr, cycle)`` fused
        into one call for the hierarchy's hot path."""
        if self._apc_ge1:
            if self._port_grants.get(cycle, 0) >= self._apc:
                return False
        elif self._bank_free[0] > cycle:
            return False
        bank = (addr >> self._line_shift) % self._banks
        if self._bank_free[bank] > cycle:
            return False
        for start, end in self._fill_windows[bank]:
            if start <= cycle < end:
                return False
        return True

    def port_available(self, cycle: int) -> bool:
        if self._apc_ge1:
            return self._port_grants.get(cycle, 0) < self._apc
        # Fractional rate: at most one access per 1/apc cycles, enforced
        # through bank 0's free time (single-banked slow caches).
        return self._bank_free[0] <= cycle

    def grant_port(self, cycle: int) -> None:
        if self._apc_ge1:
            self._port_grants[cycle] = self._port_grants.get(cycle, 0) + 1
        else:
            self._bank_free[0] = cycle + self._slow_interval

    # ------------------------------------------------------------------
    def lookup(self, addr: int, cycle: int) -> bool:
        """Perform the tag access at ``cycle``; returns hit/miss and
        occupies the bank for this cycle.  Does not handle the miss —
        the hierarchy does that."""
        self.accesses += 1
        line = addr >> self._line_shift
        bank = line % self._banks
        bank_free = self._bank_free
        if bank_free[bank] <= cycle:
            bank_free[bank] = cycle + 1
        sset = self._sets[line % self.n_sets]
        if line in sset:
            sset.remove(line)
            sset.append(line)  # LRU touch
            return True
        self.misses += 1
        return False

    def warm_touch(self, addr: int) -> bool:
        """Functional (timing-free) touch: LRU update, install on miss.

        Used by functional warmup to bring tag state to steady state
        without simulating cycles.  Returns True on hit."""
        sset = self._sets[self._set_of(addr)]
        line = self.line_of(addr)
        if line in sset:
            sset.remove(line)
            sset.append(line)
            return True
        if len(sset) >= self.params.assoc:
            sset.pop(0)
        sset.append(line)
        return False

    def mshr_lookup(self, addr: int, cycle: Optional[int] = None) -> Optional[int]:
        """Completion cycle of an in-flight fill for this line, if any.

        When ``cycle`` is given, an entry whose fill already landed is
        retired on the spot (the line is installed, so a fresh lookup
        will hit)."""
        line = addr >> self._line_shift
        ready = self.outstanding.get(line)
        if ready is None:
            return None
        if cycle is not None and ready <= cycle:
            del self.outstanding[line]
            return None
        return ready

    def mshr_full(self, cycle: int) -> bool:
        """True if no miss-status register is free at ``cycle``.

        Entries whose fill has already landed are pruned on the spot —
        a completed fill frees its MSHR immediately, not at the next
        housekeeping sweep."""
        if len(self.outstanding) < self.params.mshrs:
            return False
        self.outstanding = {
            line: ready for line, ready in self.outstanding.items() if ready > cycle
        }
        return len(self.outstanding) >= self.params.mshrs

    def install(self, addr: int) -> None:
        """Install a line's tag (evicting LRU if needed)."""
        line = self.line_of(addr)
        sset = self._sets[self._set_of(addr)]
        if line not in sset:
            if len(sset) >= self.params.assoc:
                sset.pop(0)
            sset.append(line)

    def start_fill(self, addr: int, ready_cycle: int) -> None:
        """Record an outstanding miss; the line installs at ready_cycle."""
        line = self.line_of(addr)
        self.outstanding[line] = ready_cycle
        # Install the tag now (the timing gate is the MSHR entry); the
        # bank is busy accepting the fill when it lands.
        self.install(addr)
        bank = self.bank_of(addr)
        windows = self._fill_windows[bank]
        windows.append((ready_cycle, ready_cycle + self.params.fill_time))
        if len(windows) > 64:
            del windows[0]

    # ------------------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
