"""The fetch-policy registry: one authoritative name -> policy mapping.

Every policy the simulator can run — the paper's five static policies,
the ICOUNT_BRCOUNT hybrid, and the adaptive meta-policies — registers
here with a one-line summary and a typed parameter schema.  The CLI's
``repro policies`` listing, ``SMTConfig`` validation, and the fetch
unit's policy construction all read this table, so documentation and
dispatch cannot drift apart.

Config specs are strings (they live in ``SMTConfig.fetch_policy``,
flow through dataclass serialisation, and hash into result-cache
keys).  Grammar::

    NAME                          e.g.  ICOUNT
    NAME:key=value,key=value      e.g.  HYSTERESIS:interval=200,dwell=3
    NAME:ARM/ARM[/ARM...]         e.g.  TOURNAMENT:ICOUNT/BRCOUNT
    NAME:ARM/ARM:key=value        e.g.  BANDIT:ICOUNT/RR:mode=ucb

Colon-separated segments after the name are either an arms list
(static policy names joined by ``/``) or comma-separated ``key=value``
options; unknown names, unknown keys, and malformed values all raise
``ValueError`` naming the valid alternatives.

Seeding: :func:`make_policy` derives any internal randomness (the
BANDIT's exploration RNG) from ``crc32(seed, spec)`` — stable across
processes and interpreter versions, so a policy is a pure function of
``(seed, config)``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.policy.base import FetchPolicy
from repro.policy.meta import Bandit, Hysteresis, Tournament
from repro.policy.static import STATIC_POLICY_CLASSES


# ----------------------------------------------------------------------
# Parameter converters (raise ValueError with a useful message).
# ----------------------------------------------------------------------
def _int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"policy option {key}={value!r} is not an integer")


def _float(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"policy option {key}={value!r} is not a number")


def _str(key: str, value: str) -> str:
    return value


@dataclass(frozen=True)
class PolicyInfo:
    """One registry row."""

    name: str
    kind: str                      # "static" | "meta"
    summary: str
    #: Factory(arms, params, rng_seed) -> FetchPolicy.
    factory: Callable[..., FetchPolicy]
    #: Allowed ``key=value`` options and their converters.
    params: Mapping[str, Callable[[str, str], Any]] = field(
        default_factory=dict
    )
    takes_arms: bool = False


# ----------------------------------------------------------------------
# Registration.
# ----------------------------------------------------------------------
def _static_factory(cls):
    def build(arms, params, rng_seed):
        return cls()
    return build


def _hysteresis_factory(arms, params, rng_seed):
    if arms is not None:
        raise ValueError("HYSTERESIS arms are fixed "
                         "(ICOUNT/BRCOUNT/MISSCOUNT)")
    return Hysteresis(**params)


def _bandit_factory(arms, params, rng_seed):
    kwargs = dict(params, rng_seed=rng_seed)
    if arms is not None:
        kwargs["arms"] = arms
    return Bandit(**kwargs)


def _tournament_factory(arms, params, rng_seed):
    kwargs = dict(params)
    if arms is not None:
        kwargs["arms"] = arms
    return Tournament(**kwargs)


_REGISTRY: Dict[str, PolicyInfo] = {}


def _register(info: PolicyInfo) -> None:
    if info.name in _REGISTRY:
        raise ValueError(f"duplicate policy registration {info.name!r}")
    _REGISTRY[info.name] = info


for _cls in STATIC_POLICY_CLASSES:
    _register(PolicyInfo(
        name=_cls.name, kind="static", summary=_cls.description,
        factory=_static_factory(_cls),
    ))

_register(PolicyInfo(
    name=Hysteresis.name, kind="meta", summary=Hysteresis.description,
    factory=_hysteresis_factory,
    params={"interval": _int, "dwell": _int, "floor": _float,
            "wrong_path_weight": _float, "miss_weight": _float},
))
_register(PolicyInfo(
    name=Bandit.name, kind="meta", summary=Bandit.description,
    factory=_bandit_factory, takes_arms=True,
    params={"interval": _int, "epsilon": _float, "mode": _str,
            "ucb_c": _float, "phase_threshold": _float},
))
_register(PolicyInfo(
    name=Tournament.name, kind="meta", summary=Tournament.description,
    factory=_tournament_factory, takes_arms=True,
    params={"interval": _int, "exploit": _int},
))


# ----------------------------------------------------------------------
# Introspection.
# ----------------------------------------------------------------------
def policy_names() -> Tuple[str, ...]:
    """Every registered policy name (static first, then meta)."""
    return tuple(sorted(
        _REGISTRY, key=lambda n: (_REGISTRY[n].kind != "static", n)
    ))


def static_policy_names() -> Tuple[str, ...]:
    return tuple(sorted(
        n for n, info in _REGISTRY.items() if info.kind == "static"
    ))


def meta_policy_names() -> Tuple[str, ...]:
    return tuple(sorted(
        n for n, info in _REGISTRY.items() if info.kind == "meta"
    ))


def registry_entries() -> Tuple[PolicyInfo, ...]:
    return tuple(_REGISTRY[name] for name in policy_names())


def get_info(name: str) -> PolicyInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(_unknown_message(name))


def _unknown_message(name: str) -> str:
    return (
        f"unknown fetch policy {name!r}; valid policies: "
        f"{', '.join(policy_names())} "
        f"(run 'repro policies' for descriptions)"
    )


# ----------------------------------------------------------------------
# Spec parsing and policy construction.
# ----------------------------------------------------------------------
def parse_spec(
    spec: str,
) -> Tuple[str, Optional[Tuple[str, ...]], Dict[str, str]]:
    """Split ``spec`` into (name, arms-or-None, raw option strings)."""
    if not spec or not isinstance(spec, str):
        raise ValueError(f"fetch policy spec must be a non-empty string, "
                         f"got {spec!r}")
    segments = spec.split(":")
    name = segments[0]
    arms: Optional[Tuple[str, ...]] = None
    params: Dict[str, str] = {}
    for segment in segments[1:]:
        if not segment:
            raise ValueError(f"empty segment in policy spec {spec!r}")
        if "=" in segment:
            for pair in segment.split(","):
                key, sep, value = pair.partition("=")
                if not sep or not key or not value:
                    raise ValueError(
                        f"malformed policy option {pair!r} in {spec!r} "
                        f"(expected key=value)"
                    )
                if key in params:
                    raise ValueError(f"duplicate policy option {key!r} "
                                     f"in {spec!r}")
                params[key] = value
        else:
            if arms is not None:
                raise ValueError(f"multiple arms lists in policy "
                                 f"spec {spec!r}")
            arms = tuple(segment.split("/"))
    return name, arms, params


def make_policy(spec: str, seed: int = 0) -> FetchPolicy:
    """Build the policy a config spec describes.

    Raises ``ValueError`` (listing valid names/options) on any problem,
    so ``SMTConfig`` can validate specs at construction time.
    """
    name, arms, raw_params = parse_spec(spec)
    info = _REGISTRY.get(name)
    if info is None:
        raise ValueError(_unknown_message(name))
    if info.kind == "static" and (arms is not None or raw_params):
        raise ValueError(
            f"static policy {name!r} takes no options (got {spec!r})"
        )
    if arms is not None and not info.takes_arms and info.kind == "meta":
        # HYSTERESIS: arms fixed; the factory raises with specifics.
        pass
    params: Dict[str, Any] = {}
    for key, value in raw_params.items():
        converter = info.params.get(key)
        if converter is None:
            valid = ", ".join(sorted(info.params)) or "(none)"
            raise ValueError(
                f"unknown option {key!r} for policy {name} "
                f"(valid options: {valid})"
            )
        params[key] = converter(key, value)
    rng_seed = zlib.crc32(f"{seed}|{spec}".encode("utf-8"))
    policy = info.factory(arms, params, rng_seed)
    policy.spec = spec
    return policy


def validate_spec(spec: str) -> str:
    """Validate a fetch-policy spec; returns the policy name.

    Construction is cheap (no simulator state), so validation simply
    builds and discards the policy — every factory-level check (arm
    names, parameter ranges) runs at config time, not deep inside the
    fetch loop.
    """
    return make_policy(spec, seed=0).name


def is_adaptive_spec(spec: str) -> bool:
    name = parse_spec(spec)[0]
    info = _REGISTRY.get(name)
    if info is None:
        raise ValueError(_unknown_message(name))
    return info.kind == "meta"
