"""The fetch-policy object model.

A :class:`FetchPolicy` orders the fetchable threads best-first each
cycle — the "choice" of the paper's title.  Policies are *objects*, not
strings: static policies (Section 5.2) are stateless rankers, while
meta-policies (:mod:`repro.policy.meta`) carry per-run state — phase
detectors, dueling counters, bandit arms — and pick a static policy to
delegate to, interval by interval.

Lifecycle: the fetch unit instantiates one policy per simulator from
``SMTConfig.fetch_policy`` (via :func:`repro.policy.registry.make_policy`).
Adaptive policies are then ``bind()``-ed to the simulator (registering
commit/squash listeners through the composing listener chain) and
``tick()``-ed once per cycle before thread selection; static policies
skip both, keeping the hot path exactly as cheap as before.

Determinism: a policy's behaviour is a pure function of
``(SMTConfig, seed)`` and the simulated event stream — no wall-clock,
no process state, no unseeded randomness — so identical runs are
bit-identical whether executed serially, in a pool worker, or resumed
from the result cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.queues import InstructionQueue
    from repro.core.simulator import Simulator
    from repro.core.thread import ThreadContext


class FetchPolicy:
    """Orders fetch candidates best-first; subclasses implement one
    ranking (static) or one selection algorithm over rankings (meta)."""

    #: Registry name (set per subclass).
    name: str = "?"
    #: One-line summary surfaced by ``repro policies`` and the docs.
    description: str = ""
    #: Adaptive policies need ``bind``/``tick``; static ones do not.
    adaptive: bool = False

    # ------------------------------------------------------------------
    def order(
        self,
        candidates: Sequence["ThreadContext"],
        cycle: int,
        rr_offset: int,
        n_threads: int,
        int_queue: "InstructionQueue",
        fp_queue: "InstructionQueue",
    ) -> List["ThreadContext"]:
        """The candidates, best-first.  Must return a permutation."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        """Attach to a live simulator (adaptive policies only)."""

    def tick(self, cycle: int) -> None:
        """Per-cycle hook, called before thread selection (adaptive
        policies only; static policies are never ticked)."""

    # ------------------------------------------------------------------
    def telemetry(self) -> Dict[str, Any]:
        """Policy-choice accounting for the run document export."""
        return {"policy": self.name, "adaptive": self.adaptive}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def rr_rank(thread: "ThreadContext", rr_offset: int, n_threads: int) -> int:
    """The round-robin tiebreak every policy shares (paper Section 5.2)."""
    return (thread.tid - rr_offset) % n_threads
