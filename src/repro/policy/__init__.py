"""Adaptive fetch-policy subsystem.

Replaces the old string-dispatch fetch policies with a registry of
:class:`~repro.policy.base.FetchPolicy` objects — the paper's five
static policies plus the ICOUNT_BRCOUNT hybrid — and adds
*meta-policies* (HYSTERESIS, BANDIT, TOURNAMENT) that select among the
static policies at runtime from per-interval pipeline signals.

See ``docs/policies.md`` for the full design; the compatibility shim
:func:`repro.core.fetch_policy.priority_order` keeps the old functional
interface for the static policies.
"""

from repro.policy.base import FetchPolicy
from repro.policy.meta import (
    Bandit,
    Hysteresis,
    MetaPolicy,
    Tournament,
)
from repro.policy.registry import (
    PolicyInfo,
    get_info,
    is_adaptive_spec,
    make_policy,
    meta_policy_names,
    parse_spec,
    policy_names,
    registry_entries,
    static_policy_names,
    validate_spec,
)
from repro.policy.signals import IntervalSignals, PhaseDetector, SignalTap

__all__ = [
    "Bandit",
    "FetchPolicy",
    "Hysteresis",
    "IntervalSignals",
    "MetaPolicy",
    "PhaseDetector",
    "PolicyInfo",
    "SignalTap",
    "Tournament",
    "get_info",
    "is_adaptive_spec",
    "make_policy",
    "meta_policy_names",
    "parse_spec",
    "policy_names",
    "registry_entries",
    "static_policy_names",
    "validate_spec",
]
