"""Per-interval signals and phase detection for the meta-policies.

Meta-policies decide *between* the paper's static policies from the
same signal set the telemetry layer samples — per-interval IPC, queue
occupancy, wrong-path and branch-mispredict rates, memory pressure —
but collect it themselves through a :class:`SignalTap`, so a policy
never conflicts with a user-attached
:class:`~repro.core.telemetry.TelemetrySampler` (the simulator allows
only one of those) and keeps working outside the measurement window,
where ``Stats`` counters are frozen.

The tap registers commit/squash listeners through the simulator's
composing listener chain (so tracer, telemetry, metrics, and sanitizer
all still coexist) and reads instantaneous state — queue populations,
outstanding misses, fetch sequence numbers — only at interval edges.

:class:`PhaseDetector` segments the signal stream into *phases* by
windowed deltas: each interval's normalised signature vector is
compared against the running centroid of the current phase; a large
jump closes the phase and either revisits the nearest previously seen
centroid (recurring phases keep their identity, so per-phase learning
accumulates) or opens a new one.  Everything is plain float arithmetic
on deterministic inputs — no clocks, no unseeded randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


@dataclass
class IntervalSignals:
    """Signal deltas and edge samples for one interval
    ``[cycle_start, cycle_end)``."""

    cycle_start: int
    cycle_end: int
    n_threads: int
    committed: int            # interval delta (commit listener)
    control_committed: int    # committed control instructions
    mispredicts: int          # committed mispredicted control instructions
    squashed: int             # uops squashed in the interval
    fetched: int              # interval delta of fetch sequence numbers
    iq_occupancy: int         # int + fp queue population at the edge
    iq_capacity: int          # combined capacity of both queues
    outstanding_misses: int   # D-cache misses in flight at the edge
    icache_blocked: int       # threads waiting on an I-cache fill

    @property
    def cycles(self) -> int:
        return self.cycle_end - self.cycle_start

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def iq_frac(self) -> float:
        """Queue occupancy as a fraction of combined capacity (the
        pressure ICOUNT attacks)."""
        return self.iq_occupancy / self.iq_capacity if self.iq_capacity else 0.0

    @property
    def wrong_path_frac(self) -> float:
        """Squashed over fetched — the waste BRCOUNT attacks."""
        return self.squashed / self.fetched if self.fetched else 0.0

    @property
    def mispredict_rate(self) -> float:
        return (self.mispredicts / self.control_committed
                if self.control_committed else 0.0)

    @property
    def miss_pressure(self) -> float:
        """Outstanding misses per thread, clamped to [0, 1] (the
        pressure MISSCOUNT attacks)."""
        if not self.n_threads:
            return 0.0
        return min(1.0, self.outstanding_misses / self.n_threads)

    @property
    def icache_frac(self) -> float:
        """Fraction of threads stalled on an I-cache fill at the edge."""
        return self.icache_blocked / self.n_threads if self.n_threads else 0.0

    def signature(self) -> Tuple[float, float, float, float]:
        """Normalised phase-signature vector (each component in [0,1])."""
        return (
            min(1.0, self.ipc / 8.0),
            self.iq_frac,
            min(1.0, self.mispredict_rate),
            self.miss_pressure,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycle_start": self.cycle_start,
            "cycle_end": self.cycle_end,
            "ipc": round(self.ipc, 6),
            "iq_frac": round(self.iq_frac, 6),
            "wrong_path_frac": round(self.wrong_path_frac, 6),
            "mispredict_rate": round(self.mispredict_rate, 6),
            "miss_pressure": round(self.miss_pressure, 6),
            "icache_frac": round(self.icache_frac, 6),
        }


class SignalTap:
    """Collects :class:`IntervalSignals` from a live simulator.

    Delta counters accumulate through commit/squash listeners (always
    active, unlike ``Stats``); edge state is read directly when
    :meth:`close` is called at an interval boundary.  The owning
    meta-policy drives the boundaries from its per-cycle ``tick``.
    """

    def __init__(self, interval: int):
        if interval < 1:
            raise ValueError("signal interval must be >= 1")
        self.interval = interval
        self.sim: Optional["Simulator"] = None
        self.next_boundary = interval
        self._start = 0
        self._commits = 0
        self._control = 0
        self._mispredicts = 0
        self._squashed = 0
        self._fetch_base = 0

    # ------------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        self.sim = sim
        sim.add_commit_listener(self._on_commit)
        sim.add_squash_listener(self._on_squash)
        self._start = sim.cycle
        self.next_boundary = sim.cycle + self.interval
        self._fetch_base = sum(t.next_seq for t in sim.threads)

    # ------------------------------------------------------------------
    def _on_commit(self, uop) -> None:
        self._commits += 1
        if uop.is_control:
            self._control += 1
            if uop.mispredicted:
                self._mispredicts += 1

    def _on_squash(self, uop) -> None:
        self._squashed += 1

    # ------------------------------------------------------------------
    def close(self, cycle: int) -> IntervalSignals:
        """Close the open interval at ``cycle`` and start the next."""
        sim = self.sim
        threads = sim.threads
        fetched_now = sum(t.next_seq for t in threads)
        signals = IntervalSignals(
            cycle_start=self._start,
            cycle_end=cycle,
            n_threads=len(threads),
            committed=self._commits,
            control_committed=self._control,
            mispredicts=self._mispredicts,
            squashed=self._squashed,
            fetched=fetched_now - self._fetch_base,
            iq_occupancy=(len(sim.int_queue.entries)
                          + len(sim.fp_queue.entries)),
            iq_capacity=sim.int_queue.capacity + sim.fp_queue.capacity,
            outstanding_misses=sum(t.misscount(cycle) for t in threads),
            icache_blocked=sum(
                1 for t in threads if t.pending_ifill_line is not None
            ),
        )
        self._start = cycle
        self.next_boundary = cycle + self.interval
        self._commits = self._control = self._mispredicts = 0
        self._squashed = 0
        self._fetch_base = fetched_now
        return signals


class PhaseDetector:
    """Online phase segmentation over the interval-signal stream.

    Each observed signature either extends the current phase (updating
    its running centroid), jumps back to the nearest previously seen
    phase, or opens a new one.  Phase identifiers are small ints,
    assigned in first-seen order — deterministic given the stream.
    """

    def __init__(self, threshold: float = 0.25, max_phases: int = 16):
        if threshold <= 0:
            raise ValueError("phase threshold must be positive")
        if max_phases < 1:
            raise ValueError("max_phases must be >= 1")
        self.threshold = threshold
        self.max_phases = max_phases
        #: Per-phase running centroid and observation count.
        self.centroids: List[List[float]] = []
        self.counts: List[int] = []
        self.phase = 0
        self.transitions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _distance(a, b) -> float:
        return sum(abs(x - y) for x, y in zip(a, b))

    def _absorb(self, phase: int, vec) -> None:
        centroid = self.centroids[phase]
        self.counts[phase] += 1
        n = self.counts[phase]
        for i, x in enumerate(vec):
            centroid[i] += (x - centroid[i]) / n

    # ------------------------------------------------------------------
    def observe(self, signals: IntervalSignals) -> int:
        """Fold one interval in; returns the (possibly new) phase id."""
        vec = signals.signature()
        if not self.centroids:
            self.centroids.append(list(vec))
            self.counts.append(1)
            return self.phase
        if self._distance(vec, self.centroids[self.phase]) <= self.threshold:
            self._absorb(self.phase, vec)
            return self.phase
        # Windowed delta exceeded: the program changed behaviour.
        # Revisit the nearest known phase if it is close enough,
        # otherwise open a new phase (bounded; overflow folds into the
        # nearest centroid instead of growing without limit).
        best, best_dist = 0, float("inf")
        for i, centroid in enumerate(self.centroids):
            dist = self._distance(vec, centroid)
            if dist < best_dist:
                best, best_dist = i, dist
        if best_dist > self.threshold and len(self.centroids) < self.max_phases:
            self.centroids.append(list(vec))
            self.counts.append(1)
            best = len(self.centroids) - 1
        else:
            self._absorb(best, vec)
        if best != self.phase:
            self.transitions += 1
        self.phase = best
        return best

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "phases": len(self.centroids),
            "transitions": self.transitions,
            "current": self.phase,
        }
