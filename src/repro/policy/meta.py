"""Meta-policies: exploiting choice one level up.

The paper evaluates five static fetch policies and leaves hybrids as
future work.  These classes select *among* those policies at runtime,
one static "arm" active at a time, re-decided at fixed cycle intervals
from the :mod:`repro.policy.signals` stream:

HYSTERESIS
    Reactive pressure matching: each candidate arm has a proxy metric
    for the pathology it attacks (IQ occupancy for ICOUNT, wrong-path
    fraction for BRCOUNT, outstanding-miss pressure for MISSCOUNT);
    switch to the arm whose pressure is currently worst, but only after
    it has won ``dwell`` consecutive intervals — the hysteresis that
    prevents policy thrash.

BANDIT
    A deterministic, seed-driven multi-armed bandit (epsilon-greedy or
    UCB1) whose arm statistics are kept *per program phase* (see
    :class:`~repro.policy.signals.PhaseDetector`), so it converges on
    the best static policy for each recurring phase rather than one
    global compromise.

TOURNAMENT
    Paper-style dueling between two configured arms: sample each for
    one interval, bump a saturating counter toward the winner, then
    exploit the counter's favourite for a stretch before re-sampling.

All three are pure functions of ``(SMTConfig, seed)`` and the simulated
event stream; two runs with the same inputs make bit-identical choices.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.policy.base import FetchPolicy
from repro.policy.signals import IntervalSignals, PhaseDetector, SignalTap
from repro.policy.static import STATIC_POLICY_CLASSES

_STATIC_BY_NAME = {cls.name: cls for cls in STATIC_POLICY_CLASSES}

#: Switch events kept verbatim for export (the count is always exact).
MAX_SWITCH_EVENTS = 512


def _make_arms(names: Sequence[str]) -> Dict[str, FetchPolicy]:
    arms = {}
    for name in names:
        if name not in _STATIC_BY_NAME:
            raise ValueError(
                f"meta-policy arm {name!r} is not a static policy "
                f"(valid arms: {', '.join(sorted(_STATIC_BY_NAME))})"
            )
        if name in arms:
            raise ValueError(f"duplicate meta-policy arm {name!r}")
        arms[name] = _STATIC_BY_NAME[name]()
    return arms


class MetaPolicy(FetchPolicy):
    """Shared machinery: interval ticking, arm delegation, switch and
    choice accounting.  Subclasses implement ``_decide``."""

    adaptive = True

    def __init__(self, arms: Sequence[str], interval: int, initial: str):
        if interval < 1:
            raise ValueError("meta-policy interval must be >= 1")
        self.arms = _make_arms(arms)
        self.arm_names = tuple(self.arms)
        if initial not in self.arms:
            raise ValueError(f"initial arm {initial!r} not among arms")
        self.current = initial
        self.interval = interval
        self.tap = SignalTap(interval)
        #: The raw config spec (set by the registry after construction).
        self.spec: str = self.name
        self.intervals = 0
        self.choice_counts: Dict[str, int] = {n: 0 for n in self.arm_names}
        self.switch_count = 0
        self.switch_events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        self.tap.bind(sim)

    def tick(self, cycle: int) -> None:
        if cycle >= self.tap.next_boundary:
            signals = self.tap.close(cycle)
            self.intervals += 1
            # Charge the interval that just closed to the arm that ran it.
            self.choice_counts[self.current] += 1
            self._decide(signals, cycle)

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        return self.arms[self.current].order(
            candidates, cycle, rr_offset, n_threads, int_queue, fp_queue
        )

    # ------------------------------------------------------------------
    def _decide(self, signals: IntervalSignals, cycle: int) -> None:
        raise NotImplementedError

    def _switch(self, to: str, cycle: int, reason: str) -> None:
        if to == self.current:
            return
        self.switch_count += 1
        if len(self.switch_events) < MAX_SWITCH_EVENTS:
            self.switch_events.append({
                "cycle": cycle, "from": self.current, "to": to,
                "reason": reason,
            })
        self.current = to

    # ------------------------------------------------------------------
    def telemetry(self) -> Dict[str, Any]:
        return {
            "policy": self.name,
            "spec": self.spec,
            "adaptive": True,
            "interval": self.interval,
            "intervals": self.intervals,
            "arms": list(self.arm_names),
            "current": self.current,
            "choice_counts": dict(self.choice_counts),
            "switch_count": self.switch_count,
            "switch_events": list(self.switch_events),
        }


# ----------------------------------------------------------------------
class Hysteresis(MetaPolicy):
    name = "HYSTERESIS"
    description = ("switch to the policy whose proxy pressure is worst "
                   "(IQ clog/wrong path/miss stalls), with a dwell time")

    #: Proxy pressure per arm, computed from the interval signals.  The
    #: weights put the three pressures on a comparable scale: queue
    #: occupancy is naturally 0..1, wrong-path fraction rarely exceeds
    #: ~0.3, miss pressure saturates at one outstanding miss per thread.
    def __init__(self, interval: int = 200, dwell: int = 3,
                 floor: float = 0.10, wrong_path_weight: float = 2.0,
                 miss_weight: float = 1.0):
        super().__init__(("ICOUNT", "BRCOUNT", "MISSCOUNT"),
                         interval=interval, initial="ICOUNT")
        if dwell < 1:
            raise ValueError("dwell must be >= 1")
        self.dwell = dwell
        self.floor = floor
        self.wrong_path_weight = wrong_path_weight
        self.miss_weight = miss_weight
        self._challenger: Optional[str] = None
        self._streak = 0

    def _pressures(self, signals: IntervalSignals) -> Dict[str, float]:
        return {
            "ICOUNT": signals.iq_frac,
            "BRCOUNT": signals.wrong_path_frac * self.wrong_path_weight,
            "MISSCOUNT": signals.miss_pressure * self.miss_weight,
        }

    def _decide(self, signals: IntervalSignals, cycle: int) -> None:
        pressures = self._pressures(signals)
        # Worst pressure wins; ties resolve in fixed arm order.  Below
        # the floor nothing is clogged and ICOUNT (the paper's best
        # all-rounder) is the default.
        target = max(self.arm_names, key=lambda n: (pressures[n], -self.arm_names.index(n)))
        if pressures[target] < self.floor:
            target = "ICOUNT"
        if target == self.current:
            self._challenger, self._streak = None, 0
            return
        if target == self._challenger:
            self._streak += 1
        else:
            self._challenger, self._streak = target, 1
        if self._streak >= self.dwell:
            self._switch(
                target, cycle,
                f"pressure {pressures[target]:.3f} worst for "
                f"{self._streak} intervals",
            )
            self._challenger, self._streak = None, 0

    def telemetry(self) -> Dict[str, Any]:
        data = super().telemetry()
        data["dwell"] = self.dwell
        return data


# ----------------------------------------------------------------------
class Bandit(MetaPolicy):
    name = "BANDIT"
    description = ("seed-driven epsilon-greedy/UCB over the static "
                   "policies, with per-phase arm statistics")

    DEFAULT_ARMS = ("ICOUNT", "BRCOUNT", "MISSCOUNT", "RR", "IQPOSN")

    def __init__(self, arms: Sequence[str] = DEFAULT_ARMS,
                 interval: int = 150, epsilon: float = 0.1,
                 mode: str = "egreedy", ucb_c: float = 0.5,
                 phase_threshold: float = 0.25, rng_seed: int = 0):
        super().__init__(arms, interval=interval, initial=arms[0])
        if mode not in ("egreedy", "ucb"):
            raise ValueError("bandit mode must be 'egreedy' or 'ucb'")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.mode = mode
        self.ucb_c = ucb_c
        self.rng = random.Random(rng_seed)
        self.phases = PhaseDetector(threshold=phase_threshold)
        #: (phase, arm) -> [pulls, total reward].
        self._stats: Dict[Any, List[float]] = {}

    # ------------------------------------------------------------------
    def _arm_stats(self, phase: int, arm: str) -> List[float]:
        return self._stats.setdefault((phase, arm), [0, 0.0])

    def _best_arm(self, phase: int) -> str:
        # Unplayed arms first (optimistic init), in fixed arm order, so
        # every arm gets sampled once per phase before exploitation.
        for arm in self.arm_names:
            if self._arm_stats(phase, arm)[0] == 0:
                return arm
        if self.mode == "ucb":
            total = sum(self._arm_stats(phase, a)[0] for a in self.arm_names)
            log_total = math.log(total)

            def score(arm: str) -> float:
                pulls, reward = self._arm_stats(phase, arm)
                return reward / pulls + self.ucb_c * math.sqrt(
                    log_total / pulls
                )
        else:
            def score(arm: str) -> float:
                pulls, reward = self._arm_stats(phase, arm)
                return reward / pulls
        # Ties resolve in fixed arm order (max keeps the first maximum).
        return max(self.arm_names, key=lambda a: (score(a), -self.arm_names.index(a)))

    # ------------------------------------------------------------------
    def _decide(self, signals: IntervalSignals, cycle: int) -> None:
        phase = self.phases.observe(signals)
        stats = self._arm_stats(phase, self.current)
        stats[0] += 1
        stats[1] += signals.ipc
        if self.mode == "egreedy" and self.rng.random() < self.epsilon:
            arm = self.arm_names[self.rng.randrange(len(self.arm_names))]
            reason = f"explore (phase {phase})"
        else:
            arm = self._best_arm(phase)
            reason = f"exploit (phase {phase})"
        self._switch(arm, cycle, reason)

    def telemetry(self) -> Dict[str, Any]:
        data = super().telemetry()
        data["mode"] = self.mode
        data["epsilon"] = self.epsilon
        data["phase"] = self.phases.to_dict()
        return data


# ----------------------------------------------------------------------
class Tournament(MetaPolicy):
    name = "TOURNAMENT"
    description = ("dueling saturating counter between two arms: sample "
                   "each, bump toward the winner, exploit, repeat")

    COUNTER_MAX = 15

    def __init__(self, arms: Sequence[str] = ("ICOUNT", "BRCOUNT"),
                 interval: int = 150, exploit: int = 6):
        if len(arms) != 2:
            raise ValueError("TOURNAMENT duels exactly two arms")
        super().__init__(arms, interval=interval, initial=arms[0])
        if exploit < 1:
            raise ValueError("exploit span must be >= 1")
        self.exploit = exploit
        self.counter = (self.COUNTER_MAX + 1) // 2   # start undecided
        self._state = "sample_a"
        self._reward_a = 0.0
        self._exploit_left = 0

    @property
    def leader(self) -> str:
        mid = (self.COUNTER_MAX + 1) / 2
        return self.arm_names[0] if self.counter >= mid else self.arm_names[1]

    def _decide(self, signals: IntervalSignals, cycle: int) -> None:
        a, b = self.arm_names
        if self._state == "sample_a":
            self._reward_a = signals.ipc
            self._state = "sample_b"
            self._switch(b, cycle, "duel: sampling challenger")
        elif self._state == "sample_b":
            reward_b = signals.ipc
            if self._reward_a > reward_b and self.counter < self.COUNTER_MAX:
                self.counter += 1
            elif reward_b > self._reward_a and self.counter > 0:
                self.counter -= 1
            self._state = "exploit"
            self._exploit_left = self.exploit
            self._switch(
                self.leader, cycle,
                f"duel {self._reward_a:.2f} vs {reward_b:.2f} "
                f"(counter {self.counter})",
            )
        else:
            self._exploit_left -= 1
            if self._exploit_left <= 0:
                self._state = "sample_a"
                self._switch(a, cycle, "duel: sampling incumbent")

    def telemetry(self) -> Dict[str, Any]:
        data = super().telemetry()
        data["counter"] = self.counter
        data["leader"] = self.leader
        return data


META_POLICY_CLASSES = (Hysteresis, Bandit, Tournament)
