"""The paper's static fetch policies (Section 5.2) as registry classes.

Each class reproduces one row of the paper's policy study; the ranking
logic is unchanged from the original ``priority_order`` dispatch (which
now delegates here).  Ties always break round-robin.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.policy.base import FetchPolicy, rr_rank


class RoundRobin(FetchPolicy):
    name = "RR"
    description = "round-robin rotation (the paper's baseline)"

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        return sorted(
            candidates, key=lambda t: rr_rank(t, rr_offset, n_threads)
        )


class Brcount(FetchPolicy):
    name = "BRCOUNT"
    description = ("fewest unresolved branches first — favours threads "
                   "least likely to be on a wrong path")

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        return sorted(
            candidates,
            key=lambda t: (t.unresolved_branches,
                           rr_rank(t, rr_offset, n_threads)),
        )


class Misscount(FetchPolicy):
    name = "MISSCOUNT"
    description = ("fewest outstanding D-cache misses first — attacks "
                   "IQ clog from long memory latencies")

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        return sorted(
            candidates,
            key=lambda t: (t.misscount(cycle),
                           rr_rank(t, rr_offset, n_threads)),
        )


class Icount(FetchPolicy):
    name = "ICOUNT"
    description = ("fewest pre-issue instructions first — the paper's "
                   "winner: prevents IQ clog, favours fast-moving threads")

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        return sorted(
            candidates,
            key=lambda t: (t.unissued_count,
                           rr_rank(t, rr_offset, n_threads)),
        )


class IcountBrcount(FetchPolicy):
    name = "ICOUNT_BRCOUNT"
    description = ("weighted ICOUNT + 3x unresolved branches — the "
                   "hybrid the paper suggests as future work")

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        # Each unresolved branch is weighted as a few queued
        # instructions (expected wrong-path cost at ~10% misprediction
        # times a 7-cycle shadow is on that order).
        return sorted(
            candidates,
            key=lambda t: (t.unissued_count + 3 * t.unresolved_branches,
                           rr_rank(t, rr_offset, n_threads)),
        )


class Iqposn(FetchPolicy):
    name = "IQPOSN"
    description = ("penalise threads closest to either queue head "
                   "(oldest = most clog-prone); needs no counters")

    def order(self, candidates, cycle, rr_offset, n_threads,
              int_queue, fp_queue):
        def posn_key(t):
            closest = min(
                int_queue.oldest_position_of_thread(t.tid),
                fp_queue.oldest_position_of_thread(t.tid),
            )
            return (-closest, rr_rank(t, rr_offset, n_threads))

        return sorted(candidates, key=posn_key)


STATIC_POLICY_CLASSES = (
    RoundRobin, Brcount, Misscount, Icount, Iqposn, IcountBrcount,
)
