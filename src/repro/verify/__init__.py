"""Correctness tooling: runtime invariant sanitizing and differential
fuzzing of the timing pipeline against the architectural oracle.

* :class:`~repro.verify.sanitizer.PipelineSanitizer` attaches to a live
  :class:`~repro.core.simulator.Simulator` and checks structural
  invariants every cycle, raising a structured
  :class:`~repro.verify.sanitizer.InvariantViolation` on the first
  breach.
* :mod:`repro.verify.fuzz` generates random (config x workload x seed)
  simulations, runs them with the sanitizer attached in lockstep with
  per-thread emulator oracles, shrinks failures to minimal reproducers,
  and maintains the ``tests/corpus/`` golden-regression directory.
* :mod:`repro.verify.chaos` injects deterministic, seeded faults
  (worker kills, stalls, dropped heartbeats, torn journal tails,
  corrupted cache entries) into the campaign scheduler
  (:mod:`repro.sched`) and proves recovery: no run lost, none
  double-counted, reports bit-identical to a fault-free execution.

See ``docs/testing.md`` for the invariant catalogue and workflow, and
``docs/fabric.md`` for the scheduler failure matrix the chaos harness
enforces.
"""

from repro.verify.sanitizer import InvariantViolation, PipelineSanitizer
from repro.verify.chaos import (
    Fault,
    FaultPlan,
    corrupt_cache_entry,
    run_chaos_campaign,
    tear_journal_tail,
)
from repro.verify.fuzz import (
    FuzzCase,
    FuzzOutcome,
    generate_case,
    load_corpus_case,
    run_case,
    save_corpus_case,
    shrink_case,
)

__all__ = [
    "InvariantViolation",
    "PipelineSanitizer",
    "Fault",
    "FaultPlan",
    "FuzzCase",
    "FuzzOutcome",
    "corrupt_cache_entry",
    "generate_case",
    "load_corpus_case",
    "run_case",
    "run_chaos_campaign",
    "save_corpus_case",
    "shrink_case",
    "tear_journal_tail",
]
