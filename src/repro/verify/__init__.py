"""Correctness tooling: runtime invariant sanitizing and differential
fuzzing of the timing pipeline against the architectural oracle.

* :class:`~repro.verify.sanitizer.PipelineSanitizer` attaches to a live
  :class:`~repro.core.simulator.Simulator` and checks structural
  invariants every cycle, raising a structured
  :class:`~repro.verify.sanitizer.InvariantViolation` on the first
  breach.
* :mod:`repro.verify.fuzz` generates random (config x workload x seed)
  simulations, runs them with the sanitizer attached in lockstep with
  per-thread emulator oracles, shrinks failures to minimal reproducers,
  and maintains the ``tests/corpus/`` golden-regression directory.

See ``docs/testing.md`` for the invariant catalogue and workflow.
"""

from repro.verify.sanitizer import InvariantViolation, PipelineSanitizer
from repro.verify.fuzz import (
    FuzzCase,
    FuzzOutcome,
    generate_case,
    load_corpus_case,
    run_case,
    save_corpus_case,
    shrink_case,
)

__all__ = [
    "InvariantViolation",
    "PipelineSanitizer",
    "FuzzCase",
    "FuzzOutcome",
    "generate_case",
    "load_corpus_case",
    "run_case",
    "save_corpus_case",
    "shrink_case",
]
