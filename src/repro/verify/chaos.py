"""Deterministic fault injection for the campaign scheduler.

The scheduler's crash-recovery claims (no run lost, no run
double-counted, reports bit-identical to a fault-free execution) are
only worth what the harness that attacks them is worth.  This module
supplies that harness in two forms:

* **In-process chaos** (:func:`run_chaos_campaign`): N workers drained
  on a *virtual clock* by a deterministic controller.  Each worker's
  loop is decomposed into the sub-steps :mod:`repro.sched.worker`
  exposes (claim → work ticks with heartbeats → finish), and a seeded
  :class:`FaultPlan` fires faults *between* sub-steps — the exact
  interleavings real SIGKILLs produce, replayed identically on every
  run of the same seed.  Faults: kill a worker mid-lease, stall a
  worker (heartbeats stop, the lease expires, the stalled worker later
  finishes anyway — exercising the duplicate-terminal path), drop
  individual heartbeats, tear the journal tail mid-record, and corrupt
  result-store entries.
* **Real-process faults** (:func:`install_process_faults`): hooks for
  ``repro worker --chaos plan.json`` that SIGKILL the live worker
  process at a chosen point or drop its heartbeats — used by the CI
  chaos smoke job to exercise recovery across genuine process death.
* **Network faults** (:func:`chaos_submit`,
  :func:`install_service_faults`): attacks on the campaign service
  transport — dropped and half-written request frames, clients that
  disconnect before reading their ack, and a server that dies between
  accepting a submit and flushing its journal append (leaving a torn
  tail).  Because submission is content-addressed and idempotent, a
  clean retry after any of these must converge to exactly the same
  journal — and the same byte-identical report — as a fault-free
  filesystem submission.

The chaos suite (``tests/verify/test_chaos.py``) asserts, for every
fault mix: each submitted RunSpec reaches exactly one terminal state,
nothing is lost or double-counted, and the final campaign report is
byte-identical to the fault-free baseline.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sched.campaign import (
    CampaignConfig,
    default_result_store,
    submit_specs,
)
from repro.sched.journal import journal_path
from repro.sched.state import load_state
from repro.sched.worker import Worker

#: Fault kinds the in-process controller understands.
FAULT_KINDS = (
    "kill-worker",      # SIGKILL equivalent: the worker stops, mid-lease
    "stall-worker",     # hang: no heartbeats for `ticks`, then resume
    "drop-heartbeat",   # one heartbeat silently lost
    "tear-journal",     # truncate the journal tail mid-record
    "corrupt-cache",    # scribble over a stored result entry
)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: *what* happens to *whom* at which tick."""

    kind: str
    tick: int                    # controller tick at which it fires
    worker: int = 0              # target worker slot (kill/stall/drop)
    ticks: int = 0               # stall duration, in controller ticks
    fraction: float = 0.5        # how much of the torn record survives

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "tick": self.tick,
                "worker": self.worker, "ticks": self.ticks,
                "fraction": self.fraction}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        return cls(kind=str(data["kind"]), tick=int(data["tick"]),
                   worker=int(data.get("worker", 0)),
                   ticks=int(data.get("ticks", 0)),
                   fraction=float(data.get("fraction", 0.5)))


@dataclass
class FaultPlan:
    """A seeded, serialisable fault schedule."""

    seed: int = 0
    faults: List[Fault] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int = 6,
        horizon: int = 40,
        n_workers: int = 2,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible plan: same seed, same faults, same ticks."""
        rng = random.Random(seed)
        faults = [
            Fault(
                kind=rng.choice(list(kinds)),
                tick=rng.randrange(1, max(2, horizon)),
                worker=rng.randrange(max(1, n_workers)),
                ticks=rng.randrange(2, 6),
                fraction=rng.uniform(0.1, 0.9),
            )
            for _ in range(n_faults)
        ]
        faults.sort(key=lambda f: (f.tick, f.kind, f.worker))
        return cls(seed=seed, faults=faults)

    def at(self, tick: int) -> List[Fault]:
        return [f for f in self.faults if f.tick == tick]

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(seed=int(data.get("seed", 0)),
                   faults=[Fault.from_dict(f)
                           for f in data.get("faults", [])])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Fault primitives (also used directly by tests).
# ----------------------------------------------------------------------
def tear_journal_tail(directory: str, fraction: float = 0.5) -> bool:
    """Truncate the journal's final record mid-line, as a crashed writer
    would leave it.  ``fraction`` of the record's bytes survive (no
    trailing newline).  Returns ``False`` when there is nothing to tear.

    Replay skips the torn fragment; the task it described re-runs from
    the last intact record — recovery must converge to the same report
    because runs are deterministic and completion is idempotent.
    """
    path = journal_path(directory)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return False
    stripped = data.rstrip(b"\n")
    if not stripped:
        return False
    cut = stripped.rfind(b"\n")
    last = stripped[cut + 1:]
    keep = max(1, int(len(last) * max(0.0, min(fraction, 0.95))))
    with open(path, "wb") as handle:
        handle.write(stripped[:cut + 1] + last[:keep])
    return True


def corrupt_cache_entry(cache_directory: str, index: int = 0) -> Optional[str]:
    """Overwrite one stored result with garbage bytes (bit-rot /
    half-written entry).  Deterministic: entries are taken in sorted
    filename order, ``index`` modulo the population.  Returns the
    corrupted key, or ``None`` when the store is empty.

    ``ResultCache.get`` must treat the damage as a miss (quarantining
    the evidence), and report generation must recompute — never serve
    or crash on — the poisoned entry.
    """
    try:
        entries = sorted(
            name for name in os.listdir(cache_directory)
            if name.endswith(".json")
        )
    except FileNotFoundError:
        return None
    if not entries:
        return None
    name = entries[index % len(entries)]
    with open(os.path.join(cache_directory, name), "r+b") as handle:
        handle.seek(0)
        handle.write(b'{"corrupted by chaos": tru')
    return name[:-len(".json")]


# ----------------------------------------------------------------------
# The in-process chaos controller.
# ----------------------------------------------------------------------
class _VirtualClock:
    """Deterministic time for chaos runs; only the controller advances it."""

    def __init__(self, start: float = 1_000.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        self._now += dt
        return self._now


class _ChaosWorker:
    """One worker's decomposed loop, advanced one sub-step per tick.

    Phases: ``idle`` (try to claim) → ``working`` (``work_ticks``
    heartbeat ticks — where kills and stalls land mid-lease) →
    finish (journal the terminal record) → ``idle``.  A *stalled*
    worker skips ticks without heartbeating — its lease expires and is
    reclaimed — then wakes and finishes anyway, producing the late
    duplicate terminal record the first-wins replay must absorb.
    """

    def __init__(self, worker: Worker, work_ticks: int):
        self.worker = worker
        self.work_ticks = work_ticks
        self.task = None
        self.outcome = None
        self.ticks_left = 0
        self.alive = True
        self.stalled_until = -1
        self.drop_next_heartbeat = False

    def tick(self, index: int) -> bool:
        """Advance one sub-step; ``True`` if any journal write happened."""
        if not self.alive or index < self.stalled_until:
            return False
        if self.task is None:
            self.task = self.worker.claim_task()
            if self.task is None:
                return False
            self.ticks_left = self.work_ticks
            return True
        if self.ticks_left > 0:
            self.ticks_left -= 1
            if self.drop_next_heartbeat:
                self.drop_next_heartbeat = False
            else:
                self.worker.send_heartbeat(self.task)
            return True
        if self.outcome is None:
            self.outcome = self.worker.execute(self.task)
        self.worker.finish_task(self.task, self.outcome)
        self.task, self.outcome = None, None
        return True

    def kill(self) -> None:
        """SIGKILL equivalent: stop forever, journal nothing more.  The
        lease (if any) dies with the worker and must be reclaimed."""
        self.alive = False
        self.task, self.outcome = None, None


@dataclass
class ChaosOutcome:
    """What a chaos campaign did, for assertions."""

    report: Dict[str, Any]
    state: Any
    killed_workers: List[str] = field(default_factory=list)
    torn: int = 0
    corrupted: List[str] = field(default_factory=list)
    ticks: int = 0

    @property
    def report_bytes(self) -> bytes:
        from repro.experiments.export import fabric_report_bytes

        return fabric_report_bytes(self.report)


def run_chaos_campaign(
    directory: str,
    specs: Sequence[Any],
    run_fn: Callable[[Any], Any],
    plan: Optional[FaultPlan] = None,
    n_workers: int = 2,
    work_ticks: int = 2,
    tick_seconds: float = 1.0,
    lease_ttl: float = 3.0,
    max_attempts: int = 10,
    poison_threshold: int = 10,
    max_ticks: int = 4_000,
    config: Optional[CampaignConfig] = None,
) -> ChaosOutcome:
    """Drain ``specs`` through ``n_workers`` chaos-driven workers.

    Entirely deterministic: virtual clock, seeded plan, no threads, no
    real signals.  Killed workers are replaced (with fresh identities —
    feeding the poison detector distinct suspects) so the campaign
    always terminates; the loop runs until every task is terminal and
    asserts progress against ``max_ticks`` as a runaway backstop.

    The default ``max_attempts``/``poison_threshold`` are deliberately
    generous: for bit-identity against a fault-free baseline, an
    *environmental* fault (a kill, a stall) must never change a task's
    terminal state — only genuinely deterministic failures may.  Tests
    probing the bounded-retry and poison paths pass tight values
    explicitly (and give up the baseline comparison for those tasks).
    """
    clock = _VirtualClock()
    store = default_result_store(directory)
    config = config or CampaignConfig(
        name="chaos", lease_ttl=lease_ttl, max_attempts=max_attempts,
        poison_threshold=poison_threshold, backoff=tick_seconds,
    )
    submit_specs(directory, specs, config)

    def spawn(slot: int, generation: int) -> _ChaosWorker:
        worker = Worker(
            directory, cache=store,
            worker_id=f"chaos-w{slot}g{generation}",
            run_fn=run_fn, clock=clock.now, heartbeats=False,
        )
        return _ChaosWorker(worker, work_ticks=work_ticks)

    slots = [spawn(i, 0) for i in range(max(1, n_workers))]
    generations = [0] * len(slots)
    outcome = ChaosOutcome(report={}, state=None)
    plan = plan or FaultPlan(seed=0)

    tick = 0
    while tick < max_ticks:
        state = load_state(directory)
        if state.tasks and state.all_terminal():
            break
        for fault in plan.at(tick):
            slot = fault.worker % len(slots)
            if fault.kind == "kill-worker":
                target = slots[slot]
                if target.alive:
                    target.kill()
                    outcome.killed_workers.append(target.worker.worker_id)
                    generations[slot] += 1
                    slots[slot] = spawn(slot, generations[slot])
                    # The replacement joins after one lease TTL (a
                    # supervisor restart is never instant).
                    slots[slot].stalled_until = tick + int(
                        lease_ttl / tick_seconds) + 1
            elif fault.kind == "stall-worker":
                slots[slot].stalled_until = tick + max(1, fault.ticks)
            elif fault.kind == "drop-heartbeat":
                slots[slot].drop_next_heartbeat = True
            elif fault.kind == "tear-journal":
                if tear_journal_tail(directory, fault.fraction):
                    outcome.torn += 1
            elif fault.kind == "corrupt-cache":
                key = corrupt_cache_entry(store.directory, fault.tick)
                if key is not None:
                    outcome.corrupted.append(key)
        for chaos_worker in slots:
            chaos_worker.tick(tick)
        clock.advance(tick_seconds)
        tick += 1
    else:
        raise AssertionError(
            f"chaos campaign made no terminal progress in {max_ticks} "
            f"ticks: {load_state(directory).counts()}"
        )

    from repro.sched.campaign import campaign_report

    outcome.ticks = tick
    outcome.state = load_state(directory)
    outcome.report = campaign_report(directory, cache=store,
                                     run_fn=run_fn)
    return outcome


# ----------------------------------------------------------------------
# Real-process faults (``repro worker --chaos plan.json``).
# ----------------------------------------------------------------------
def install_process_faults(worker: Worker, plan: Dict[str, Any]) -> None:
    """Arm a live worker with self-inflicted faults, for smoke tests
    that need genuine process death.

    Plan keys (all optional):

    * ``kill_after_claims: N`` — SIGKILL this process right after its
      N-th successful claim (mid-lease, nothing journaled beyond the
      lease record).
    * ``kill_before_finish: N`` — SIGKILL right before journaling the
      N-th terminal record (the run executed; the result may already be
      cached — completion idempotency is what recovers it).
    * ``drop_heartbeats: true`` — never renew leases (a slow worker
      whose work outlives its TTL).
    """
    import signal as _signal

    counters = {"claims": 0, "finishes": 0}
    kill_after_claims = plan.get("kill_after_claims")
    kill_before_finish = plan.get("kill_before_finish")

    def _die() -> None:  # pragma: no cover - the process really dies
        os.kill(os.getpid(), _signal.SIGKILL)

    if kill_after_claims is not None:
        def on_claim(_worker: Worker, _task: Any) -> None:
            counters["claims"] += 1
            if counters["claims"] >= int(kill_after_claims):
                _die()
        worker.on_claim = on_claim

    if kill_before_finish is not None:
        def on_finish(_worker: Worker, _task: Any) -> None:
            counters["finishes"] += 1
            if counters["finishes"] >= int(kill_before_finish):
                _die()
        worker.on_finish = on_finish

    if plan.get("drop_heartbeats"):
        worker.on_heartbeat = lambda _worker, _task: False


# ----------------------------------------------------------------------
# Network faults (the campaign service transport).
# ----------------------------------------------------------------------
#: Fault kinds :func:`chaos_submit` can inject from the client side.
NETWORK_FAULT_KINDS = (
    "drop-frame",            # connect, send nothing, vanish
    "half-frame",            # send a truncated request line, then close
    "disconnect-mid-submit",  # full request sent, ack never read
    "kill-server-mid-submit",  # server dies post-append (needs arming)
)


def chaos_submit(
    address: str,
    specs: Sequence[Any],
    config: Optional[CampaignConfig] = None,
    kinds: Sequence[str] = NETWORK_FAULT_KINDS,
    token: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Submit ``specs`` over the service while attacking the transport.

    For each kind in ``kinds`` (in order, deterministically seeded), one
    faulty submission attempt is made with a raw socket — a dropped
    frame, a half-written frame, a full submit whose ack is never read,
    or (when the server is armed via :func:`install_service_faults`) a
    submit the server dies on after appending.  Then a *clean* retry
    through :class:`~repro.service.client.ServiceClient` converges: the
    journal is content-addressed, so however many of the faulty attempts
    actually landed records, the retry adds only what is missing and the
    final acked key set equals ``specs``.

    Returns ``{"injected": [...], "ack": {...}}`` — the faults that were
    actually delivered and the clean retry's submit response.
    """
    from repro.sched.campaign import spec_to_payload
    from repro.service.client import Endpoint, ServiceClient
    from repro.service.protocol import encode_frame, request_frame

    endpoint = Endpoint.parse(address)
    payloads = [spec_to_payload(spec) for spec in specs]
    config_payload = config.to_dict() if config is not None else None
    rng = random.Random(seed)
    injected: List[str] = []
    for kind in kinds:
        if kind not in NETWORK_FAULT_KINDS:
            raise ValueError(f"unknown network fault kind {kind!r}")
        frame = request_frame("submit", token=token, specs=payloads,
                              config=config_payload)
        data = encode_frame(frame)
        try:
            sock = endpoint.connect(5.0)
        except OSError:
            # Server already gone — itself a fault the retry absorbs.
            injected.append(kind + ":no-connect")
            continue
        try:
            if kind == "drop-frame":
                pass  # the connection itself is the only thing sent
            elif kind == "half-frame":
                cut = max(1, int(len(data) * rng.uniform(0.1, 0.9)))
                sock.sendall(data[:cut])
            else:
                # Full frame on the wire; the ack is lost either because
                # we leave (disconnect-mid-submit) or because the server
                # dies before sending it (kill-server-mid-submit).
                sock.sendall(data)
                if kind == "kill-server-mid-submit":
                    try:
                        sock.settimeout(5.0)
                        sock.recv(65536)  # EOF/reset from the abort
                    except OSError:
                        pass
        except OSError:
            pass  # an abort mid-send is exactly the point
        finally:
            sock.close()
        injected.append(kind)
    client = ServiceClient(address, token=token)
    ack = client.submit(payloads, config)
    return {"injected": injected, "ack": ack}


def install_service_faults(
    server: Any,
    kills: int = 1,
    point: str = "submit:post-journal",
    tear: bool = True,
    tear_fraction: float = 0.5,
) -> Dict[str, int]:
    """Arm a :class:`~repro.service.server.CampaignServer` to die
    mid-submit.

    The first ``kills`` times the server reaches ``point`` (default:
    after the journal append, before the ack), it optionally tears the
    journal tail mid-record — the on-disk shape of a SIGKILL between
    accept and a completed flush — and aborts the connection with
    nothing replied.  Clients see a dead socket; the journal holds a
    torn record that replay must repair; an idempotent resubmission
    must restore the lost task.

    Returns the live counter dict (``{"kills": n}``) so tests can
    assert the faults actually fired (``kills`` reaches 0).
    """
    from repro.service.server import ServiceKilled

    remaining = {"kills": int(kills)}

    def hook(reached: str) -> None:
        if reached == point and remaining["kills"] > 0:
            remaining["kills"] -= 1
            if tear:
                tear_journal_tail(server.directory, tear_fraction)
            raise ServiceKilled(reached)

    server.chaos_hook = hook
    return remaining
