"""Differential fuzzing of the timing pipeline against the oracle.

Each fuzz *case* is a seed-derived point in (machine configuration x
workload mix x run length) space.  Running a case builds the simulator,
attaches a :class:`~repro.verify.sanitizer.PipelineSanitizer` (which
holds per-thread shadow emulators in lockstep with the committed
stream), and steps the machine; any structural invariant breach or
architectural divergence surfaces as a failing
:class:`FuzzOutcome`.

Failures are *shrunk*: a greedy pass repeatedly simplifies the case
toward the default configuration — fewer cycles, fewer threads, knobs
back to their defaults — keeping each simplification only if the case
still fails.  The minimal reproducer is written into the committed
``tests/corpus/`` golden-regression directory (schema-versioned JSON)
which the test suite replays forever after.

Determinism: a case is a pure function of its seed, and running a case
is a pure function of the case, so any corpus entry or reported seed
reproduces exactly.

Entry points: ``repro fuzz`` (CLI), ``scripts/fuzz_diff.py``, or
:func:`fuzz_run` directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import (
    FETCH_POLICIES,
    ISSUE_POLICIES,
    SPECULATION_MODES,
    SMTConfig,
)
from repro.core.simulator import SimulationAborted, Simulator, Watchdog
from repro.experiments.supervise import (
    CampaignJournal,
    JournalState,
    Supervisor,
)
from repro.verify.sanitizer import InvariantViolation, PipelineSanitizer
from repro.workloads.profiles import PROFILES, profile_names

#: Schema stamped into corpus entries (see repro.experiments.export for
#: the violation-report schema this composes with).
FUZZ_CASE_SCHEMA = "repro.fuzz_case"
FUZZ_CASE_SCHEMA_VERSION = 1

#: The fetch-policy config space: every static policy plus adaptive
#: meta-policy specs (short intervals so several switch decisions land
#: inside a fuzz-length run).  Shrinking simplifies towards "RR".
FUZZ_FETCH_POLICIES = FETCH_POLICIES + (
    "HYSTERESIS:interval=120,dwell=2",
    "BANDIT:interval=100",
    "BANDIT:interval=100,mode=ucb",
    "TOURNAMENT:ICOUNT/BRCOUNT:interval=100",
)

#: A case that runs this many cycles with zero commits is reported as
#: stalled (a forward-progress bug) rather than ok.
_STALL_CYCLES = 1000


# ----------------------------------------------------------------------
# Case definition and generation.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One differential-fuzz point, fully specified and picklable."""

    seed: int
    n_threads: int
    fetch_policy: str
    fetch_threads: int
    fetch_per_thread: int
    issue_policy: str
    bigq: bool
    itag: bool
    smt_pipeline: bool
    optimistic_issue: bool
    speculation: str
    excess_registers: int
    perfect_branch_prediction: bool
    infinite_fus: bool
    infinite_memory_bandwidth: bool
    workload_names: Tuple[str, ...]
    workload_seed: int
    functional_warmup: int
    max_cycles: int
    check_interval: int = 1

    # ------------------------------------------------------------------
    def config(self) -> SMTConfig:
        return SMTConfig(
            n_threads=self.n_threads,
            fetch_policy=self.fetch_policy,
            fetch_threads=self.fetch_threads,
            fetch_per_thread=self.fetch_per_thread,
            issue_policy=self.issue_policy,
            bigq=self.bigq,
            itag=self.itag,
            smt_pipeline=self.smt_pipeline,
            optimistic_issue=self.optimistic_issue,
            speculation=self.speculation,
            excess_registers=self.excess_registers,
            perfect_branch_prediction=self.perfect_branch_prediction,
            infinite_fus=self.infinite_fus,
            infinite_memory_bandwidth=self.infinite_memory_bandwidth,
            # Adaptive meta-policies derive their exploration RNG from
            # the config seed, keeping each case a pure function of it.
            seed=self.seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["workload_names"] = list(self.workload_names)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown fuzz-case fields: {sorted(unknown)}")
        data = dict(data)
        data["workload_names"] = tuple(data["workload_names"])
        return cls(**data)

    def content_hash(self) -> str:
        """Stable identity (used to name corpus files)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def generate_case(seed: int, max_cycles: int = 3000,
                  check_interval: int = 1) -> FuzzCase:
    """Derive a random case from ``seed`` (pure: same seed, same case)."""
    rng = random.Random(0x5EED0000 + seed)
    n_threads = rng.choice((1, 1, 2, 2, 3, 4, 4, 6, 8))
    names = profile_names()
    workloads = tuple(rng.choice(names) for _ in range(n_threads))
    return FuzzCase(
        seed=seed,
        n_threads=n_threads,
        fetch_policy=rng.choice(FUZZ_FETCH_POLICIES),
        fetch_threads=rng.choice((1, 1, 2, 2, 2, 4)),
        fetch_per_thread=rng.choice((2, 4, 8, 8)),
        issue_policy=rng.choice(ISSUE_POLICIES),
        bigq=rng.random() < 0.25,
        itag=rng.random() < 0.25,
        smt_pipeline=rng.random() >= 0.15,
        optimistic_issue=rng.random() >= 0.15,
        speculation=rng.choice(
            SPECULATION_MODES if rng.random() < 0.3 else ("full",)
        ),
        excess_registers=rng.choice((32, 64, 100, 100, 200)),
        perfect_branch_prediction=rng.random() < 0.1,
        infinite_fus=rng.random() < 0.1,
        infinite_memory_bandwidth=rng.random() < 0.1,
        workload_names=workloads,
        workload_seed=rng.randrange(4),
        functional_warmup=rng.choice((0, 0, 2000, 5000)),
        max_cycles=max_cycles,
        check_interval=check_interval,
    )


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------
@dataclass
class FuzzOutcome:
    """What happened when a case ran."""

    ok: bool
    status: str                      # "ok" | "violation" | "error" | "stalled"
    cycles_run: int
    commits: int
    violation: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def describe(self) -> str:
        if self.status == "ok":
            return (f"ok ({self.commits} commits over "
                    f"{self.cycles_run} cycles)")
        if self.status == "violation":
            return str(InvariantViolation.from_dict(self.violation))
        if self.status == "stalled":
            return (f"stalled: zero commits over {self.cycles_run} cycles")
        return f"error: {self.error}"


def build_case_simulator(case: FuzzCase) -> Simulator:
    from repro.workloads.synthetic import generate_program

    programs = [
        generate_program(PROFILES[name], seed=case.workload_seed)
        for name in case.workload_names
    ]
    return Simulator(case.config(), programs)


def run_case(case: FuzzCase,
             watchdog: Optional[Watchdog] = None) -> FuzzOutcome:
    """Run one case under the sanitizer; never raises on a sim bug.

    A campaign-supervisor ``watchdog`` attaches as the simulator's abort
    hook; its :class:`SimulationAborted` is *not* a sim bug and
    propagates, so the supervisor records a structured timeout failure.
    """
    try:
        sim = build_case_simulator(case)
        sanitizer = PipelineSanitizer(
            sim, check_oracle=True, check_interval=case.check_interval,
        )
        if watchdog is not None:
            watchdog.attach(sim)
        if case.functional_warmup:
            sim.functional_warmup(case.functional_warmup)
        for _ in range(case.max_cycles):
            sim.step()
    except SimulationAborted:
        raise
    except InvariantViolation as violation:
        return FuzzOutcome(
            ok=False, status="violation", cycles_run=sim.cycle,
            commits=sanitizer.commits_checked,
            violation=violation.to_dict(),
        )
    except Exception as exc:  # noqa: BLE001 - the fuzzer reports anything
        return FuzzOutcome(
            ok=False, status="error", cycles_run=0, commits=0,
            error=f"{type(exc).__name__}: {exc}",
        )
    commits = sanitizer.commits_checked
    if commits == 0 and case.max_cycles >= _STALL_CYCLES:
        return FuzzOutcome(
            ok=False, status="stalled", cycles_run=sim.cycle, commits=0,
        )
    return FuzzOutcome(
        ok=True, status="ok", cycles_run=sim.cycle, commits=commits,
    )


# ----------------------------------------------------------------------
# Shrinking.
# ----------------------------------------------------------------------
def _cycle_reductions(case: FuzzCase,
                      outcome: FuzzOutcome) -> List[FuzzCase]:
    candidates = []
    if outcome.violation is not None:
        at = outcome.violation.get("cycle", case.max_cycles)
        if at + 1 < case.max_cycles:
            candidates.append(dataclasses.replace(case, max_cycles=at + 1))
    if case.max_cycles > 50:
        candidates.append(
            dataclasses.replace(case, max_cycles=case.max_cycles // 2)
        )
    return candidates


def _simplifications(case: FuzzCase) -> List[FuzzCase]:
    """Single-step simplifications toward the default machine."""
    out: List[FuzzCase] = []

    def simplify(**kwargs):
        candidate = dataclasses.replace(case, **kwargs)
        if candidate != case:
            out.append(candidate)

    if case.n_threads > 1:
        simplify(n_threads=case.n_threads - 1,
                 workload_names=case.workload_names[:-1])
    if case.functional_warmup:
        simplify(functional_warmup=0)
    simplify(bigq=False)
    simplify(itag=False)
    simplify(perfect_branch_prediction=False)
    simplify(infinite_fus=False)
    simplify(infinite_memory_bandwidth=False)
    simplify(speculation="full")
    simplify(issue_policy="OLDEST")
    simplify(fetch_policy="RR")
    simplify(optimistic_issue=True)
    simplify(smt_pipeline=True)
    simplify(fetch_threads=1, fetch_per_thread=8)
    simplify(excess_registers=100)
    simplify(workload_seed=0)
    simplify(check_interval=1)
    return out


def shrink_case(
    case: FuzzCase,
    runner: Callable[[FuzzCase], FuzzOutcome] = run_case,
    max_runs: int = 80,
) -> Tuple[FuzzCase, FuzzOutcome]:
    """Greedy shrink: keep any simplification that still fails.

    Returns the minimal failing case and its outcome.  If the input
    unexpectedly passes, it is returned unchanged with the passing
    outcome.
    """
    outcome = runner(case)
    runs = 1
    if outcome.ok:
        return case, outcome
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in _cycle_reductions(case, outcome) + \
                _simplifications(case):
            if runs >= max_runs:
                break
            candidate_outcome = runner(candidate)
            runs += 1
            if not candidate_outcome.ok:
                case, outcome = candidate, candidate_outcome
                improved = True
                break
    return case, outcome


# ----------------------------------------------------------------------
# Corpus (committed golden-regression directory).
# ----------------------------------------------------------------------
def corpus_document(
    case: FuzzCase,
    violation: Optional[Dict[str, Any]] = None,
    note: str = "",
) -> Dict[str, Any]:
    """Schema-versioned corpus entry.

    ``violation`` records the breach that created the entry (provenance
    only); the replay test always asserts the case now runs clean.
    """
    return {
        "schema": FUZZ_CASE_SCHEMA,
        "schema_version": FUZZ_CASE_SCHEMA_VERSION,
        "case": case.to_dict(),
        "note": note,
        "found_violation": violation,
    }


def save_corpus_case(
    case: FuzzCase,
    directory: str,
    violation: Optional[Dict[str, Any]] = None,
    note: str = "",
) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"case-{case.content_hash()}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(corpus_document(case, violation, note), handle, indent=2)
        handle.write("\n")
    return path


def load_corpus_case(path: str) -> Tuple[FuzzCase, Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != FUZZ_CASE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {FUZZ_CASE_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    if document.get("schema_version") != FUZZ_CASE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported corpus schema version "
            f"{document.get('schema_version')!r}"
        )
    return FuzzCase.from_dict(document["case"]), document


def corpus_paths(directory: str) -> List[str]:
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("case-") and name.endswith(".json")
    )


# ----------------------------------------------------------------------
# The fuzzing campaign driver.
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    seed: int
    case: FuzzCase              # minimal (shrunk) failing case
    outcome: FuzzOutcome
    original_case: FuzzCase
    corpus_path: Optional[str] = None


@dataclass
class FuzzSummary:
    seeds: int
    ok: int
    failures: List[FuzzFailure] = field(default_factory=list)
    total_commits: int = 0
    total_cycles: int = 0
    elapsed: float = 0.0
    skipped: int = 0     # seeds already executed per the resume journal
    journal_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = "clean" if self.clean else \
            f"{len(self.failures)} FAILING case(s)"
        skipped = f", {self.skipped} resumed-skipped" if self.skipped else ""
        return (
            f"fuzz: {self.seeds} seeds, {self.ok} ok, {verdict}{skipped}; "
            f"{self.total_commits} commits checked over "
            f"{self.total_cycles} cycles in {self.elapsed:.1f}s"
        )


def _run_generated(args: Tuple[int, int, int],
                   watchdog: Optional[Watchdog] = None) -> FuzzOutcome:
    seed, max_cycles, check_interval = args
    return run_case(generate_case(seed, max_cycles, check_interval),
                    watchdog=watchdog)


#: Statuses produced by the campaign supervisor (worker-level faults),
#: as opposed to in-process case verdicts.  They carry no violation and
#: must not be shrunk: replaying a hang in-process would hang the
#: shrinker itself.
_SUPERVISOR_STATUSES = frozenset(("timeout", "crash", "oom", "interrupted"))


def fuzz_run(
    seeds: int = 25,
    start_seed: int = 0,
    max_cycles: int = 3000,
    check_interval: int = 1,
    jobs: int = 1,
    shrink: bool = True,
    corpus_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    timeout: Optional[float] = None,
    journal_path: Optional[str] = None,
    resume_from: Optional[str] = None,
) -> FuzzSummary:
    """Run a fuzzing campaign over ``seeds`` consecutive seeds.

    Failing cases are shrunk to minimal reproducers and (when
    ``corpus_dir`` is set) written into the golden-regression corpus.

    Campaigns reuse the experiment supervisor
    (:class:`~repro.experiments.supervise.Supervisor`): with ``jobs > 1``
    or a per-case ``timeout``, every case runs in a crash-isolated
    worker process, so a hung or dying case becomes a structured failure
    instead of wedging the campaign.  ``journal_path`` records each
    executed seed in an append-only checkpoint journal;
    ``resume_from`` replays such a journal and skips seeds it already
    records (``repro fuzz --resume``), so interrupted campaigns continue
    instead of restarting from seed 0.
    """
    started = time.perf_counter()
    say = log or (lambda _msg: None)
    if resume_from and not journal_path:
        journal_path = resume_from
    executed = JournalState.load(resume_from).seeds if resume_from else {}
    all_seeds = range(start_seed, start_seed + seeds)
    seed_list = [s for s in all_seeds if s not in executed]
    work = [(s, max_cycles, check_interval) for s in seed_list]

    summary = FuzzSummary(seeds=seeds, ok=0,
                          skipped=len(all_seeds) - len(seed_list),
                          journal_path=journal_path)
    if summary.skipped:
        say(f"resuming from {resume_from}: "
            f"{summary.skipped} seed(s) already executed")

    journal = CampaignJournal(journal_path) if journal_path else None
    outcomes: List[FuzzOutcome] = []
    try:
        if work and (jobs > 1 or timeout):
            supervisor = Supervisor(
                _run_generated, jobs=jobs, timeout=timeout, max_retries=0,
            )
            verdicts = supervisor.run(
                [(f"seed:{item[0]}", item) for item in work]
            )
            for item in work:
                verdict = verdicts[f"seed:{item[0]}"]
                if verdict.ok:
                    outcome = verdict.result
                else:
                    failure = verdict.failure
                    outcome = FuzzOutcome(
                        ok=False, status=failure.kind, cycles_run=0,
                        commits=0, error=failure.message,
                    )
                outcomes.append(outcome)
                if journal is not None:
                    journal.seed_done(item[0], outcome.status)
        else:
            for item in work:
                outcomes.append(_run_generated(item))
                say(f"seed {item[0]}: {outcomes[-1].describe()}")
                if journal is not None:
                    journal.seed_done(item[0], outcomes[-1].status)
    finally:
        if journal is not None:
            journal.close()

    for seed, outcome in zip(seed_list, outcomes):
        summary.total_commits += outcome.commits
        summary.total_cycles += outcome.cycles_run
        if outcome.ok:
            summary.ok += 1
            continue
        case = generate_case(seed, max_cycles, check_interval)
        say(f"seed {seed} FAILED: {outcome.describe()}")
        shrinkable = shrink and outcome.status not in _SUPERVISOR_STATUSES
        minimal, minimal_outcome = (
            shrink_case(case) if shrinkable else (case, outcome)
        )
        if minimal_outcome.ok:   # flaky shrink guard; keep the original
            minimal, minimal_outcome = case, outcome
        failure = FuzzFailure(
            seed=seed, case=minimal, outcome=minimal_outcome,
            original_case=case,
        )
        if corpus_dir and outcome.status not in _SUPERVISOR_STATUSES:
            failure.corpus_path = save_corpus_case(
                minimal, corpus_dir,
                violation=minimal_outcome.violation,
                note=f"shrunk from fuzz seed {seed}",
            )
            say(f"seed {seed}: minimal reproducer -> {failure.corpus_path}")
        summary.failures.append(failure)

    summary.elapsed = time.perf_counter() - started
    return summary


# ----------------------------------------------------------------------
# Multicore fuzzing: the allocation layer under the same sanitizers.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MulticoreFuzzCase:
    """One open-system multicore fuzz point (pure function of seed).

    Extends the fuzz config space with the multicore axes — core count
    and allocator spec — and runs the whole open-system driver with a
    :class:`PipelineSanitizer` on every core *and* the driver's own
    allocation-layer invariants armed every quantum.
    """

    seed: int
    n_cores: int
    contexts_per_core: int
    allocator: str
    jobs: int
    rate_per_kcycle: float
    service_instructions: int
    quantum: int
    max_cycles: int

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def run_spec(self):
        from repro.multicore.driver import ArrivalConfig, MulticoreRunSpec

        return MulticoreRunSpec(
            n_cores=self.n_cores,
            allocator=self.allocator,
            config=SMTConfig(n_threads=self.contexts_per_core,
                             seed=self.seed),
            quantum=self.quantum,
            max_cycles=self.max_cycles,
            seed=self.seed,
            arrival=ArrivalConfig(
                jobs=self.jobs,
                rate_per_kcycle=self.rate_per_kcycle,
                service_instructions=self.service_instructions,
                seed=self.seed,
            ),
            check_invariants=True,
        )


#: Allocator specs the multicore fuzzer draws from: every registry name
#: plus parameterised PAIRING corners.
def _multicore_fuzz_allocators() -> Tuple[str, ...]:
    from repro.multicore.alloc import allocator_names

    return allocator_names() + (
        "PAIRING:miss_weight=4.0",
        "PAIRING:miss_weight=0.0,iq_weight=2.0",
        "PAIRING:ipc_weight=1.0",
    )


def generate_multicore_case(seed: int,
                            max_cycles: int = 6000) -> MulticoreFuzzCase:
    """Derive a multicore case from ``seed`` (pure: same seed, same case)."""
    rng = random.Random(0x3C0DE000 + seed)
    return MulticoreFuzzCase(
        seed=seed,
        n_cores=rng.choice((1, 1, 2, 2, 3)),
        contexts_per_core=rng.choice((1, 2, 2)),
        allocator=rng.choice(_multicore_fuzz_allocators()),
        jobs=rng.choice((2, 3, 3, 4, 5)),
        rate_per_kcycle=rng.choice((0.5, 1.0, 2.0, 4.0)),
        service_instructions=rng.choice((100, 200, 300, 400)),
        quantum=rng.choice((100, 150, 200, 250)),
        max_cycles=max_cycles,
    )


def run_multicore_case(case: MulticoreFuzzCase) -> FuzzOutcome:
    """Run one multicore case under every sanitizer; never raises on a
    sim bug.

    Cores carry the pipeline sanitizer (structural invariants + shadow
    oracle), and the driver checks its allocation-layer invariants at
    the end of every quantum, so both a pipeline breach and an
    allocation-bookkeeping breach surface as failing outcomes.
    """
    from repro.multicore.driver import (
        DriverInvariantError,
        OpenSystemDriver,
    )

    try:
        driver = OpenSystemDriver(case.run_spec())
        result = driver.run()
    except InvariantViolation as violation:
        return FuzzOutcome(
            ok=False, status="violation", cycles_run=0, commits=0,
            violation=violation.to_dict(),
        )
    except DriverInvariantError as exc:
        return FuzzOutcome(
            ok=False, status="error", cycles_run=0, commits=0,
            error=f"DriverInvariantError: {exc}",
        )
    except Exception as exc:  # noqa: BLE001 - the fuzzer reports anything
        return FuzzOutcome(
            ok=False, status="error", cycles_run=0, commits=0,
            error=f"{type(exc).__name__}: {exc}",
        )
    commits = sum(core.commits for core in result.cores)
    if commits == 0 and case.max_cycles >= _STALL_CYCLES:
        return FuzzOutcome(
            ok=False, status="stalled", cycles_run=result.cycles, commits=0,
        )
    return FuzzOutcome(
        ok=True, status="ok", cycles_run=result.cycles, commits=commits,
    )


def multicore_fuzz_run(
    seeds: int = 10,
    start_seed: int = 0,
    max_cycles: int = 6000,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzSummary:
    """Fuzz the multicore allocation surface over consecutive seeds.

    Returns the same :class:`FuzzSummary` shape as :func:`fuzz_run`
    (failures carry the :class:`MulticoreFuzzCase`; multicore cases are
    already tiny, so there is no shrinking pass).
    """
    started = time.perf_counter()
    say = log or (lambda message: None)
    summary = FuzzSummary(seeds=seeds, ok=0)
    for seed in range(start_seed, start_seed + seeds):
        case = generate_multicore_case(seed, max_cycles=max_cycles)
        outcome = run_multicore_case(case)
        summary.total_commits += outcome.commits
        summary.total_cycles += outcome.cycles_run
        if outcome.ok:
            summary.ok += 1
            say(f"seed {seed}: {outcome.describe()} "
                f"[{case.allocator} x{case.n_cores}]")
            continue
        say(f"seed {seed} FAILED: {outcome.describe()} "
            f"[{case.allocator} x{case.n_cores}]")
        summary.failures.append(FuzzFailure(
            seed=seed, case=case, outcome=outcome, original_case=case,
        ))
    summary.elapsed = time.perf_counter() - started
    return summary
