"""Runtime pipeline invariant sanitizer.

The paper's conclusions (ICOUNT's win, the vanishing IQ clog, issue
policy irrelevance) are read off internal pipeline state, so the model
behind that state needs continuous validation, not just end-to-end IPC
checks.  :class:`PipelineSanitizer` attaches to a live
:class:`~repro.core.simulator.Simulator` through the composable
observer hooks (commit listener, squash listener, and the per-cycle
``sim.sanitizer`` slot) and verifies, every cycle:

**Structural invariants** (``check_cycle``)

* instruction-queue occupancy never exceeds the configured capacity,
  entries live in the queue matching their type, belong to a live ROB,
  and appear exactly once;
* per-thread ICOUNT (``unissued_count``, the fetch-policy input) equals
  the number of the thread's in-flight uops still in the pre-issue
  stages, and BRCOUNT (``unresolved_branches``) the number of its
  unexecuted control instructions;
* physical registers are conserved: per file, the free list, the
  current rename maps, and in-flight instructions' displaced mappings
  partition the register file exactly — no leak, no double allocation;
* fetch respects the ``alg.num1.num2`` partition: at most ``num1``
  threads supply instructions in any cycle, no thread supplies more
  than ``num2``, the total never exceeds the fetch width, and fetch
  blocks from different threads never interleave;
* the fetch and decode buffers respect their configured bounds.

**Stream invariants** (listeners)

* committed uops are correct-path, executed, and commit in strictly
  increasing per-thread program order;
* no dynamic instruction is both squashed and committed;
* every committed PC follows the thread's architectural oracle in
  lockstep: a private shadow :class:`~repro.isa.emulator.Emulator` per
  thread is replayed to the simulator's current architectural position
  and stepped once per commit (the differential check the fuzzer
  drives).

The first breach raises :class:`InvariantViolation` carrying the cycle,
thread, invariant name, and uop provenance.  Overhead when detached is
a single ``is None`` test per cycle; when attached, full checks run
every ``check_interval`` cycles (default: every cycle).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.simulator import Simulator
from repro.core.uop import (
    S_COMMITTED,
    S_DONE,
    S_ISSUED,
    S_QUEUED,
    S_SQUASHED,
    STATE_NAMES,
    Uop,
)
from repro.isa.emulator import Emulator

#: Queue-entry states that legitimately occupy an IQ slot.  ``S_DONE``
#: entries linger until ``release_freed`` drops them at the start of
#: the next cycle.
_IQ_STATES = (S_QUEUED, S_ISSUED, S_DONE)


class InvariantViolation(Exception):
    """A structural invariant failed.

    Structured so violations survive multiprocessing boundaries and the
    schema-versioned export layer: ``invariant`` names the check,
    ``cycle``/``tid`` locate it, ``uop`` is the provenance string of the
    offending instruction (if one exists), and ``details`` carries
    check-specific context (expected/actual values).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        cycle: int,
        tid: Optional[int] = None,
        uop: Optional[str] = None,
        details: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(invariant, message, cycle, tid, uop, details)
        self.invariant = invariant
        self.message = message
        self.cycle = cycle
        self.tid = tid
        self.uop = uop
        self.details = details or {}

    def __str__(self) -> str:
        where = f"cycle {self.cycle}"
        if self.tid is not None:
            where += f", thread {self.tid}"
        text = f"[{self.invariant}] {self.message} ({where})"
        if self.uop:
            text += f" uop={self.uop}"
        if self.details:
            pairs = ", ".join(f"{k}={v!r}" for k, v in self.details.items())
            text += f" [{pairs}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the structured exporters."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "cycle": self.cycle,
            "tid": self.tid,
            "uop": self.uop,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "InvariantViolation":
        return cls(
            invariant=data["invariant"],
            message=data["message"],
            cycle=data["cycle"],
            tid=data.get("tid"),
            uop=data.get("uop"),
            details=data.get("details") or {},
        )


class PipelineSanitizer:
    """Always-available structural checker for a live simulator.

    Attach before (or at any point during) a run::

        sim = Simulator(config, programs)
        sanitizer = PipelineSanitizer(sim)   # attaches immediately
        sim.run()                            # raises InvariantViolation
                                             # on the first breach

    ``check_oracle=False`` skips the per-commit architectural lockstep
    (useful when only structural invariants are wanted);
    ``check_interval=N`` runs the expensive whole-structure scans every
    N cycles while keeping the cheap per-cycle fetch-partition check.
    The sanitizer composes with the tracer, telemetry sampler, and
    metrics collector through the listener chains.
    """

    def __init__(self, sim: Simulator, check_oracle: bool = True,
                 check_interval: int = 1, autostart: bool = True):
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.sim = sim
        self.check_oracle = check_oracle
        self.check_interval = check_interval
        self._attached = False
        #: Cycles fully checked (telemetry for tests and reports).
        self.cycles_checked = 0
        self.commits_checked = 0
        self.squashes_checked = 0
        # Shadow oracles are created lazily (first commit or first
        # checked cycle) so functional warmup — which advances the
        # architectural state without committing — is accounted for.
        self._oracles: Optional[List[Emulator]] = None
        self._prev_next_seq: List[int] = []
        self._last_committed_seq: List[int] = []
        self._squashed_seqs: List[Set[int]] = []
        if autostart:
            self.attach()

    # ------------------------------------------------------------------
    # Attach / detach.
    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        sim = self.sim
        if sim.sanitizer is not None:
            raise RuntimeError("simulator already has a sanitizer")
        n = len(sim.threads)
        self._prev_next_seq = [t.next_seq for t in sim.threads]
        self._last_committed_seq = [-1] * n
        self._squashed_seqs = [set() for _ in range(n)]
        sim.add_commit_listener(self._on_commit)
        sim.add_squash_listener(self._on_squash)
        sim.sanitizer = self
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        sim = self.sim
        sim.sanitizer = None
        sim.remove_commit_listener(self._on_commit)
        sim.remove_squash_listener(self._on_squash)
        self._attached = False

    # ------------------------------------------------------------------
    # Shadow-oracle synchronisation.
    #
    # Each thread's emulator has produced ``instret`` records, of which
    # ``oracle_lookahead()`` sit unconsumed in the lookahead buffer.
    # Consumed records are either committed already or in flight on the
    # correct path, so a fresh emulator replayed
    # ``instret - lookahead - inflight_correct`` steps sits exactly at
    # the next PC the pipeline must commit.  This holds at any attach
    # point: cycle 0, after functional warmup, or mid-run.
    # ------------------------------------------------------------------
    def _ensure_oracles(self, committing_tid: Optional[int] = None) -> None:
        if self._oracles is not None or not self.check_oracle:
            return
        oracles = []
        for thread in self.sim.threads:
            inflight_correct = sum(
                1 for u in thread.rob if not u.wrong_path
            )
            consumed = (
                thread.emulator.instret
                - thread.oracle_lookahead()
                - inflight_correct
            )
            if thread.tid == committing_tid:
                # Mid-commit: the committing uop has left the ROB but
                # must still be replayed by the shadow oracle.
                consumed -= 1
            shadow = Emulator(thread.program)
            for _ in range(consumed):
                shadow.step()
            oracles.append(shadow)
        self._oracles = oracles

    # ------------------------------------------------------------------
    # Stream hooks.
    # ------------------------------------------------------------------
    def _on_commit(self, uop: Uop) -> None:
        self.commits_checked += 1
        cycle = self.sim.cycle
        tid = uop.tid
        if uop.state != S_COMMITTED:
            self._fail("commit-state",
                       f"committing uop in state "
                       f"{STATE_NAMES.get(uop.state, uop.state)}",
                       cycle, tid, uop)
        if uop.wrong_path:
            self._fail("commit-wrong-path",
                       "wrong-path instruction committed", cycle, tid, uop)
        if uop.complete_c < 0 or uop.commit_ready_c > cycle:
            self._fail("commit-before-complete",
                       "instruction committed before executing",
                       cycle, tid, uop,
                       details={"complete_c": uop.complete_c,
                                "commit_ready_c": uop.commit_ready_c})
        last = self._last_committed_seq[tid]
        if uop.seq <= last:
            self._fail("commit-order",
                       "per-thread commit order not strictly increasing",
                       cycle, tid, uop,
                       details={"seq": uop.seq, "last_committed": last})
        squashed = self._squashed_seqs[tid]
        if uop.seq in squashed:
            self._fail("squash-then-commit",
                       "previously squashed instruction committed",
                       cycle, tid, uop, details={"seq": uop.seq})
        self._last_committed_seq[tid] = uop.seq
        if squashed:
            # In-order commit: seqs at or below the commit point can
            # never commit later, so the set stays in-flight sized.
            self._squashed_seqs[tid] = {
                s for s in squashed if s > uop.seq
            }
        if self.check_oracle:
            self._ensure_oracles(committing_tid=tid)
            record = self._oracles[tid].step()
            if record.pc != uop.pc:
                self._fail("oracle-divergence",
                           "committed PC diverges from the architectural "
                           "oracle", cycle, tid, uop,
                           details={"expected_pc": hex(record.pc),
                                    "actual_pc": hex(uop.pc),
                                    "oracle_instr": str(record.instr)})

    def _on_squash(self, uop: Uop) -> None:
        self.squashes_checked += 1
        cycle = self.sim.cycle
        tid = uop.tid
        if uop.state != S_SQUASHED:
            self._fail("squash-state",
                       f"squash listener saw state "
                       f"{STATE_NAMES.get(uop.state, uop.state)}",
                       cycle, tid, uop)
        if not uop.wrong_path:
            self._fail("squash-correct-path",
                       "correct-path instruction squashed", cycle, tid, uop)
        if uop.seq <= self._last_committed_seq[tid]:
            self._fail("commit-then-squash",
                       "already-committed instruction squashed",
                       cycle, tid, uop,
                       details={"seq": uop.seq,
                                "last_committed":
                                    self._last_committed_seq[tid]})
        squashed = self._squashed_seqs[tid]
        if uop.seq in squashed:
            self._fail("double-squash",
                       "instruction squashed twice", cycle, tid, uop)
        squashed.add(uop.seq)

    # ------------------------------------------------------------------
    # The per-cycle hook (called from ``Simulator.step``).
    # ------------------------------------------------------------------
    def check_cycle(self, cycle: int) -> None:
        self._ensure_oracles()
        self._check_fetch_partition(cycle)
        if cycle % self.check_interval == 0:
            self._check_buffers(cycle)
            self._check_queues(cycle)
            self._check_thread_counters(cycle)
            self._check_registers(cycle)
            self.cycles_checked += 1

    # ------------------------------------------------------------------
    def _check_fetch_partition(self, cycle: int) -> None:
        sim = self.sim
        cfg = sim.cfg
        prev = self._prev_next_seq
        fetched = [t.next_seq - prev[i] for i, t in enumerate(sim.threads)]
        self._prev_next_seq = [t.next_seq for t in sim.threads]
        total = sum(fetched)
        if total == 0:
            return
        if total > cfg.fetch_width:
            self._fail("fetch-width",
                       f"{total} instructions fetched in one cycle",
                       cycle, details={"fetched": fetched,
                                       "fetch_width": cfg.fetch_width})
        threads_fetching = 0
        for tid, count in enumerate(fetched):
            if count == 0:
                continue
            threads_fetching += 1
            if count > cfg.fetch_per_thread:
                self._fail("fetch-per-thread",
                           f"thread fetched {count} instructions "
                           f"(num2={cfg.fetch_per_thread})", cycle, tid,
                           details={"fetched": fetched})
        if threads_fetching > cfg.fetch_threads:
            self._fail("fetch-threads",
                       f"{threads_fetching} threads fetched "
                       f"(num1={cfg.fetch_threads})", cycle,
                       details={"fetched": fetched})
        # Fetch blocks must not interleave: this cycle's additions to
        # the fetch buffer form one contiguous run per selected thread.
        run_tids: List[int] = []
        for uop in sim.fetch_buffer:
            if uop.fetch_c != cycle:
                continue
            if not run_tids or run_tids[-1] != uop.tid:
                run_tids.append(uop.tid)
        if len(run_tids) != len(set(run_tids)):
            self._fail("fetch-block-interleave",
                       "fetch blocks from one thread interleaved with "
                       "another's", cycle, details={"runs": run_tids})

    # ------------------------------------------------------------------
    def _check_buffers(self, cycle: int) -> None:
        sim = self.sim
        cfg = sim.cfg
        if len(sim.fetch_buffer) > cfg.fetch_width:
            self._fail("fetch-buffer-bound",
                       f"fetch buffer holds {len(sim.fetch_buffer)} "
                       f"(width {cfg.fetch_width})", cycle)
        if len(sim.decode_buffer) > cfg.decode_width:
            self._fail("decode-buffer-bound",
                       f"decode buffer holds {len(sim.decode_buffer)} "
                       f"(width {cfg.decode_width})", cycle)

    # ------------------------------------------------------------------
    def _check_queues(self, cycle: int) -> None:
        sim = self.sim
        capacity = sim.cfg.iq_capacity
        rob_ids = {
            id(u) for thread in sim.threads for u in thread.rob
        }
        seen: Set[int] = set()
        for queue in (sim.int_queue, sim.fp_queue):
            entries = queue.entries
            if len(entries) > capacity:
                self._fail("iq-overflow",
                           f"{queue.name} queue holds {len(entries)} "
                           f"entries (capacity {capacity})", cycle,
                           details={"queue": queue.name,
                                    "occupancy": len(entries),
                                    "capacity": capacity})
            is_fp_queue = queue is sim.fp_queue
            for uop in entries:
                if uop.is_fp_op != is_fp_queue:
                    self._fail("iq-wrong-queue",
                               f"{'fp' if uop.is_fp_op else 'int'} uop in "
                               f"the {queue.name} queue", cycle, uop.tid, uop)
                if uop.state not in _IQ_STATES:
                    self._fail("iq-entry-state",
                               f"queue entry in state "
                               f"{STATE_NAMES.get(uop.state, uop.state)}",
                               cycle, uop.tid, uop)
                if id(uop) in seen:
                    self._fail("iq-duplicate-entry",
                               "uop occupies two queue slots",
                               cycle, uop.tid, uop)
                seen.add(id(uop))
                if id(uop) not in rob_ids:
                    self._fail("iq-orphan-entry",
                               "queue entry absent from its thread's ROB",
                               cycle, uop.tid, uop)

    # ------------------------------------------------------------------
    def _check_thread_counters(self, cycle: int) -> None:
        for thread in self.sim.threads:
            unissued = 0
            unresolved = 0
            for uop in thread.rob:
                if uop.state < S_ISSUED:
                    unissued += 1
                if uop.is_control and uop.state != S_DONE:
                    unresolved += 1
            if unissued != thread.unissued_count:
                self._fail("icount-accounting",
                           f"ICOUNT says {thread.unissued_count}, ROB "
                           f"holds {unissued} pre-issue instructions",
                           cycle, thread.tid,
                           details={"icount": thread.unissued_count,
                                    "pre_issue_in_rob": unissued})
            if unresolved != thread.unresolved_branches:
                self._fail("brcount-accounting",
                           f"BRCOUNT says {thread.unresolved_branches}, "
                           f"ROB holds {unresolved} unresolved branches",
                           cycle, thread.tid,
                           details={"brcount": thread.unresolved_branches,
                                    "unresolved_in_rob": unresolved})

    # ------------------------------------------------------------------
    def _check_registers(self, cycle: int) -> None:
        sim = self.sim
        renamer = sim.renamer
        expected = sim.cfg.physical_registers
        for is_fp, rf in ((False, renamer.int_file), (True, renamer.fp_file)):
            name = "fp" if is_fp else "int"
            if rf.physical != expected:
                self._fail("register-file-size",
                           f"{name} file sized {rf.physical} "
                           f"(config says {expected})", cycle)
            counts = [0] * rf.physical
            for preg in rf.free_list:
                counts[preg] += 1
            for thread_map in rf.maps:
                for preg in thread_map:
                    counts[preg] += 1
            for thread in sim.threads:
                for uop in thread.rob:
                    if uop.dest_preg is not None and uop.dest_is_fp == is_fp:
                        counts[uop.old_preg] += 1
            bad = [p for p, c in enumerate(counts) if c != 1]
            if bad:
                leaked = [p for p in bad if counts[p] == 0]
                dup = [p for p in bad if counts[p] > 1]
                self._fail("register-conservation",
                           f"{name} physical registers not conserved",
                           cycle,
                           details={"leaked": leaked[:8],
                                    "oversubscribed": dup[:8],
                                    "free": len(rf.free_list)})

    # ------------------------------------------------------------------
    def _fail(
        self,
        invariant: str,
        message: str,
        cycle: int,
        tid: Optional[int] = None,
        uop: Optional[Uop] = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        raise InvariantViolation(
            invariant, message, cycle, tid=tid,
            uop=repr(uop) if uop is not None else None, details=details,
        )
