"""Table 4: ICOUNT nearly eliminates IQ clog relative to round-robin.

Paper (8 threads, 2.8 fetch): integer IQ-full drops from 18% to 6%,
fp IQ-full from 8% to 1%, and the queues hold *fewer* instructions under
ICOUNT while finding more issuable ones.
"""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table4(benchmark, budget):
    points = run_once(benchmark, lambda: tables.table4(budget=budget))
    tables.print_table4(points)

    rr = points["RR.2.8"]
    icount = points["ICOUNT.2.8"]

    # The headline: ICOUNT slashes IQ-full conditions.
    assert icount.metric("int_iq_full_frac") < rr.metric("int_iq_full_frac")

    # And it does so while improving throughput.
    assert icount.ipc > rr.ipc

    # Queue population under ICOUNT does not balloon (paper: it drops
    # from 38 to 30; we assert it doesn't grow materially).
    assert (
        icount.metric("avg_queue_population")
        < rr.metric("avg_queue_population") * 1.15
    )
