"""Ablations of design choices the paper takes for granted (DESIGN.md §6).

These quantify the pieces of the design whose value the paper asserts
but does not measure separately:

* per-thread vs shared branch history registers,
* thread-id tags on BTB entries (phantom branches),
* optimistic issue vs conservative load-use scheduling.
"""

from benchmarks.conftest import run_once
from repro.core.config import scheme
from repro.experiments.runner import run_config


def _point(budget, **options):
    return run_config(scheme("ICOUNT", 2, 8, n_threads=8, **options),
                      budget=budget)


def test_shared_history_ablation(benchmark, budget):
    def experiment():
        return (
            _point(budget),
            _point(budget, shared_history=True),
        )
    base, shared = run_once(benchmark, experiment)
    bmr_base = base.metric("branch_mispredict_rate")
    bmr_shared = shared.metric("branch_mispredict_rate")
    print(f"per-thread history: bmr={bmr_base:.1%} IPC={base.ipc:.2f}; "
          f"shared: bmr={bmr_shared:.1%} IPC={shared.ipc:.2f}")
    # Cross-thread history pollution cannot *improve* prediction.
    assert bmr_shared > 0.8 * bmr_base


def test_btb_thread_tags_ablation(benchmark, budget):
    def experiment():
        return (
            _point(budget),
            _point(budget, btb_thread_tags=False),
        )
    base, untagged = run_once(benchmark, experiment)
    print(f"tagged BTB: IPC={base.ipc:.2f} "
          f"jmr={base.metric('jump_mispredict_rate'):.1%}; "
          f"untagged: IPC={untagged.ipc:.2f} "
          f"jmr={untagged.metric('jump_mispredict_rate'):.1%}")
    # Phantom branches must not help; throughput stays in band.
    assert untagged.ipc < 1.10 * base.ipc


def test_optimistic_issue_ablation(benchmark, budget):
    def experiment():
        return (
            _point(budget),
            _point(budget, optimistic_issue=False),
        )
    optimistic, conservative = run_once(benchmark, experiment)
    print(f"optimistic: IPC={optimistic.ipc:.2f} "
          f"squashed={optimistic.metric('squashed_optimistic_frac'):.1%}; "
          f"conservative: IPC={conservative.ipc:.2f}")
    # Conservative scheduling forfeits the 1-cycle load-use latency; it
    # should not beat optimistic issue materially.
    assert conservative.ipc < 1.08 * optimistic.ipc
    assert conservative.metric("squashed_optimistic_frac") == 0.0
