"""Table 3: low-level metrics of the base architecture at 1/4/8 threads.

Paper's directional facts: cache miss rates and branch/jump
misprediction rates *rise* with more threads; wrong-path fetch fraction
*falls* (SMT fetches less speculatively deep per thread).
"""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table3(benchmark, budget):
    points = run_once(
        benchmark, lambda: tables.table3(budget=budget, thread_counts=(1, 4, 8))
    )
    tables.print_table3(points)

    icache_1 = points[1].cache_metric("icache", "miss_rate")
    icache_8 = points[8].cache_metric("icache", "miss_rate")
    assert icache_8 > icache_1  # I-cache pressure grows with threads

    dcache_1 = points[1].cache_metric("dcache", "miss_rate")
    dcache_8 = points[8].cache_metric("dcache", "miss_rate")
    assert dcache_8 > dcache_1

    bmr_1 = points[1].metric("branch_mispredict_rate")
    bmr_8 = points[8].metric("branch_mispredict_rate")
    assert bmr_8 > bmr_1  # shared predictor tables degrade

    wpf_1 = points[1].metric("wrong_path_fetched_frac")
    wpf_8 = points[8].metric("wrong_path_fetched_frac")
    assert wpf_8 < wpf_1  # paper: 24% at 1 thread vs 7% at 8

    # Queues hold a healthy population at every thread count.
    for t in (1, 4, 8):
        assert points[t].metric("avg_queue_population") > 10
