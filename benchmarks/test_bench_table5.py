"""Table 5: issue priority schemes barely matter.

Paper: OLDEST / OPT_LAST / SPEC_LAST / BRANCH_FIRST are within ~1% of
each other at every thread count — issue bandwidth is not a bottleneck
— and useless issues (wrong-path + squashed optimistic) stay in single
digits under ICOUNT.2.8.
"""

from benchmarks.conftest import run_once
from repro.experiments import tables


def test_table5(benchmark, budget):
    data = run_once(
        benchmark, lambda: tables.table5(budget=budget, thread_counts=(4, 8))
    )
    tables.print_table5(data)

    def ipc(policy, threads):
        return next(p.ipc for p in data[policy] if p.n_threads == threads)

    oldest8 = ipc("OLDEST", 8)
    for policy in ("OPT_LAST", "SPEC_LAST", "BRANCH_FIRST"):
        # The paper's strong message: issue policy choice moves
        # throughput by ~1%; allow measurement noise.
        assert abs(ipc(policy, 8) - oldest8) < 0.15 * oldest8, policy

    # Useless issue slots stay a modest fraction.
    for policy, points in data.items():
        last = points[-1]
        useless = (
            last.metric("wrong_path_issued_frac")
            + last.metric("squashed_optimistic_frac")
        )
        assert useless < 0.30, policy
