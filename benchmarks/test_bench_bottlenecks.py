"""Section 7: the bottleneck-hunting experiments on ICOUNT.2.8.

Each test relieves or restricts one machine component and asserts the
paper's directional result.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import bottlenecks


def delta(base, variant):
    return (variant.ipc - base.ipc) / base.ipc


def test_issue_bandwidth_not_a_bottleneck(benchmark, budget):
    d = run_once(benchmark, lambda: bottlenecks.issue_bandwidth(budget=budget))
    change = delta(d["baseline"], d["infinite FUs"])
    print(f"infinite FUs: {change:+.1%} (paper: +0.5%)")
    assert change < 0.10  # tiny effect

def test_queue_size_not_a_bottleneck(benchmark, budget):
    d = run_once(benchmark, lambda: bottlenecks.queue_size(budget=budget))
    change = delta(d["baseline"], d["64-entry queues"])
    print(f"64-entry queues: {change:+.1%} (paper: <+1%)")
    assert change < 0.12

def test_fetch_bandwidth_still_a_bottleneck(benchmark, budget):
    d = run_once(benchmark, lambda: bottlenecks.fetch_bandwidth(budget=budget))
    wide = delta(d["baseline"], d["16-wide fetch"])
    wide_big = delta(d["baseline"], d["16-wide + 64Q + 140 regs"])
    print(f"16-wide: {wide:+.1%} (paper +8%); "
          f"+64Q+140regs: {wide_big:+.1%} (paper +15%)")
    # Widening fetch helps more than widening issue/queues did.
    assert wide > -0.02
    assert wide_big >= wide - 0.03

def test_branch_prediction_quality(benchmark, budget):
    d = run_once(
        benchmark,
        lambda: bottlenecks.branch_prediction(budget=budget,
                                              thread_counts=(1, 8)),
    )
    gain_1t = delta(d["baseline"][0], d["perfect"][0])
    gain_8t = delta(d["baseline"][1], d["perfect"][1])
    print(f"perfect bp: 1T {gain_1t:+.1%} (paper +25%), "
          f"8T {gain_8t:+.1%} (paper +9%)")
    # Perfect prediction helps, and helps the single thread more:
    # SMT is less sensitive to branch prediction quality.
    assert gain_1t > 0.02
    assert gain_8t < gain_1t
    doubled = delta(d["baseline"][1], d["doubled tables"][1])
    print(f"doubled tables 8T: {doubled:+.1%} (paper +2%)")
    assert doubled < 0.20

def test_speculative_execution_costs(benchmark, budget):
    d = run_once(
        benchmark,
        lambda: bottlenecks.speculative_execution(budget=budget,
                                                  thread_counts=(1, 8)),
    )
    nwp_1t = delta(d["baseline"][0], d["no wrong-path issue"][0])
    nwp_8t = delta(d["baseline"][1], d["no wrong-path issue"][1])
    npb_1t = delta(d["baseline"][0], d["no passing branches"][0])
    npb_8t = delta(d["baseline"][1], d["no passing branches"][1])
    print(f"no wrong-path: 1T {nwp_1t:+.1%} (paper -38%), "
          f"8T {nwp_8t:+.1%} (paper -7%)")
    print(f"no pass-branch: 1T {npb_1t:+.1%} (paper -12%), "
          f"8T {npb_8t:+.1%} (paper -1.5%)")
    # Restricting speculation hurts, and hurts one thread much more
    # than eight (SMT exploits inter-thread parallelism instead).
    assert nwp_1t < -0.05
    assert nwp_1t < nwp_8t
    assert npb_1t <= 0.02
    assert npb_8t > nwp_8t - 0.02  # milder restriction, milder cost

def test_memory_throughput(benchmark, budget):
    d = run_once(benchmark, lambda: bottlenecks.memory_throughput(budget=budget))
    change = delta(d["baseline"], d["infinite bandwidth"])
    print(f"infinite memory bandwidth: {change:+.1%} (paper: +3%)")
    assert -0.05 < change < 0.35

def test_register_file_size(benchmark, budget):
    rows = run_once(
        benchmark,
        lambda: bottlenecks.register_file_size(
            budget=budget, excess_values=(70, 100, 100000)
        ),
    )
    by_excess = {e: p for e, p in rows}
    d70 = delta(by_excess[100], by_excess[70])
    dinf = delta(by_excess[100], by_excess[100000])
    print(f"70 excess: {d70:+.1%} (paper -6%); "
          f"infinite: {dinf:+.1%} (paper +2%)")
    # No sharp drop-off: modest cost at 70, modest gain at infinity.
    assert d70 < 0.05
    assert dinf > -0.05
    assert dinf < 0.40
