"""Figure 7: fixed 200-register budget, 1-5 hardware contexts.

Paper: with 200 physical registers per file, adding contexts first wins
(more thread parallelism) then loses (too few renaming registers): a
clear interior maximum at 4 threads.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_figure7(benchmark, budget):
    points = run_once(
        benchmark,
        lambda: figures.figure7(budget=budget, thread_counts=(1, 2, 3, 4, 5)),
    )
    figures.print_figure7(points)

    by_threads = {p.n_threads: p.ipc for p in points}

    # Adding a second context helps (168 -> 136 excess registers is
    # still plenty; thread parallelism dominates).
    assert by_threads[2] > by_threads[1]

    # The maximum is interior: neither 1 nor 5 contexts is best
    # (5 contexts leave only 40 renaming registers).
    best = max(by_threads, key=by_threads.get)
    assert best in (2, 3, 4)

    # The tail has turned down or flattened by 5 contexts.
    assert by_threads[5] < max(by_threads[3], by_threads[4]) * 1.05
