"""Figure 4: fetch-partitioning schemes (RR.1.8, RR.2.4, RR.4.2, RR.2.8).

Paper: RR.2.8 gives the best of both worlds — single-thread performance
like RR.1.8 and many-thread throughput at least as good as RR.2.4;
RR.4.2 suffers thread shortage and costs single-thread performance.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_figure4(benchmark, budget):
    data = run_once(
        benchmark,
        lambda: figures.figure4(budget=budget, thread_counts=(1, 4, 8)),
    )
    figures.print_figure4(data)

    def ipc(label, threads):
        return next(p.ipc for p in data[label] if p.n_threads == threads)

    # Single thread: narrow per-thread fetch (RR.4.2 = 2 instructions)
    # costs significant single-thread performance vs 8-wide.
    assert ipc("RR.4.2", 1) < 0.85 * ipc("RR.1.8", 1)

    # The flexible RR.2.8 does not sacrifice single-thread throughput.
    assert ipc("RR.2.8", 1) > 0.9 * ipc("RR.1.8", 1)

    # At 8 threads, fetching from two threads beats one.
    assert ipc("RR.2.8", 8) > ipc("RR.1.8", 8)

    # RR.2.8's flexible filling at least matches the fixed 4+4 split.
    assert ipc("RR.2.8", 8) > 0.95 * ipc("RR.2.4", 8)
