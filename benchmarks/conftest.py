"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and asserts
its qualitative *shape* (orderings, crossovers, sign of deltas), never
absolute IPC.  Budgets come from RunBudget.from_environment(): set
``REPRO_FAST=1`` for a quick pass or ``REPRO_FULL=1`` for final numbers.
"""

import pytest

from repro.experiments.runner import RunBudget


@pytest.fixture(scope="session")
def budget():
    return RunBudget.from_environment()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
