"""Figure 5: fetch thread-choice policies vs round-robin.

Paper: every heuristic beats RR; ICOUNT is the clear winner (up to +23%
over the best RR result), IQPOSN tracks ICOUNT within a few percent,
BRCOUNT and MISSCOUNT give moderate gains at many threads.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_figure5(benchmark, budget):
    data = run_once(
        benchmark,
        lambda: figures.figure5(budget=budget, thread_counts=(4, 8),
                                partitions=((2, 8),)),
    )
    figures.print_figure5(data)

    def ipc(label, threads):
        return next(p.ipc for p in data[label] if p.n_threads == threads)

    rr8 = ipc("RR.2.8", 8)
    icount8 = ipc("ICOUNT.2.8", 8)
    iqposn8 = ipc("IQPOSN.2.8", 8)

    # ICOUNT is the headline result: a gain over round-robin.  (The
    # margin grows with the run budget — short REPRO_FAST windows don't
    # give the round-robin queues time to clog; REPRO_FULL shows the
    # paper-scale gap.)
    assert icount8 > 1.01 * rr8

    # IQPOSN provides similar (but not better) results than ICOUNT
    # (paper: within 4%, never exceeding it; we allow a little noise).
    assert iqposn8 > 0.9 * rr8
    assert iqposn8 < 1.08 * icount8

    # ICOUNT helps at 4 threads too, not only at saturation.
    assert ipc("ICOUNT.2.8", 4) > ipc("RR.2.8", 4)

    # No policy collapses.
    for label in data:
        assert ipc(label, 8) > 0.5 * rr8
