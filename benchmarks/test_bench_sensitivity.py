"""Sensitivity sweeps (extensions; DESIGN.md §6).

Charts how the improved architecture responds as each structure scales
through its design space — the follow-up questions an adopting
architect would ask after the paper's Section 7.
"""

from benchmarks.conftest import run_once
from repro.experiments import sensitivity


def test_queue_size_sensitivity(benchmark, budget):
    sweep = run_once(
        benchmark,
        lambda: sensitivity.queue_size_sweep(budget=budget,
                                             sizes=(8, 16, 32, 64)),
    )
    sensitivity.print_sweep("IQ size sweep", sweep, " entries")
    by_size = {v: p.ipc for v, p in sweep}
    # 8-entry queues genuinely throttle an 8-thread machine...
    assert by_size[8] < by_size[32]
    # ...but past the paper's 32 the return is small (its Section 7
    # claim, seen here as a curve rather than one point).
    assert by_size[64] < 1.15 * by_size[32]


def test_ras_depth_sensitivity(benchmark, budget):
    sweep = run_once(
        benchmark,
        lambda: sensitivity.ras_depth_sweep(budget=budget,
                                            depths=(1, 12, 32)),
    )
    sensitivity.print_sweep("RAS depth sweep", sweep, " entries")
    by_depth = {v: p.ipc for v, p in sweep}
    # A 1-entry return stack mispredicts nested returns; 12 is enough
    # that 32 adds little.
    assert by_depth[12] >= 0.95 * by_depth[32]
    assert by_depth[1] <= 1.02 * by_depth[12]


def test_mshr_sensitivity(benchmark, budget):
    sweep = run_once(
        benchmark,
        lambda: sensitivity.mshr_sweep(budget=budget, counts=(1, 16)),
    )
    sensitivity.print_sweep("D-cache MSHR sweep", sweep, " MSHRs")
    by_count = {v: p.ipc for v, p in sweep}
    # A single MSHR serialises 8 threads' miss streams.
    assert by_count[1] < 1.02 * by_count[16]
