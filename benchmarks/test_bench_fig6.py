"""Figure 6: BIGQ and ITAG on top of ICOUNT fetch.

Paper: the bigger (64-entry, 32-searchable) queues add nothing once
ICOUNT is in place (and can even hurt, by acting on stale priorities);
early I-cache tag lookup helps ICOUNT.1.8 most (up to +8%) and the
flexible 2.8 scheme little (<2%), while costing with few threads.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_figure6(benchmark, budget):
    data = run_once(
        benchmark,
        lambda: figures.figure6(budget=budget, thread_counts=(4, 8),
                                partitions=((1, 8), (2, 8))),
    )
    figures.print_figure6(data)

    def ipc(label, threads):
        return next(p.ipc for p in data[label] if p.n_threads == threads)

    icount8 = ipc("ICOUNT.2.8", 8)

    # BIGQ adds no significant improvement over ICOUNT (paper: ~0%,
    # sometimes negative).  Assert it is not a material win.
    assert ipc("BIGQ,ICOUNT.2.8", 8) < 1.10 * icount8

    # ITAG does not collapse anything and stays in the same band.
    assert ipc("ITAG,ICOUNT.2.8", 8) > 0.85 * icount8
    assert ipc("ITAG,ICOUNT.1.8", 8) > 0.85 * ipc("ICOUNT.1.8", 8)
