"""Figure 3: instruction throughput of the base hardware design.

Paper: the unmodified superscalar reaches 2.16 IPC; the base SMT design
loses <2% at one thread and peaks 84% above the superscalar (before 8
threads); utilization stays below 50% of the 8-issue machine.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_figure3(benchmark, budget):
    data = run_once(
        benchmark,
        lambda: figures.figure3(budget=budget, thread_counts=(1, 2, 4, 8)),
    )
    figures.print_figure3(data)

    base = {p.n_threads: p.ipc for p in data["RR.1.8"]}
    superscalar = data["Unmodified Superscalar"][0].ipc

    # Single-thread SMT within a small penalty of the superscalar.
    assert base[1] > 0.85 * superscalar
    assert base[1] < 1.15 * superscalar

    # Multithreading raises throughput substantially over one thread.
    peak = max(base.values())
    assert peak > 1.15 * base[1]
    assert peak > 1.15 * superscalar

    # The base design leaves the 8-issue machine well under-utilised
    # (paper: <50%; allow headroom for calibration differences).
    assert peak < 0.75 * 8
