#!/usr/bin/env python
"""Chaos smoke test: SIGKILL a real worker mid-lease, verify recovery.

The in-process chaos suite (``tests/verify/test_chaos.py``) covers
every fault kind deterministically, but on a virtual clock with
simulated kills.  This script supplies the one guarantee only a real
process can give: a worker that dies by **actual SIGKILL** — no atexit
hooks, no flushed buffers, a live ``flock`` holder vanishing — costs
the campaign nothing but one lease TTL.

Sequence:

1. Build the fault-free baseline: run the same campaign spec grid in a
   pristine directory with a healthy worker, capture the canonical
   report bytes.
2. Submit the grid to a fresh campaign and start a *victim*
   ``repro worker`` armed with a chaos plan (``kill_after_claims: 1``)
   — it SIGKILLs itself immediately after its first successful claim,
   mid-lease, with the task neither finished nor released.
3. Verify the victim really died by signal, then start a *rescuer*
   worker with ``--drain``.  It must reclaim the orphaned lease after
   the TTL and complete every task.
4. Assert every task is ``done`` and the recovered campaign's report is
   **bit-identical** to the fault-free baseline.

Run:  PYTHONPATH=src python scripts/chaos_smoke.py [--threads 2]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile

from repro.core.config import SMTConfig
from repro.experiments import export
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import RunBudget
from repro.sched.campaign import (
    CampaignConfig,
    campaign_report,
    describe_status,
    submit_specs,
)
from repro.sched.state import load_state

#: Two tiny runs: enough for the victim to orphan one task mid-lease
#: while the other still exercises the normal path on the rescuer.
SMOKE_BUDGET = RunBudget(warmup_cycles=200, measure_cycles=1000,
                         functional_warmup_instructions=5000, rotations=1)


def smoke_specs(threads: int):
    return [
        RunSpec(config=SMTConfig(n_threads=threads), rotation=rotation,
                budget=SMOKE_BUDGET)
        for rotation in range(2)
    ]


def worker_argv(directory: str, chaos_plan: str = "",
                drain: bool = False, worker_id: str = "") -> list:
    argv = [sys.executable, "-m", "repro", "worker", directory,
            "--poll", "0.1"]
    if worker_id:
        argv += ["--id", worker_id]
    if chaos_plan:
        argv += ["--chaos", chaos_plan]
    if drain:
        argv += ["--drain"]
    return argv


def run_campaign_to_report(directory: str, specs, env,
                           lease_ttl: float) -> bytes:
    """Submit + drain ``specs`` with one healthy worker; report bytes."""
    submit_specs(directory, specs,
                 CampaignConfig(name="chaos-smoke", lease_ttl=lease_ttl))
    subprocess.run(worker_argv(directory, drain=True, worker_id="healthy"),
                   env=env, check=True, stdout=subprocess.DEVNULL,
                   timeout=600)
    return export.fabric_report_bytes(campaign_report(directory))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--lease-ttl", type=float, default=5.0,
                        help="victim lease TTL: the recovery delay the "
                             "smoke pays (default 5s)")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-chaos-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), os.pardir,
                                 "src"),
                    env.get("PYTHONPATH", "")) if p)
    env["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")
    specs = smoke_specs(args.threads)

    print(f"[1/3] fault-free baseline ({len(specs)} runs)")
    baseline_dir = os.path.join(workdir, "baseline")
    baseline = run_campaign_to_report(baseline_dir, specs, env,
                                      args.lease_ttl)

    print("[2/3] victim worker armed with kill_after_claims=1")
    chaos_dir = os.path.join(workdir, "chaos")
    submit_specs(chaos_dir, specs,
                 CampaignConfig(name="chaos-smoke",
                                lease_ttl=args.lease_ttl))
    plan_path = os.path.join(workdir, "plan.json")
    with open(plan_path, "w", encoding="utf-8") as handle:
        json.dump({"kill_after_claims": 1}, handle)
    victim = subprocess.run(
        worker_argv(chaos_dir, chaos_plan=plan_path, worker_id="victim"),
        env=env, stdout=subprocess.DEVNULL, timeout=600,
    )
    if victim.returncode != -signal.SIGKILL:
        print(f"FAIL: victim exited {victim.returncode}, expected "
              f"-{int(signal.SIGKILL)} (SIGKILL)", file=sys.stderr)
        return 1
    state = load_state(chaos_dir)
    leased = [t for t in state.iter_tasks() if t.status == "leased"]
    if not leased:
        print("FAIL: victim died without leaving an orphaned lease — "
              "the smoke exercised nothing", file=sys.stderr)
        print(describe_status(state), file=sys.stderr)
        return 1
    print(f"      victim SIGKILLed mid-lease, task "
          f"{leased[0].key[:12]} orphaned")

    print(f"[3/3] rescuer drains the campaign (waits out the "
          f"{args.lease_ttl:.0f}s TTL)")
    subprocess.run(worker_argv(chaos_dir, drain=True, worker_id="rescuer"),
                   env=env, check=True, stdout=subprocess.DEVNULL,
                   timeout=600)

    state = load_state(chaos_dir)
    print(describe_status(state))
    counts = state.counts()
    if counts["done"] != len(specs):
        print(f"FAIL: {counts['done']}/{len(specs)} done after recovery",
              file=sys.stderr)
        return 1
    suspects = {w for t in state.iter_tasks() for w in t.suspects}
    if not any(s.startswith("victim") or s == "victim" for s in suspects):
        print(f"FAIL: victim never entered a suspect set ({suspects}) — "
              "recovery happened without a reclaim?", file=sys.stderr)
        return 1
    recovered = export.fabric_report_bytes(campaign_report(chaos_dir))
    if recovered != baseline:
        print("FAIL: recovered report differs from fault-free baseline",
              file=sys.stderr)
        return 1
    print(f"chaos smoke OK: worker SIGKILLed mid-lease, lease reclaimed, "
          f"{counts['done']}/{len(specs)} done, report bit-identical "
          f"to baseline ({len(recovered)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
