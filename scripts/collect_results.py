#!/usr/bin/env python
"""Collect the full set of paper-reproduction results.

Runs every figure and table harness plus the Section 7 bottleneck
report at a serious budget, printing everything in the paper's format.
Used to populate EXPERIMENTS.md.

Run:  python scripts/collect_results.py [--jobs N] [--no-cache] \
          | tee experiments_output.txt

``--jobs N`` shards the simulation runs over N worker processes; the
persistent result cache (see docs/performance.md) makes re-collection
after an interrupted run nearly free.  Results are identical for any
job count and cache state.
"""

import argparse
import time

from repro.experiments import adaptive, bottlenecks, figures, parallel, tables
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.runner import RunBudget

BUDGET = RunBudget(
    warmup_cycles=3000,
    measure_cycles=15000,
    functional_warmup_instructions=80000,
    rotations=2,
)


def stamp(label):
    print(f"\n{'=' * 70}\n{label}\n{'=' * 70}", flush=True)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="worker processes (default: REPRO_JOBS or 1)")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the persistent result cache")
    ap.add_argument("--progress", action="store_true",
                    help="report per-batch progress (runs / cache hits / "
                         "elapsed) on stderr")
    args = ap.parse_args()

    # Unset knobs stay None so REPRO_JOBS / REPRO_NO_CACHE are re-read
    # on every batch instead of being frozen at startup.
    parallel.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        progress=parallel.progress_printer() if args.progress else None,
    )

    t0 = time.time()

    stamp("Figure 3: base hardware throughput")
    figures.print_figure3(
        figures.figure3(budget=BUDGET, thread_counts=(1, 2, 4, 6, 8))
    )

    stamp("Table 3: low-level metrics, base architecture")
    tables.print_table3(tables.table3(budget=BUDGET))

    stamp("Figure 4: fetch partitioning")
    figures.print_figure4(
        figures.figure4(budget=BUDGET, thread_counts=(1, 4, 8))
    )

    stamp("Figure 5: fetch thread-choice policies")
    figures.print_figure5(
        figures.figure5(budget=BUDGET, thread_counts=(4, 8))
    )

    stamp("Table 4: RR vs ICOUNT low-level metrics")
    tables.print_table4(tables.table4(budget=BUDGET))

    stamp("Figure 6: BIGQ and ITAG")
    figures.print_figure6(
        figures.figure6(budget=BUDGET, thread_counts=(4, 8))
    )

    stamp("Table 5: issue priority schemes")
    tables.print_table5(tables.table5(budget=BUDGET))

    stamp("Figure 7: 200 physical registers, 1-5 contexts")
    figures.print_figure7(figures.figure7(budget=BUDGET))

    stamp("Adaptive study: meta-policies vs static fetch policies")
    adaptive.print_adaptive_study(adaptive.adaptive_study(budget=BUDGET))

    stamp("Section 7: bottleneck experiments")
    bottlenecks.print_report(BUDGET)

    print(f"\ntotal collection time: {time.time() - t0:.0f}s", flush=True)
    if not args.no_cache and parallel.default_use_cache():
        cache = ResultCache(default_cache_dir())
        print(f"result cache: {len(cache)} entries at {cache.directory}",
              flush=True)


if __name__ == "__main__":
    main()
