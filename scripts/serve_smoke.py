#!/usr/bin/env python
"""Service smoke test: a real ``repro serve`` process end to end.

The in-process service suite (``tests/service/``) covers every verb,
fault, and drain path on an event loop it owns.  This script supplies
the guarantees only a real OS process can give: a server reached
through an actual Unix socket by a client in another process, token
auth carried via the environment, and a **real SIGTERM** that must
drain cleanly — handlers installed by the CLI, not by a test harness.

Sequence:

1. Build the fault-free baseline: submit the spec grid straight to the
   filesystem journal and drain it with a ``repro worker`` subprocess;
   capture the canonical report bytes.
2. Start ``repro serve`` on a Unix socket with ``REPRO_SERVE_TOKEN``
   set.  Submit the same grid through the sync client (token picked up
   from the environment), drain with a worker subprocess, and fetch
   the report over the socket.
3. Assert the socket-fetched report is **bit-identical** to the
   filesystem baseline.
4. SIGTERM the server: it must exit 0 and print its drain summary.

Run:  PYTHONPATH=src python scripts/serve_smoke.py [--threads 2]
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.core.config import SMTConfig
from repro.experiments import export
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import RunBudget
from repro.sched.campaign import CampaignConfig, campaign_report, submit_specs
from repro.service.client import ServiceClient, ServiceError

SMOKE_BUDGET = RunBudget(warmup_cycles=200, measure_cycles=1000,
                         functional_warmup_instructions=5000, rotations=1)

#: Both paths must submit under the same campaign name — the name is
#: part of the canonical report document.
SMOKE_CONFIG = CampaignConfig(name="serve-smoke", lease_ttl=10.0)

SMOKE_TOKEN = "serve-smoke-token"


def smoke_specs(threads: int):
    return [
        RunSpec(config=SMTConfig(n_threads=threads), rotation=rotation,
                budget=SMOKE_BUDGET)
        for rotation in range(2)
    ]


def drain(directory: str, env, worker_id: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro", "worker", directory,
         "--poll", "0.1", "--id", worker_id, "--drain"],
        env=env, check=True, stdout=subprocess.DEVNULL, timeout=600)


def wait_for_socket(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client.ping()
            return
        except ServiceError:
            time.sleep(0.1)
    raise SystemExit("FAIL: server socket never came up")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=2)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), os.pardir,
                                 "src"),
                    env.get("PYTHONPATH", "")) if p)
    env["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")
    env["REPRO_SERVE_TOKEN"] = SMOKE_TOKEN
    specs = smoke_specs(args.threads)

    print(f"[1/4] filesystem baseline ({len(specs)} runs)")
    baseline_dir = os.path.join(workdir, "baseline")
    submit_specs(baseline_dir, specs, SMOKE_CONFIG)
    drain(baseline_dir, env, worker_id="fs-worker")
    baseline = export.fabric_report_bytes(campaign_report(baseline_dir))

    print("[2/4] repro serve on a Unix socket, token auth from env")
    serve_dir = os.path.join(workdir, "served")
    sock = os.path.join(workdir, "serve.sock")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", serve_dir,
         "--unix", sock],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        client = ServiceClient(sock, token=SMOKE_TOKEN)
        wait_for_socket(client)
        try:
            ServiceClient(sock, token="wrong", retries=0).ping()
        except ServiceError as error:
            if error.kind != "auth":
                raise SystemExit(f"FAIL: wrong token got {error.kind!r}, "
                                 "expected 'auth'")
        else:
            raise SystemExit("FAIL: wrong token was accepted")
        ack = client.submit(specs, SMOKE_CONFIG)
        print(f"      submitted {ack['added']}/{ack['total']} over "
              "the socket")

        print("[3/4] worker drains the served campaign")
        drain(serve_dir, env, worker_id="sock-worker")
        served = client.report_bytes()
        if served != baseline:
            print("FAIL: socket-fetched report differs from filesystem "
                  "baseline", file=sys.stderr)
            return 1
        print(f"      report bit-identical to baseline "
              f"({len(served)} bytes)")

        print("[4/4] SIGTERM the server: clean drain expected")
        server.send_signal(signal.SIGTERM)
        try:
            output, _ = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            print("FAIL: server did not drain within 30s of SIGTERM",
                  file=sys.stderr)
            return 1
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)

    if server.returncode != 0:
        print(f"FAIL: server exited {server.returncode} after SIGTERM\n"
              f"{output}", file=sys.stderr)
        return 1
    if "drained:" not in output:
        print(f"FAIL: server never printed its drain summary\n{output}",
              file=sys.stderr)
        return 1
    print(f"serve smoke OK: auth enforced, socket submission drained, "
          f"report bit-identical, SIGTERM drained cleanly "
          f"({output.strip().splitlines()[-1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
