#!/usr/bin/env python
"""Differential fuzzing campaign for CI and local soak runs.

Generates random (machine config x workload mix x seed) simulations,
runs each with the pipeline invariant sanitizer attached and every
committed instruction checked against the per-thread architectural
oracle, shrinks any failure to a minimal reproducer under
``tests/corpus/``, and writes a machine-readable campaign summary.

Exit status is non-zero if any seed diverged, violated an invariant,
crashed, or stalled.

Run:  PYTHONPATH=src python scripts/fuzz_diff.py [--seeds N]
          [--max-cycles N] [--jobs N] [--summary-json PATH]
"""

import argparse
import json
import multiprocessing
import sys

from repro.experiments import export
from repro.verify import fuzz


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25)
    parser.add_argument("--start-seed", type=int, default=0)
    parser.add_argument("--max-cycles", type=int, default=3000)
    parser.add_argument("--check-interval", type=int, default=1)
    parser.add_argument("--jobs", type=int,
                        default=min(4, multiprocessing.cpu_count()))
    parser.add_argument("--corpus", default="tests/corpus")
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument("--summary-json", default=None,
                        help="write a JSON campaign summary")
    args = parser.parse_args()

    summary = fuzz.fuzz_run(
        seeds=args.seeds,
        start_seed=args.start_seed,
        max_cycles=args.max_cycles,
        check_interval=args.check_interval,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus,
        log=lambda message: print(message, file=sys.stderr, flush=True),
    )
    print(summary.describe())

    if args.summary_json:
        document = {
            "seeds": summary.seeds,
            "start_seed": args.start_seed,
            "max_cycles": args.max_cycles,
            "ok": summary.ok,
            "clean": summary.clean,
            "total_commits": summary.total_commits,
            "total_cycles": summary.total_cycles,
            "elapsed_s": round(summary.elapsed, 2),
            "failures": [
                {
                    "seed": failure.seed,
                    "status": failure.outcome.status,
                    "case": failure.case.to_dict(),
                    "corpus_path": failure.corpus_path,
                    "violation": failure.outcome.violation and
                    export.violation_document(
                        failure.outcome.violation,
                        case=failure.case.to_dict(),
                        context=f"fuzz seed {failure.seed}",
                    ),
                }
                for failure in summary.failures
            ],
        }
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"summary: {args.summary_json}")

    return 0 if summary.clean else 1


if __name__ == "__main__":
    sys.exit(main())
