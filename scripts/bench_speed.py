#!/usr/bin/env python
"""Measure simulator speed and experiment-engine speedups.

Thin shim over :mod:`repro.perf.collect` (the measurement methodology
is documented there): runs the core fast-vs-reference benchmark and
the Figure 3 serial/pooled/warm-cache sweep, writes the legacy
``BENCH_speed.json`` layout, and **exits non-zero when the parallel
sweep is slower than serial** (parallel_speedup < 1) so that
regression can never land silently.

Sweeps use throwaway cache directories passed to the engine as
explicit ``ResultCache`` objects — the benchmark neither reads nor
pollutes the user's real cache, and ``REPRO_CACHE_DIR`` is never
mutated.  ``--jobs`` defaults to ``max(2, min(4, cpu_count))`` so the
pooled path is always exercised.

For per-commit tracking, prefer ``python -m repro perf record`` — it
stores the same measurements as a schema-versioned profile keyed by
git SHA, and ``repro perf check`` judges them against the trend.

Run:  PYTHONPATH=src python scripts/bench_speed.py [--quick] [--jobs N]
"""

import argparse
import json
import sys

from repro.perf import collect


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker processes for the parallel sweep "
                         "(default max(2, min(4, cpu_count)) so the "
                         "pooled path is always exercised)")
    ap.add_argument("--steps", type=int, default=None,
                    help="timed simulator cycles per core-benchmark rep")
    ap.add_argument("--reps", type=int, default=3,
                    help="core-benchmark repetitions (min 3, median wins)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke mode: smaller budgets and step counts")
    ap.add_argument("--output", default="BENCH_speed.json")
    args = ap.parse_args()

    profile = collect.collect_profile(
        quick=args.quick, jobs=args.jobs, steps=args.steps, reps=args.reps,
    )
    with open(args.output, "w") as fh:
        json.dump(collect.legacy_report(profile), fh, indent=2)
        fh.write("\n")

    print(collect.summarize(profile))
    print(f"report written : {args.output}")

    speedup = profile["metrics"]["parallel_speedup"]
    if speedup is not None and speedup < 1.0:
        print(f"FAIL: parallel figure3 sweep slower than serial "
              f"(speedup {speedup}x < 1.0)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
