#!/usr/bin/env python
"""Measure simulator speed and experiment-engine speedups.

Measurements, written to ``BENCH_speed.json`` alongside enough metadata
(git SHA, python version, cpu count) to compare runs across commits:

1. ``core_cycles_per_sec`` — inner-loop speed of the fast-step path:
   timed ``run_cycles`` of an ICOUNT.2.8 machine at 8 threads, the hot
   loop every experiment spends its time in.  A warmup pass precedes
   timing and the figure is the **median of ≥3 repetitions**,
   interleaved A/B with the reference ``step()`` path so host noise
   hits both alike (``reference_cycles_per_sec``,
   ``fast_vs_reference_speedup``).
2. ``figure3_serial_s`` / ``figure3_jobs_s`` — wall time for the
   REPRO_FAST Figure 3 sweep run serially vs on the persistent worker
   pool (``--jobs``, default ``min(4, cpu_count)``), both with a cold
   result cache.  The serial sweep populates the process warm-image
   store, so the pooled sweep (forked afterwards) inherits every warm
   state copy-on-write — the speedup measures the engine as campaigns
   actually experience it: pool reuse + warmup amortisation, not just
   core parallelism.
3. ``figure3_warm_cache_s`` — the same sweep replayed from the
   persistent result cache.

The benchmark **exits non-zero when the parallel sweep is slower than
serial** (parallel_speedup < 1), so that regression can never land
silently; each sweep uses a throwaway cache directory so the benchmark
neither reads nor pollutes the user's real cache.

Run:  PYTHONPATH=src python scripts/bench_speed.py [--quick] [--jobs N]
"""

import argparse
import json
import multiprocessing
import os
import platform
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.experiments import figures, parallel
from repro.experiments.cache import ResultCache
from repro.experiments.runner import RunBudget
from repro.workloads import images
from repro.workloads.mixes import standard_mix

FAST_BUDGET = RunBudget(warmup_cycles=1000, measure_cycles=8000,
                        functional_warmup_instructions=30000, rotations=1)
QUICK_BUDGET = RunBudget(warmup_cycles=500, measure_cycles=3000,
                         functional_warmup_instructions=15000, rotations=1)


def collect_metadata() -> dict:
    sha = None
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        if proc.returncode == 0:
            sha = proc.stdout.strip()
    except OSError:
        pass
    return {
        "git_sha": sha,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "host_cpus": multiprocessing.cpu_count(),
        "platform": platform.platform(),
    }


def bench_core(steps: int, reps: int, warm_instructions: int) -> dict:
    """Median cycles/second of the simulator inner loop, fast vs reference.

    One long-lived simulator per path; repetitions are interleaved
    fast/reference so drift in host load lands on both paths equally.
    """
    config = scheme("ICOUNT", 2, 8, n_threads=8)

    def make(fast: bool) -> Simulator:
        sim = Simulator(config, standard_mix(8, 0))
        sim.use_fast_step = fast
        sim.functional_warmup(warm_instructions)
        sim.run_cycles(500)  # warmup pass: settle the pipeline, warm dicts
        return sim

    sims = {"fast": make(True), "reference": make(False)}
    times = {"fast": [], "reference": []}
    for _ in range(max(3, reps)):
        for label, sim in sims.items():
            t0 = time.perf_counter()
            sim.run_cycles(steps)
            times[label].append(time.perf_counter() - t0)

    fast_med = statistics.median(times["fast"])
    ref_med = statistics.median(times["reference"])
    return {
        "steps": steps,
        "reps": max(3, reps),
        "fast_rep_seconds": [round(t, 3) for t in times["fast"]],
        "reference_rep_seconds": [round(t, 3) for t in times["reference"]],
        "core_cycles_per_sec": round(steps / fast_med, 1),
        "reference_cycles_per_sec": round(steps / ref_med, 1),
        "fast_vs_reference_speedup": round(ref_med / fast_med, 2),
    }


def bench_figure3(jobs: int, budget: RunBudget) -> dict:
    """Figure 3 sweep: serial cold, parallel cold, then warm cache."""
    times = {}

    def sweep(label, run_jobs, cache_dir):
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        t0 = time.perf_counter()
        figures.figure3(budget=budget, jobs=run_jobs, use_cache=True)
        times[label] = round(time.perf_counter() - t0, 3)

    serial_dir = tempfile.mkdtemp(prefix="bench-cache-")
    pooled_dir = tempfile.mkdtemp(prefix="bench-cache-")
    saved = os.environ.get("REPRO_CACHE_DIR")
    images.clear()
    try:
        sweep("figure3_serial_s", 1, serial_dir)
        # Fork the persistent pool outside the timed region: campaigns
        # reuse one long-lived pool, so steady-state is what matters.
        parallel._persistent_pool(jobs)
        sweep("figure3_jobs_s", jobs, pooled_dir)
        sweep("figure3_warm_cache_s", 1, pooled_dir)
        entries = len(ResultCache(pooled_dir))
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(pooled_dir, ignore_errors=True)

    serial, pooled = times["figure3_serial_s"], times["figure3_jobs_s"]
    times.update(
        jobs=jobs,
        cache_entries=entries,
        warm_image_entries=images.size(),
        parallel_speedup=round(serial / pooled, 2) if pooled else None,
        warm_cache_speedup=(
            round(serial / times["figure3_warm_cache_s"], 2)
            if times["figure3_warm_cache_s"] else None
        ),
    )
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int,
                    default=max(2, min(4, multiprocessing.cpu_count())),
                    help="worker processes for the parallel sweep "
                         "(>= 2 so the pooled path is always exercised)")
    ap.add_argument("--steps", type=int, default=None,
                    help="timed simulator cycles per core-benchmark rep")
    ap.add_argument("--reps", type=int, default=3,
                    help="core-benchmark repetitions (min 3, median wins)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke mode: smaller budgets and step counts")
    ap.add_argument("--output", default="BENCH_speed.json")
    args = ap.parse_args()

    budget = QUICK_BUDGET if args.quick else FAST_BUDGET
    steps = args.steps if args.steps is not None else (
        4000 if args.quick else 12000
    )

    report = {
        "metadata": collect_metadata(),
        "quick": args.quick,
        "core": bench_core(steps, args.reps,
                           budget.functional_warmup_instructions),
        "figure3": bench_figure3(args.jobs, budget),
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    core = report["core"]
    fig = report["figure3"]
    print(f"core loop      : {core['core_cycles_per_sec']:.0f} cycles/sec "
          f"median of {core['reps']}x{core['steps']} steps "
          f"(reference {core['reference_cycles_per_sec']:.0f}, "
          f"{core['fast_vs_reference_speedup']}x)")
    print(f"figure 3 sweep : serial {fig['figure3_serial_s']}s, "
          f"--jobs {fig['jobs']} {fig['figure3_jobs_s']}s "
          f"({fig['parallel_speedup']}x), "
          f"warm cache {fig['figure3_warm_cache_s']}s "
          f"({fig['warm_cache_speedup']}x)")
    print(f"report written : {args.output}")

    if fig["parallel_speedup"] is not None and fig["parallel_speedup"] < 1.0:
        print(f"FAIL: parallel figure3 sweep slower than serial "
              f"(speedup {fig['parallel_speedup']}x < 1.0)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
