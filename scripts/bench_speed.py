#!/usr/bin/env python
"""Measure simulator speed and experiment-engine speedups.

Three measurements, written to ``BENCH_speed.json``:

1. ``core_cycles_per_sec`` — raw inner-loop speed: timed ``step()``
   cycles of an ICOUNT.2.8 machine at 8 threads (the hot path every
   experiment spends its time in).
2. ``figure3_serial_s`` / ``figure3_jobs_s`` — wall time for the
   REPRO_FAST Figure 3 sweep run serially vs sharded over a worker
   pool (``--jobs``, default ``min(4, cpu_count)``), both with a cold
   cache.
3. ``figure3_warm_cache_s`` — the same sweep replayed from the
   persistent result cache.

Each sweep uses a throwaway cache directory so the benchmark neither
reads nor pollutes the user's real cache.

Run:  PYTHONPATH=src python scripts/bench_speed.py [--jobs N] [--steps N]
"""

import argparse
import json
import multiprocessing
import os
import shutil
import tempfile
import time

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.experiments import figures
from repro.experiments.cache import ResultCache
from repro.experiments.runner import RunBudget
from repro.workloads.mixes import standard_mix

FAST_BUDGET = RunBudget(warmup_cycles=1000, measure_cycles=8000,
                        functional_warmup_instructions=30000, rotations=1)


def bench_core(steps: int) -> dict:
    """Timed cycles/second of the simulator inner loop."""
    config = scheme("ICOUNT", 2, 8, n_threads=8)
    sim = Simulator(config, standard_mix(8, 0))
    sim.functional_warmup(FAST_BUDGET.functional_warmup_instructions)
    for _ in range(500):  # settle the pipeline before timing
        sim.step()
    t0 = time.perf_counter()
    for _ in range(steps):
        sim.step()
    elapsed = time.perf_counter() - t0
    return {
        "steps": steps,
        "seconds": round(elapsed, 3),
        "core_cycles_per_sec": round(steps / elapsed, 1),
    }


def bench_figure3(jobs: int) -> dict:
    """Figure 3 sweep: serial cold, parallel cold, then warm cache."""
    times = {}

    def sweep(label, run_jobs, cache_dir):
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        t0 = time.perf_counter()
        figures.figure3(budget=FAST_BUDGET, jobs=run_jobs, use_cache=True)
        times[label] = round(time.perf_counter() - t0, 3)

    serial_dir = tempfile.mkdtemp(prefix="bench-cache-")
    pooled_dir = tempfile.mkdtemp(prefix="bench-cache-")
    saved = os.environ.get("REPRO_CACHE_DIR")
    try:
        sweep("figure3_serial_s", 1, serial_dir)
        sweep("figure3_jobs_s", jobs, pooled_dir)
        sweep("figure3_warm_cache_s", 1, pooled_dir)
        entries = len(ResultCache(pooled_dir))
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(pooled_dir, ignore_errors=True)

    serial, pooled = times["figure3_serial_s"], times["figure3_jobs_s"]
    times.update(
        jobs=jobs,
        cache_entries=entries,
        parallel_speedup=round(serial / pooled, 2) if pooled else None,
        warm_cache_speedup=(
            round(serial / times["figure3_warm_cache_s"], 2)
            if times["figure3_warm_cache_s"] else None
        ),
    )
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int,
                    default=min(4, multiprocessing.cpu_count()),
                    help="worker processes for the parallel sweep")
    ap.add_argument("--steps", type=int, default=12000,
                    help="timed simulator cycles for the core benchmark")
    ap.add_argument("--output", default="BENCH_speed.json")
    args = ap.parse_args()

    report = {
        "host_cpus": multiprocessing.cpu_count(),
        "core": bench_core(args.steps),
        "figure3": bench_figure3(args.jobs),
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    core = report["core"]
    fig = report["figure3"]
    print(f"core loop      : {core['core_cycles_per_sec']:.0f} cycles/sec "
          f"({core['steps']} steps in {core['seconds']}s)")
    print(f"figure 3 sweep : serial {fig['figure3_serial_s']}s, "
          f"--jobs {fig['jobs']} {fig['figure3_jobs_s']}s "
          f"({fig['parallel_speedup']}x), "
          f"warm cache {fig['figure3_warm_cache_s']}s "
          f"({fig['warm_cache_speedup']}x)")
    print(f"report written : {args.output}")


if __name__ == "__main__":
    main()
