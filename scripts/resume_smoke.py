#!/usr/bin/env python
"""Kill-and-resume smoke test for supervised experiment campaigns.

Launches a supervised ``repro experiment`` as a subprocess with a
checkpoint journal, hard-kills it (SIGKILL — simulating a crashed or
OOM-killed campaign) as soon as the journal records at least one
completed point, then reruns the same campaign with ``--resume`` and
verifies that it finishes cleanly, that every point succeeded, and that
the points completed before the kill were *skipped* (replayed from the
journal + result cache) rather than re-simulated.

This is the end-to-end guarantee the checkpoint layer exists for: an
interrupted campaign loses at most the in-flight run.

Run:  PYTHONPATH=src python scripts/resume_smoke.py [--experiment fig7]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.experiments.supervise import JournalState

#: fig7 --fast: five single-rotation points at 1-5 threads — small
#: enough for CI, long enough that a kill lands mid-batch.
DEFAULT_EXPERIMENT = "fig7"


def _campaign_argv(experiment: str, journal: str, resume: bool,
                   report: str = "") -> list:
    argv = [
        sys.executable, "-m", "repro", "experiment", experiment, "--fast",
        "--jobs", "1", "--timeout", "120", "--max-retries", "0",
    ]
    argv += ["--resume", journal] if resume else ["--journal", journal]
    if report:
        argv += ["--report", report]
    return argv


def _done_count(journal: str) -> int:
    return len(JournalState.load(journal).completed)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default=DEFAULT_EXPERIMENT)
    parser.add_argument("--first-done-timeout", type=float, default=300.0,
                        help="seconds to wait for the first journaled "
                             "completion before giving up")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-resume-smoke-")
    journal = os.path.join(workdir, "campaign.jsonl")
    report = os.path.join(workdir, "report.json")
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")

    # Phase 1: start the campaign, kill it after the first completion.
    print(f"[1/3] launching supervised {args.experiment} campaign "
          f"(journal: {journal})")
    victim = subprocess.Popen(
        _campaign_argv(args.experiment, journal, resume=False),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + args.first_done_timeout
    while _done_count(journal) == 0:
        if victim.poll() is not None:
            print(f"FAIL: campaign exited (code {victim.returncode}) "
                  "before completing a single point", file=sys.stderr)
            return 1
        if time.monotonic() > deadline:
            victim.kill()
            print("FAIL: no journaled completion before timeout",
                  file=sys.stderr)
            return 1
        time.sleep(0.1)

    victim.send_signal(signal.SIGKILL)
    victim.wait()
    done_at_kill = _done_count(journal)
    print(f"[2/3] campaign SIGKILLed mid-batch with "
          f"{done_at_kill} point(s) journaled")

    # Phase 2: resume the same campaign from the journal.
    completed = subprocess.run(
        _campaign_argv(args.experiment, journal, resume=True, report=report),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    print(completed.stdout)
    if completed.returncode != 0:
        print(f"FAIL: resume exited with code {completed.returncode}",
              file=sys.stderr)
        return 1

    # Phase 3: the resumed run must have finished every point and
    # skipped (not re-simulated) the ones that survived the kill.
    with open(report) as handle:
        totals = json.load(handle)["totals"]
    print(f"[3/3] resume report: {totals}")
    failures = []
    if totals["failed"] or totals["succeeded"] != totals["total"]:
        failures.append(f"resume left unfinished points: {totals}")
    if totals["skipped"] < done_at_kill:
        failures.append(
            f"resume re-simulated journaled points: skipped "
            f"{totals['skipped']} < {done_at_kill} done at kill time"
        )
    if totals["simulated"] > totals["total"] - done_at_kill:
        failures.append(
            f"resume executed {totals['simulated']} points, expected at "
            f"most {totals['total'] - done_at_kill}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"resume smoke OK: killed at {done_at_kill} done, resumed "
              f"{totals['simulated']} remaining, skipped "
              f"{totals['skipped']}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
