"""Tests for the adaptive meta-policies: decision algorithms on
synthetic signal streams, end-to-end determinism on the real simulator,
and result-cache key distinctness."""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.experiments.cache import result_key
from repro.experiments.runner import RunBudget
from repro.policy import make_policy
from repro.policy.signals import IntervalSignals, PhaseDetector
from repro.workloads.mixes import standard_mix


def signals(ipc=4.0, iq_frac=0.3, wrong_path=0.05, misses=0,
            n_threads=4, cycles=100):
    """Synthetic interval with the given derived-metric values."""
    capacity = 64
    fetched = 1000
    return IntervalSignals(
        cycle_start=0,
        cycle_end=cycles,
        n_threads=n_threads,
        committed=int(ipc * cycles),
        control_committed=100,
        mispredicts=5,
        squashed=int(wrong_path * fetched),
        fetched=fetched,
        iq_occupancy=int(iq_frac * capacity),
        iq_capacity=capacity,
        outstanding_misses=misses,
        icache_blocked=0,
    )


# ----------------------------------------------------------------------
class TestHysteresis:
    def test_stays_on_icount_below_floor(self):
        policy = make_policy("HYSTERESIS:interval=100,dwell=2")
        for cycle in (100, 200, 300, 400):
            policy._decide(signals(iq_frac=0.05, wrong_path=0.01), cycle)
        assert policy.current == "ICOUNT"
        assert policy.switch_count == 0

    def test_dwell_defers_the_switch(self):
        policy = make_policy("HYSTERESIS:interval=100,dwell=3")
        heavy_wrong_path = signals(iq_frac=0.1, wrong_path=0.4)
        policy._decide(heavy_wrong_path, 100)
        assert policy.current == "ICOUNT"      # streak 1 of 3
        policy._decide(heavy_wrong_path, 200)
        assert policy.current == "ICOUNT"      # streak 2 of 3
        policy._decide(heavy_wrong_path, 300)
        assert policy.current == "BRCOUNT"     # streak 3: switch
        assert policy.switch_count == 1

    def test_interrupted_streak_resets(self):
        policy = make_policy("HYSTERESIS:interval=100,dwell=2")
        heavy = signals(iq_frac=0.1, wrong_path=0.4)
        calm = signals(iq_frac=0.05, wrong_path=0.01)
        policy._decide(heavy, 100)
        policy._decide(calm, 200)       # streak broken
        policy._decide(heavy, 300)      # streak 1 again
        assert policy.current == "ICOUNT"

    def test_miss_pressure_elects_misscount(self):
        policy = make_policy("HYSTERESIS:interval=100,dwell=1")
        policy._decide(signals(iq_frac=0.1, wrong_path=0.02, misses=8), 100)
        assert policy.current == "MISSCOUNT"


# ----------------------------------------------------------------------
class TestBandit:
    def test_samples_every_arm_before_exploiting(self):
        policy = make_policy("BANDIT:epsilon=0", seed=0)
        seen = []
        for i in range(len(policy.arm_names)):
            seen.append(policy.current)
            policy._decide(signals(ipc=2.0), (i + 1) * 150)
        assert sorted(seen) == sorted(policy.arm_names)

    def test_converges_on_best_arm(self):
        # phase_threshold high enough that the synthetic stream (whose
        # IPC depends on the chosen arm) stays one phase.
        policy = make_policy("BANDIT:epsilon=0,phase_threshold=4", seed=0)
        rewards = {"ICOUNT": 6.0, "BRCOUNT": 3.0, "MISSCOUNT": 2.0,
                   "RR": 1.0, "IQPOSN": 1.5}
        for i in range(30):
            policy._decide(signals(ipc=rewards[policy.current]),
                           (i + 1) * 150)
        assert policy.current == "ICOUNT"

    def test_ucb_converges_on_best_arm(self):
        policy = make_policy(
            "BANDIT:mode=ucb,ucb_c=0.1,phase_threshold=4", seed=0
        )
        rewards = {"ICOUNT": 2.0, "BRCOUNT": 6.0, "MISSCOUNT": 1.0,
                   "RR": 1.0, "IQPOSN": 1.0}
        for i in range(60):
            policy._decide(signals(ipc=rewards[policy.current]),
                           (i + 1) * 150)
        assert policy.current == "BRCOUNT"

    def test_per_phase_statistics(self):
        """Different phases learn different best arms."""
        policy = make_policy(
            "BANDIT:ICOUNT/BRCOUNT:epsilon=0,phase_threshold=0.3", seed=0
        )
        # Phase A: low IPC, empty queues; ICOUNT earns more.
        # Phase B: high IPC, clogged queues; BRCOUNT earns more.
        phase_a = {"ICOUNT": 2.0, "BRCOUNT": 0.5}
        phase_b = {"ICOUNT": 5.0, "BRCOUNT": 7.5}
        cycle = 0
        for _ in range(12):
            for _ in range(4):
                cycle += 150
                policy._decide(
                    signals(ipc=phase_a[policy.current], iq_frac=0.05),
                    cycle)
            for _ in range(4):
                cycle += 150
                policy._decide(
                    signals(ipc=phase_b[policy.current], iq_frac=0.9),
                    cycle)
        stats = policy._stats
        phases = {phase for phase, _ in stats}
        assert len(phases) >= 2
        # In at least one phase each arm dominates its rival.
        def mean(phase, arm):
            pulls, reward = stats.get((phase, arm), (0, 0.0))
            return reward / pulls if pulls else 0.0
        assert any(mean(p, "ICOUNT") > mean(p, "BRCOUNT") for p in phases)
        assert any(mean(p, "BRCOUNT") > mean(p, "ICOUNT") for p in phases)

    def test_same_seed_same_decisions(self):
        stream = [signals(ipc=float(2 + i % 3)) for i in range(40)]
        histories = []
        for _ in range(2):
            policy = make_policy("BANDIT:epsilon=0.3", seed=11)
            history = []
            for i, s in enumerate(stream):
                policy._decide(s, (i + 1) * 150)
                history.append(policy.current)
            histories.append(history)
        assert histories[0] == histories[1]

    def test_different_seed_can_differ(self):
        stream = [signals(ipc=float(2 + i % 3)) for i in range(60)]
        histories = []
        for seed in (1, 2):
            policy = make_policy("BANDIT:epsilon=0.5", seed=seed)
            history = []
            for i, s in enumerate(stream):
                policy._decide(s, (i + 1) * 150)
                history.append(policy.current)
            histories.append(history)
        assert histories[0] != histories[1]


# ----------------------------------------------------------------------
class TestTournament:
    def test_duel_cycle_and_counter(self):
        policy = make_policy("TOURNAMENT:ICOUNT/BRCOUNT:exploit=2")
        start = policy.counter
        # Sample A (ICOUNT) earns 2.0, sample B (BRCOUNT) earns 6.0:
        # the counter moves toward B and B is exploited.
        policy._decide(signals(ipc=2.0), 150)    # closes A's interval
        assert policy.current == "BRCOUNT"       # sampling challenger
        policy._decide(signals(ipc=6.0), 300)    # closes B's interval
        assert policy.counter == start - 1
        assert policy.current == "BRCOUNT"       # B leads, exploit
        # Exploit span, then back to sampling A.
        policy._decide(signals(ipc=6.0), 450)
        policy._decide(signals(ipc=6.0), 600)
        assert policy.current == "ICOUNT"

    def test_counter_saturates(self):
        policy = make_policy("TOURNAMENT:ICOUNT/BRCOUNT:exploit=1")
        for i in range(40):
            # A always wins: counter must stop at COUNTER_MAX.
            ipc = 6.0 if policy.current == "ICOUNT" else 2.0
            policy._decide(signals(ipc=ipc), (i + 1) * 150)
        assert policy.counter == policy.COUNTER_MAX
        assert policy.leader == "ICOUNT"


# ----------------------------------------------------------------------
class TestPhaseDetector:
    def test_stable_stream_is_one_phase(self):
        detector = PhaseDetector(threshold=0.25)
        for _ in range(20):
            assert detector.observe(signals(ipc=4.0, iq_frac=0.3)) == 0
        assert detector.to_dict()["phases"] == 1
        assert detector.transitions == 0

    def test_behaviour_jump_opens_new_phase(self):
        detector = PhaseDetector(threshold=0.25)
        detector.observe(signals(ipc=1.0, iq_frac=0.1))
        phase = detector.observe(signals(ipc=7.0, iq_frac=0.9))
        assert phase == 1
        assert detector.transitions == 1

    def test_recurring_phase_keeps_identity(self):
        detector = PhaseDetector(threshold=0.25)
        low = signals(ipc=1.0, iq_frac=0.1)
        high = signals(ipc=7.0, iq_frac=0.9)
        detector.observe(low)
        detector.observe(high)
        assert detector.observe(low) == 0
        assert detector.to_dict()["phases"] == 2

    def test_phase_count_bounded(self):
        detector = PhaseDetector(threshold=0.01, max_phases=4)
        for i in range(40):
            detector.observe(signals(ipc=(i % 8), iq_frac=(i % 5) / 5.0))
        assert detector.to_dict()["phases"] <= 4


# ----------------------------------------------------------------------
def _run(spec, seed=3, cycles=1500):
    cfg = SMTConfig(n_threads=4, fetch_policy=spec, fetch_threads=2,
                    seed=seed)
    sim = Simulator(cfg, standard_mix(4, seed=0))
    sim.run(warmup_cycles=200, measure_cycles=cycles,
            functional_warmup_instructions=4000)
    return sim


@pytest.mark.parametrize("spec", [
    "HYSTERESIS:interval=100,dwell=2",
    "BANDIT:interval=100",
    "BANDIT:interval=100,mode=ucb",
    "TOURNAMENT:ICOUNT/BRCOUNT:interval=100",
])
def test_meta_policies_bit_deterministic(spec):
    """Two identical runs agree on every commit and every switch."""
    a, b = _run(spec), _run(spec)
    assert a.stats.committed == b.stats.committed
    assert a.stats.ipc == b.stats.ipc
    ta, tb = a.policy_engine.telemetry(), b.policy_engine.telemetry()
    assert ta == tb
    assert ta["switch_events"] == tb["switch_events"]


def test_adaptive_run_commits_and_switches():
    sim = _run("BANDIT:interval=100", cycles=2500)
    stats = sim.policy_engine.telemetry()
    assert sim.stats.committed > 0
    assert stats["intervals"] >= 20
    assert sum(stats["choice_counts"].values()) == stats["intervals"]


def test_adaptive_results_identical_serial_vs_parallel():
    """A meta-policy run is a pure function of (config, workload): the
    worker pool must reproduce the serial path field-for-field."""
    from repro.experiments.runner import run_configs

    budget = RunBudget(warmup_cycles=200, measure_cycles=1200,
                       functional_warmup_instructions=4000, rotations=2)
    configs = [
        (spec, SMTConfig(n_threads=2, fetch_policy=spec, fetch_threads=2))
        for spec in ("HYSTERESIS:interval=100",
                     "BANDIT:interval=100")
    ]
    serial = run_configs(configs, budget=budget, jobs=1, use_cache=False)
    parallel_ = run_configs(configs, budget=budget, jobs=2, use_cache=False)
    for a, b in zip(serial, parallel_):
        assert a.ipc == b.ipc
        assert [r.committed for r in a.results] \
            == [r.committed for r in b.results]


def test_adaptive_configs_have_distinct_cache_keys():
    budget = RunBudget()
    specs = ["ICOUNT", "HYSTERESIS", "HYSTERESIS:interval=100",
             "BANDIT", "BANDIT:mode=ucb", "TOURNAMENT:ICOUNT/BRCOUNT"]
    keys = {
        result_key(SMTConfig(n_threads=2, fetch_policy=spec), 0, budget)
        for spec in specs
    }
    assert len(keys) == len(specs)
