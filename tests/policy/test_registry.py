"""Tests for the fetch-policy registry: spec grammar, validation,
construction, and the priority_order compatibility shim."""

import pytest

from repro.core.config import SMTConfig
from repro.core.fetch_policy import priority_order
from repro.policy import (
    get_info,
    is_adaptive_spec,
    make_policy,
    meta_policy_names,
    parse_spec,
    policy_names,
    registry_entries,
    static_policy_names,
    validate_spec,
)


class TestRegistryContents:
    def test_all_paper_policies_registered(self):
        assert set(static_policy_names()) == {
            "RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN",
            "ICOUNT_BRCOUNT",
        }

    def test_meta_policies_registered(self):
        assert set(meta_policy_names()) == {
            "HYSTERESIS", "BANDIT", "TOURNAMENT",
        }

    def test_names_are_statics_then_metas(self):
        names = policy_names()
        kinds = [get_info(n).kind for n in names]
        assert kinds == sorted(kinds, key=lambda k: k != "static")

    def test_every_entry_has_a_summary(self):
        for info in registry_entries():
            assert info.summary
            assert info.kind in ("static", "meta")


class TestSpecParsing:
    def test_bare_name(self):
        assert parse_spec("ICOUNT") == ("ICOUNT", None, {})

    def test_options(self):
        name, arms, params = parse_spec("HYSTERESIS:interval=200,dwell=3")
        assert name == "HYSTERESIS"
        assert arms is None
        assert params == {"interval": "200", "dwell": "3"}

    def test_arms(self):
        name, arms, params = parse_spec("TOURNAMENT:ICOUNT/BRCOUNT")
        assert arms == ("ICOUNT", "BRCOUNT")
        assert params == {}

    def test_arms_and_options(self):
        name, arms, params = parse_spec("BANDIT:ICOUNT/RR:mode=ucb")
        assert arms == ("ICOUNT", "RR")
        assert params == {"mode": "ucb"}

    @pytest.mark.parametrize("bad", [
        "", "ICOUNT:", "HYSTERESIS:interval", "HYSTERESIS:=3",
        "HYSTERESIS:interval=1,interval=2",
        "BANDIT:ICOUNT/RR:MISSCOUNT/IQPOSN",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_spec(bad)


class TestConstruction:
    def test_unknown_name_lists_valid_policies(self):
        with pytest.raises(ValueError, match="valid policies"):
            make_policy("MAGIC")

    def test_unknown_option_lists_valid_options(self):
        with pytest.raises(ValueError, match="valid options"):
            make_policy("BANDIT:bogus=1")

    def test_static_policies_take_no_options(self):
        with pytest.raises(ValueError, match="takes no options"):
            make_policy("ICOUNT:interval=100")

    def test_non_numeric_option_rejected(self):
        with pytest.raises(ValueError, match="not an integer"):
            make_policy("HYSTERESIS:interval=fast")

    def test_bad_arm_name_rejected(self):
        with pytest.raises(ValueError, match="valid arms"):
            make_policy("TOURNAMENT:ICOUNT/MAGIC")

    def test_hysteresis_arms_fixed(self):
        with pytest.raises(ValueError, match="fixed"):
            make_policy("HYSTERESIS:ICOUNT/RR")

    def test_spec_recorded_on_policy(self):
        policy = make_policy("BANDIT:interval=100", seed=7)
        assert policy.spec == "BANDIT:interval=100"

    def test_seed_changes_bandit_rng(self):
        a = make_policy("BANDIT", seed=1)
        b = make_policy("BANDIT", seed=2)
        assert a.rng.random() != b.rng.random()

    def test_is_adaptive_spec(self):
        assert not is_adaptive_spec("ICOUNT")
        assert is_adaptive_spec("HYSTERESIS:interval=100")


class TestConfigValidation:
    def test_valid_static_accepted(self):
        SMTConfig(fetch_policy="ICOUNT_BRCOUNT")

    def test_valid_meta_spec_accepted(self):
        SMTConfig(fetch_policy="TOURNAMENT:ICOUNT/BRCOUNT:interval=100")

    def test_unknown_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="valid policies"):
            SMTConfig(fetch_policy="FIFO")

    def test_bad_meta_option_rejected_at_construction(self):
        with pytest.raises(ValueError, match="valid options"):
            SMTConfig(fetch_policy="BANDIT:gamma=2")


class TestShim:
    def test_meta_policy_rejected_by_stateless_interface(self):
        with pytest.raises(ValueError, match="stateless"):
            priority_order("HYSTERESIS", [], 0, 0, 4, None, None)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="valid policies"):
            priority_order("MAGIC", [], 0, 0, 4, None, None)
