"""Tests for fault-tolerant campaign supervision.

Covers the failure taxonomy (injected crash, hang, OOM, invariant,
silent worker death), bounded retry with a retry-then-succeed flake,
the checkpoint journal (including torn-write tolerance), resume
semantics (only missing/failed points re-execute), and the determinism
contract: a supervised run's ``SimResult`` is field-identical to an
unsupervised one.
"""

import dataclasses
import json
import math
import os
import signal
import time

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import SimulationAborted, Watchdog
from repro.experiments import parallel, supervise
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunSpec, execute_runs, run_spec
from repro.experiments.runner import ExperimentPoint, RunBudget
from repro.experiments.supervise import (
    CampaignJournal,
    JournalState,
    RunFailure,
    Supervisor,
    supervised_execute_runs,
)
from repro.verify.sanitizer import InvariantViolation

TINY = RunBudget(warmup_cycles=100, measure_cycles=400,
                 functional_warmup_instructions=2000, rotations=1)


def _spec(rotation=0, n_threads=1):
    return RunSpec(config=SMTConfig(n_threads=n_threads),
                   rotation=rotation, budget=TINY)


def _fields(result):
    return dataclasses.asdict(result)


@pytest.fixture
def clean_knobs(monkeypatch):
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)

    def reset():
        supervise.configure(supervise=None, timeout=None, max_retries=None,
                            journal_path=None, resume_path=None)

    reset()
    yield
    reset()


# ----------------------------------------------------------------------
# Supervisor task functions (module scope; the fork start method also
# carries monkeypatched module state into the workers).
# ----------------------------------------------------------------------
def _task_ok(payload, watchdog):
    return payload * 2


def _task_crash(payload, watchdog):
    raise ValueError("injected crash")


def _task_hang(payload, watchdog):
    time.sleep(60)


def _task_oom(payload, watchdog):
    raise MemoryError


def _task_invariant(payload, watchdog):
    raise InvariantViolation("iq-overflow", "injected", 7, tid=1)


def _task_aborted(payload, watchdog):
    raise SimulationAborted("wall-clock timeout after 0.1s", 512)


def _task_silent_exit(payload, watchdog):
    os._exit(3)


def _task_sigkill(payload, watchdog):
    os.kill(os.getpid(), signal.SIGKILL)


def _task_kbint(payload, watchdog):
    raise KeyboardInterrupt


def _task_flake(marker_path, watchdog):
    # Fails until the marker exists, i.e. exactly once.
    if not os.path.exists(marker_path):
        open(marker_path, "w").close()
        raise ValueError("flaky first attempt")
    return "recovered"


class TestSupervisorTaxonomy:
    def test_success(self):
        outcomes = Supervisor(_task_ok).run([("a", 21)])
        assert outcomes["a"].ok
        assert outcomes["a"].result == 42
        assert outcomes["a"].attempts == 1

    def test_crash_is_structured(self):
        outcomes = Supervisor(_task_crash).run([("a", None)])
        failure = outcomes["a"].failure
        assert failure.kind == "crash"
        assert "ValueError: injected crash" in failure.message
        assert "injected crash" in failure.details["traceback"]

    def test_crash_retries_exhausted(self):
        sup = Supervisor(_task_crash, max_retries=2, backoff=0.01)
        outcomes = sup.run([("a", None)])
        assert outcomes["a"].failure.kind == "crash"
        assert outcomes["a"].attempts == 3
        assert sup.retries_used == 2

    def test_hang_is_hard_killed(self):
        sup = Supervisor(_task_hang, timeout=0.2, kill_grace=0.2)
        start = time.monotonic()
        outcomes = sup.run([("a", None)])
        failure = outcomes["a"].failure
        assert failure.kind == "timeout"
        assert "hard-killed" in failure.message
        assert time.monotonic() - start < 10.0

    def test_simulation_aborted_is_timeout(self):
        outcomes = Supervisor(_task_aborted).run([("a", None)])
        failure = outcomes["a"].failure
        assert failure.kind == "timeout"
        assert "wall-clock timeout" in failure.message
        assert failure.details["cycle"] == 512

    def test_memory_error_is_oom(self):
        outcomes = Supervisor(_task_oom).run([("a", None)])
        assert outcomes["a"].failure.kind == "oom"

    def test_invariant_never_retried(self):
        sup = Supervisor(_task_invariant, max_retries=3, backoff=0.01)
        outcomes = sup.run([("a", None)])
        failure = outcomes["a"].failure
        assert failure.kind == "invariant"
        assert outcomes["a"].attempts == 1
        assert sup.retries_used == 0
        assert failure.details["violation"]["invariant"] == "iq-overflow"

    def test_worker_interrupt_never_retried(self):
        sup = Supervisor(_task_kbint, max_retries=3, backoff=0.01)
        outcomes = sup.run([("a", None)])
        assert outcomes["a"].failure.kind == "interrupted"
        assert outcomes["a"].attempts == 1

    def test_silent_death_is_crash(self):
        outcomes = Supervisor(_task_silent_exit).run([("a", None)])
        failure = outcomes["a"].failure
        assert failure.kind == "crash"
        assert "exit code 3" in failure.message

    def test_sigkill_classified_as_oom(self):
        outcomes = Supervisor(_task_sigkill).run([("a", None)])
        assert outcomes["a"].failure.kind == "oom"

    def test_flake_recovers_on_retry(self, tmp_path):
        sup = Supervisor(_task_flake, max_retries=1, backoff=0.01)
        outcomes = sup.run([("a", str(tmp_path / "marker"))])
        assert outcomes["a"].ok
        assert outcomes["a"].result == "recovered"
        assert outcomes["a"].attempts == 2
        assert sup.retries_used == 1

    def test_mixed_batch_with_jobs(self):
        sup = Supervisor(_task_ok, jobs=2)
        outcomes = sup.run([(f"k{i}", i) for i in range(5)])
        assert len(outcomes) == 5
        assert all(outcomes[f"k{i}"].result == 2 * i for i in range(5))

    def test_on_outcome_fires_per_task(self):
        seen = []
        sup = Supervisor(_task_ok, jobs=2, on_outcome=seen.append)
        sup.run([("a", 1), ("b", 2)])
        assert sorted(o.key for o in seen) == ["a", "b"]

    def test_parent_interrupt_kills_live_workers(self):
        # A KeyboardInterrupt raised in the parent (here: from the
        # outcome hook) must kill live workers promptly and record them
        # as interrupted rather than leaking them.
        def fn(payload, watchdog):
            if payload == "fast":
                return "done"
            time.sleep(60)

        def boom(outcome):
            if outcome.key == "fast":
                raise KeyboardInterrupt

        sup = Supervisor(fn, jobs=2, on_outcome=boom)
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            sup.run([("fast", "fast"), ("slow", "slow")])
        assert time.monotonic() - start < 10.0
        assert sup.outcomes["fast"].ok
        assert sup.outcomes["slow"].failure.kind == "interrupted"


class TestRunFailure:
    def test_dict_round_trip(self):
        failure = RunFailure(kind="timeout", key="abc", message="m",
                             attempts=2, elapsed=1.5, label="T8/rot0",
                             details={"cycle": 9})
        rebuilt = RunFailure.from_dict(failure.to_dict())
        assert rebuilt == failure

    def test_str_names_kind_and_label(self):
        failure = RunFailure(kind="crash", key="deadbeef" * 8,
                             message="boom", attempts=2, label="ICOUNT/T8")
        text = str(failure)
        assert "[crash]" in text and "ICOUNT/T8" in text
        assert "2 attempts" in text


# ----------------------------------------------------------------------
# Checkpoint journal.
# ----------------------------------------------------------------------
class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.done("k1", elapsed=0.5)
            journal.failed(RunFailure(kind="crash", key="k2", message="boom"))
            journal.seed_done(7, "ok")
        state = JournalState.load(path)
        assert state.completed == {"k1"}
        assert state.failures["k2"].kind == "crash"
        assert state.seeds == {7: "ok"}

    def test_schema_header_written_once(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        CampaignJournal(path).close()
        with CampaignJournal(path) as journal:
            journal.done("k1")
        lines = [json.loads(line) for line in open(path)]
        headers = [l for l in lines if l.get("schema")]
        assert len(headers) == 1
        assert headers[0]["schema"] == supervise.JOURNAL_SCHEMA

    def test_done_supersedes_failed(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.failed(RunFailure(kind="timeout", key="k", message="m"))
            journal.done("k")
        state = JournalState.load(path)
        assert state.completed == {"k"}
        assert "k" not in state.failures

    def test_corrupt_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.done("k1")
        with open(path, "a") as handle:
            handle.write('{"event":"done","key":"k2"}\n')
            handle.write('{"event":"done","ke')  # torn final write
        state = JournalState.load(path)
        assert state.completed == {"k1", "k2"}

    def test_missing_journal_is_empty_state(self, tmp_path):
        state = JournalState.load(str(tmp_path / "absent.jsonl"))
        assert not state.completed and not state.failures and not state.seeds


class TestJournalDuplicates:
    """Replay is idempotent under duplicate terminal records: the first
    completion stands, later duplicates are counted and logged, and
    ``--resume`` arithmetic stays correct."""

    def test_duplicate_done_keeps_first_and_counts(self, tmp_path, caplog):
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.done("k1", elapsed=1.0)
            journal.done("k1", elapsed=9.0)   # racing lease finishing late
            journal.done("k2")
        with caplog.at_level("WARNING", logger="repro.supervise"):
            state = JournalState.load(path)
        assert state.completed == {"k1", "k2"}
        assert state.duplicates == 1
        assert "duplicate 'done'" in caplog.text

    def test_failed_after_done_is_duplicate_not_regression(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.done("k")
            journal.failed(RunFailure(kind="lost", key="k", message="late"))
        state = JournalState.load(path)
        assert state.completed == {"k"}
        assert "k" not in state.failures
        assert state.duplicates == 1

    def test_done_after_failed_is_supersession_not_duplicate(self, tmp_path):
        # A retry succeeding is new information, not a duplicate.
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.failed(RunFailure(kind="crash", key="k", message="m"))
            journal.done("k")
        state = JournalState.load(path)
        assert state.completed == {"k"}
        assert state.duplicates == 0

    def test_resume_counts_stay_correct_under_duplicates(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            for _ in range(3):
                journal.done("k1")
            journal.done("k2")
        state = JournalState.load(path)
        # --resume skips len(completed) points: 2, not 4.
        assert len(state.completed) == 2
        assert state.duplicates == 2


class TestJournalFsync:
    def test_records_fsync_when_enabled(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (calls.append(fd), real_fsync(fd)))
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "1")
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:   # header syncs too
            journal.done("k1")
        assert len(calls) == 2

    def test_records_do_not_fsync_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_FSYNC", raising=False)
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        path = str(tmp_path / "campaign.jsonl")
        with CampaignJournal(path) as journal:
            journal.done("k1")
        assert calls == []


class TestClassifyException:
    """The shared classification boundary (supervisor children and
    scheduler workers route through the same function)."""

    def test_driver_invariant_error_is_invariant(self):
        from repro.multicore.driver import DriverInvariantError

        exc = DriverInvariantError("thread 3 on two cores",
                                   details={"thread": 3})
        kind, payload = supervise.classify_exception(exc)
        assert kind == "invariant"
        assert payload["details"] == {"thread": 3}
        assert "thread 3" in payload["message"]

    def test_sanitizer_violation_is_invariant(self):
        violation = InvariantViolation("iq-overflow",
                                       "queue over capacity", cycle=10)
        kind, payload = supervise.classify_exception(violation)
        assert kind == "invariant"
        assert payload["violation"]["invariant"] == "iq-overflow"

    def test_generic_exception_is_crash(self):
        kind, payload = supervise.classify_exception(ValueError("boom"))
        assert kind == "crash"
        assert "ValueError" in payload["message"]

    def test_memory_error_is_oom(self):
        kind, _ = supervise.classify_exception(MemoryError())
        assert kind == "oom"

    def test_interrupt_is_interrupted(self):
        kind, _ = supervise.classify_exception(KeyboardInterrupt())
        assert kind == "interrupted"

    def test_aborted_simulation_is_timeout(self):
        kind, payload = supervise.classify_exception(
            SimulationAborted("watchdog", cycle=123))
        assert kind == "timeout"
        assert payload["cycle"] == 123


# ----------------------------------------------------------------------
# Supervised RunSpec execution.
# ----------------------------------------------------------------------
class TestSupervisedDeterminism:
    def test_supervised_matches_unsupervised(self, clean_knobs):
        spec = _spec()
        campaign = supervised_execute_runs(
            [spec], jobs=1, use_cache=False, timeout=120, max_retries=0,
            journal_path=None, resume_path=None,
        )
        assert campaign.report.succeeded == 1
        assert _fields(campaign.results[0]) == _fields(run_spec(spec))

    def test_watchdog_aborts_pathological_run(self, clean_knobs):
        campaign = supervised_execute_runs(
            [_spec()], jobs=1, use_cache=False, timeout=1e-5, max_retries=0,
            journal_path=None, resume_path=None,
        )
        assert campaign.results == [None]
        failure = campaign.report.failures[0]
        assert failure.kind == "timeout"
        assert "wall-clock timeout" in failure.message

    def test_cycle_budget_guard(self):
        watchdog = Watchdog(max_cycles=64)
        with pytest.raises(SimulationAborted, match="cycle budget"):
            run_spec(_spec(), watchdog=watchdog)


class TestCampaignFaultTolerance:
    def test_hang_and_crash_then_resume(self, clean_knobs, monkeypatch,
                                        tmp_path):
        """The acceptance scenario: a campaign with an injected hang and
        an injected crash completes with partial results and a report
        naming both; ``--resume`` then re-executes only the failed
        points."""
        specs = [_spec(rotation=r) for r in range(3)]
        real_run_spec = parallel.run_spec
        first_log = tmp_path / "executed-first.log"
        resume_log = tmp_path / "executed-resume.log"

        def injected(spec, watchdog=None, _log=str(first_log)):
            with open(_log, "a") as handle:
                handle.write(spec.key() + "\n")
            if spec.rotation == 1:
                raise ValueError("injected crash")
            if spec.rotation == 2:
                time.sleep(60)  # injected hang; watchdog can't see it
            return real_run_spec(spec, watchdog=watchdog)

        monkeypatch.setattr(parallel, "run_spec", injected)
        cache = ResultCache(str(tmp_path / "cache"))
        journal = str(tmp_path / "campaign.jsonl")

        campaign = supervised_execute_runs(
            specs, jobs=2, cache=cache, timeout=0.3, max_retries=0,
            journal_path=journal, resume_path=None, name="acceptance",
        )
        report = campaign.report
        assert campaign.results[0] is not None
        assert campaign.results[1] is None and campaign.results[2] is None
        assert report.succeeded == 1 and report.failed == 2
        kinds = {f.kind for f in report.failures}
        assert kinds == {"crash", "timeout"}
        described = report.describe()
        assert "[crash]" in described and "[timeout]" in described
        assert "rot1" in described and "rot2" in described

        # Resume: the healthy point replays from journal+cache, only
        # the crashed and hung points re-execute.
        def counting(spec, watchdog=None, _log=str(resume_log)):
            with open(_log, "a") as handle:
                handle.write(spec.key() + "\n")
            return real_run_spec(spec, watchdog=watchdog)

        monkeypatch.setattr(parallel, "run_spec", counting)
        resumed = supervised_execute_runs(
            specs, jobs=1, cache=cache, timeout=120, max_retries=0,
            journal_path=journal, resume_path=journal, name="acceptance",
        )
        assert all(r is not None for r in resumed.results)
        assert resumed.report.failed == 0
        assert resumed.report.skipped == 1
        assert resumed.report.simulated == 2
        re_executed = set(resume_log.read_text().split())
        assert re_executed == {specs[1].key(), specs[2].key()}

    def test_retry_recovers_flaky_run(self, clean_knobs, monkeypatch,
                                      tmp_path):
        spec = _spec()
        real_run_spec = parallel.run_spec
        marker = str(tmp_path / "flaked")

        def flaky(spec, watchdog=None, _marker=marker):
            if not os.path.exists(_marker):
                open(_marker, "w").close()
                raise ValueError("flaky first attempt")
            return real_run_spec(spec, watchdog=watchdog)

        monkeypatch.setattr(parallel, "run_spec", flaky)
        campaign = supervised_execute_runs(
            [spec], jobs=1, use_cache=False, timeout=120, max_retries=1,
            backoff=0.01, journal_path=None, resume_path=None,
        )
        assert campaign.report.succeeded == 1
        assert campaign.report.retried == 1
        assert _fields(campaign.results[0]) == _fields(run_spec(spec))

    def test_journal_records_completions_and_failures(self, clean_knobs,
                                                      monkeypatch, tmp_path):
        specs = [_spec(rotation=r) for r in range(2)]
        real_run_spec = parallel.run_spec

        def half_broken(spec, watchdog=None):
            if spec.rotation == 1:
                raise ValueError("boom")
            return real_run_spec(spec, watchdog=watchdog)

        monkeypatch.setattr(parallel, "run_spec", half_broken)
        journal = str(tmp_path / "campaign.jsonl")
        supervised_execute_runs(
            specs, jobs=1, use_cache=False, timeout=None, max_retries=0,
            journal_path=journal, resume_path=None,
        )
        state = JournalState.load(journal)
        assert state.completed == {specs[0].key()}
        assert state.failures[specs[1].key()].kind == "crash"

    def test_interrupt_flushes_journal_and_reports(self, clean_knobs,
                                                   monkeypatch, tmp_path):
        # Ctrl-C mid-batch (here: raised from the progress callback
        # after the first completion) must flush the journal, append a
        # partial report flagged interrupted, and re-raise.
        specs = [_spec(rotation=r) for r in range(2)]
        journal = str(tmp_path / "campaign.jsonl")
        supervise.reset_campaign_log()

        def interrupting_progress(progress):
            if progress.completed == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            supervised_execute_runs(
                specs, jobs=1, use_cache=False, timeout=None, max_retries=0,
                journal_path=journal, resume_path=None,
                progress=interrupting_progress,
            )
        reports = supervise.campaign_reports()
        assert reports and reports[-1].interrupted
        # The completed point made it to disk before the interrupt.
        assert len(JournalState.load(journal).completed) == 1

    def test_execute_runs_delegates_when_enabled(self, clean_knobs):
        supervise.configure(supervise=True, timeout=120, max_retries=0)
        supervise.reset_campaign_log()
        results = execute_runs([_spec()], jobs=1, use_cache=False)
        assert results[0] is not None
        reports = supervise.campaign_reports()
        assert len(reports) == 1 and reports[0].succeeded == 1

    def test_duplicate_specs_simulated_once(self, clean_knobs, tmp_path):
        spec = _spec()
        cache = ResultCache(str(tmp_path))
        campaign = supervised_execute_runs(
            [spec, spec], jobs=1, cache=cache, timeout=120, max_retries=0,
            journal_path=None, resume_path=None,
        )
        assert campaign.report.simulated == 1
        assert cache.stats()["stores"] == 1
        assert _fields(campaign.results[0]) == _fields(campaign.results[1])

    def test_progress_reports_failures_and_retries(self, clean_knobs,
                                                   monkeypatch):
        monkeypatch.setattr(parallel, "run_spec",
                            lambda spec, watchdog=None: (_ for _ in ()).throw(
                                ValueError("boom")))
        snapshots = []
        supervised_execute_runs(
            [_spec()], jobs=1, use_cache=False, timeout=None, max_retries=1,
            backoff=0.01, journal_path=None, resume_path=None,
            progress=snapshots.append,
        )
        last = snapshots[-1]
        assert last.failed == 1
        assert last.retried == 1
        assert "1 FAILED" in str(last) and "1 retried" in str(last)

    def test_failed_point_degrades_to_nan(self):
        point = ExperimentPoint(label="x", n_threads=1, ipc=float("nan"),
                                results=[])
        assert not point.complete
        assert math.isnan(point.metric("ipc"))
        assert math.isnan(point.cache_metric("dcache", "miss_rate"))


# ----------------------------------------------------------------------
# Knob resolution (CLI configure > environment > defaults).
# ----------------------------------------------------------------------
class TestKnobs:
    def test_timeout_env(self, clean_knobs, monkeypatch):
        assert supervise.default_run_timeout() is None
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "12.5")
        assert supervise.default_run_timeout() == 12.5
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "garbage")
        assert supervise.default_run_timeout() is None

    def test_timeout_configure_overrides_env(self, clean_knobs, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "12.5")
        supervise.configure(timeout=3.0)
        assert supervise.default_run_timeout() == 3.0
        supervise.configure(timeout=0)  # non-positive disables
        assert supervise.default_run_timeout() is None

    def test_max_retries_env(self, clean_knobs, monkeypatch):
        assert supervise.default_max_retries() == 1
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        assert supervise.default_max_retries() == 4
        supervise.configure(max_retries=0)
        assert supervise.default_max_retries() == 0

    def test_supervision_enabled(self, clean_knobs, monkeypatch):
        assert supervise.supervision_enabled() is False
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "10")
        assert supervise.supervision_enabled() is True
        supervise.configure(supervise=False)
        assert supervise.supervision_enabled() is False
        supervise.configure(supervise=None, timeout=5.0)
        assert supervise.supervision_enabled() is True
