"""Tables 1 and 2 are configuration; their values must equal the paper's."""

from repro.experiments.tables import table1, table2


class TestTable1:
    def test_values_match_paper(self):
        t = table1()
        assert t["integer multiply"] == 8
        assert t["integer multiply (wide)"] == 16
        assert t["conditional move"] == 2
        assert t["compare"] == 0
        assert t["all other integer"] == 1
        assert t["FP divide"] == 17
        assert t["FP divide (double)"] == 30
        assert t["all other FP"] == 4
        assert t["load (cache hit)"] == 1


class TestTable2:
    def test_sizes(self):
        t = table2()
        assert t["ICache"]["size"] == 32 * 1024
        assert t["DCache"]["size"] == 32 * 1024
        assert t["L2"]["size"] == 256 * 1024
        assert t["L3"]["size"] == 2 * 1024 * 1024

    def test_associativities(self):
        t = table2()
        assert t["ICache"]["associativity"] == 1
        assert t["L2"]["associativity"] == 4
        assert t["L3"]["associativity"] == 1

    def test_banks_and_transfer(self):
        t = table2()
        assert t["ICache"]["banks"] == 8
        assert t["L3"]["banks"] == 1
        assert t["L3"]["transfer time"] == 4

    def test_latencies(self):
        t = table2()
        assert t["ICache"]["latency to next"] == 6
        assert t["DCache"]["latency to next"] == 6
        assert t["L2"]["latency to next"] == 12
        assert t["L3"]["latency to next"] == 62

    def test_fill_times(self):
        t = table2()
        assert t["ICache"]["fill time"] == 2
        assert t["L3"]["fill time"] == 8

    def test_accesses_per_cycle(self):
        t = table2()
        assert t["DCache"]["accesses/cycle"] == 4
        assert t["L2"]["accesses/cycle"] == 1
        assert t["L3"]["accesses/cycle"] == 0.25
