"""Fast end-to-end checks of the figure/table harnesses (tiny budgets).

These verify the harness *machinery* — that every experiment runs,
returns well-formed rows, and prints without error.  The qualitative
shape assertions live in the benchmark suite with real budgets.
"""

import io
from contextlib import redirect_stdout

import pytest

from repro.experiments import bottlenecks, figures, tables
from repro.experiments.runner import RunBudget

TINY = RunBudget(warmup_cycles=100, measure_cycles=500,
                 functional_warmup_instructions=2000, rotations=1)


def prints_ok(fn, *args):
    buf = io.StringIO()
    with redirect_stdout(buf):
        fn(*args)
    assert buf.getvalue().strip()


class TestFigures:
    def test_figure3(self):
        data = figures.figure3(budget=TINY, thread_counts=(1, 2))
        assert "RR.1.8" in data and "Unmodified Superscalar" in data
        assert len(data["RR.1.8"]) == 2
        prints_ok(figures.print_figure3, data)

    def test_figure4(self):
        data = figures.figure4(budget=TINY, thread_counts=(2,))
        assert set(data) == {"RR.1.8", "RR.2.4", "RR.4.2", "RR.2.8"}
        prints_ok(figures.print_figure4, data)

    def test_figure5(self):
        data = figures.figure5(budget=TINY, thread_counts=(2,),
                               partitions=((1, 8),))
        assert "ICOUNT.1.8" in data and "RR.1.8" in data
        assert len(data) == 5
        prints_ok(figures.print_figure5, data)

    def test_figure6(self):
        data = figures.figure6(budget=TINY, thread_counts=(2,),
                               partitions=((2, 8),))
        assert set(data) == {"ICOUNT.2.8", "BIGQ,ICOUNT.2.8",
                             "ITAG,ICOUNT.2.8"}
        prints_ok(figures.print_figure6, data)

    def test_figure7(self):
        points = figures.figure7(budget=TINY, thread_counts=(1, 2))
        assert [p.n_threads for p in points] == [1, 2]
        prints_ok(figures.print_figure7, points)


class TestTables:
    def test_table3(self):
        points = tables.table3(budget=TINY, thread_counts=(1, 2))
        assert set(points) == {1, 2}
        prints_ok(tables.print_table3, points)

    def test_table4(self):
        points = tables.table4(budget=TINY)
        assert set(points) == {"1 thread", "RR.2.8", "ICOUNT.2.8"}
        prints_ok(tables.print_table4, points)

    def test_table5(self):
        data = tables.table5(budget=TINY, thread_counts=(2,))
        assert set(data) == {"OLDEST", "OPT_LAST", "SPEC_LAST",
                             "BRANCH_FIRST"}
        prints_ok(tables.print_table5, data)


class TestBottlenecks:
    def test_issue_bandwidth(self):
        d = bottlenecks.issue_bandwidth(budget=TINY, n_threads=2)
        assert set(d) == {"baseline", "infinite FUs"}

    def test_queue_size(self):
        d = bottlenecks.queue_size(budget=TINY, n_threads=2)
        assert d["64-entry queues"].ipc >= 0

    def test_fetch_bandwidth(self):
        d = bottlenecks.fetch_bandwidth(budget=TINY, n_threads=2)
        assert len(d) == 3

    def test_branch_prediction(self):
        d = bottlenecks.branch_prediction(budget=TINY, thread_counts=(2,))
        assert len(d["perfect"]) == 1

    def test_speculation(self):
        d = bottlenecks.speculative_execution(budget=TINY, thread_counts=(2,))
        assert len(d["no wrong-path issue"]) == 1

    def test_memory(self):
        d = bottlenecks.memory_throughput(budget=TINY, n_threads=2)
        assert "infinite bandwidth" in d

    def test_registers(self):
        rows = bottlenecks.register_file_size(
            budget=TINY, n_threads=2, excess_values=(80, 100)
        )
        assert [e for e, _ in rows] == [80, 100]
