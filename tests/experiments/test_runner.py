"""Tests for the experiment runner."""

import pytest

from repro.core.config import SMTConfig
from repro.experiments.runner import (
    ExperimentPoint,
    RunBudget,
    average_runs,
    run_config,
    sweep_threads,
)

TINY = RunBudget(warmup_cycles=100, measure_cycles=600,
                 functional_warmup_instructions=3000, rotations=2)


class TestRunBudget:
    def test_defaults(self):
        budget = RunBudget()
        assert budget.rotations >= 1
        assert budget.measure_cycles > budget.warmup_cycles

    def test_environment_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        budget = RunBudget.from_environment()
        assert budget.rotations == 1
        assert budget.measure_cycles <= 10000

    def test_environment_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        monkeypatch.setenv("REPRO_FULL", "1")
        budget = RunBudget.from_environment()
        assert budget.rotations >= 4


class TestRunConfig:
    def test_averages_rotations(self):
        point = run_config(SMTConfig(n_threads=2), budget=TINY)
        assert len(point.results) == 2
        assert point.ipc == pytest.approx(
            sum(r.ipc for r in point.results) / 2
        )

    def test_label_defaults_to_scheme(self):
        point = run_config(SMTConfig(n_threads=1), budget=TINY)
        assert point.label == "RR.1.8"

    def test_metric_helper(self):
        point = run_config(SMTConfig(n_threads=1), budget=TINY)
        assert 0 <= point.metric("wrong_path_fetched_frac") <= 1

    def test_cache_metric_helper(self):
        point = run_config(SMTConfig(n_threads=1), budget=TINY)
        assert 0 <= point.cache_metric("dcache", "miss_rate") <= 1


class TestSweep:
    def test_sweep_threads(self):
        points = sweep_threads(
            lambda t: SMTConfig(n_threads=t),
            thread_counts=(1, 2), budget=TINY,
        )
        assert [p.n_threads for p in points] == [1, 2]

    def test_average_runs(self):
        points = [
            ExperimentPoint("a", 1, 2.0),
            ExperimentPoint("b", 1, 4.0),
        ]
        assert average_runs(points) == 3.0
