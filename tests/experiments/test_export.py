"""Tests for result export and text charts."""

import json
import os
import tempfile

import pytest

from repro.core.simulator import SimResult, CacheStats
from repro.experiments.export import (
    ascii_chart,
    csv_text,
    to_json,
    to_rows,
    write_csv,
)
from repro.experiments.runner import ExperimentPoint


def fake_point(label, threads, ipc):
    cache = CacheStats(accesses=100, misses=10, miss_rate=0.1, mpki=5.0)
    result = SimResult(
        config_name=label, n_threads=threads, cycles=1000,
        committed=int(ipc * 1000), ipc=ipc,
        useful_fetch_per_cycle=ipc, fetch_per_cycle=ipc * 1.1,
        wrong_path_fetched_frac=0.1, wrong_path_issued_frac=0.05,
        squashed_optimistic_frac=0.02, int_iq_full_frac=0.2,
        fp_iq_full_frac=0.0, avg_queue_population=25.0,
        out_of_registers_frac=0.03, branch_mispredict_rate=0.08,
        jump_mispredict_rate=0.1, icache=cache, dcache=cache,
        l2=cache, l3=cache,
    )
    return ExperimentPoint(label=label, n_threads=threads, ipc=ipc,
                           results=[result])


@pytest.fixture
def data():
    return {
        "RR.1.8": [fake_point("RR.1.8", 1, 2.0), fake_point("RR.1.8", 8, 3.5)],
        "ICOUNT.2.8": [fake_point("ICOUNT.2.8", 1, 2.0),
                       fake_point("ICOUNT.2.8", 8, 5.2)],
    }


class TestRows:
    def test_one_row_per_point(self, data):
        rows = to_rows(data)
        assert len(rows) == 4

    def test_row_contents(self, data):
        rows = to_rows(data)
        row = next(r for r in rows if r["line"] == "ICOUNT.2.8"
                   and r["threads"] == 8)
        assert row["ipc"] == 5.2
        assert row["dcache_miss_rate"] == 0.1


class TestCsvJson:
    def test_csv_text(self, data):
        text = csv_text(data)
        assert text.splitlines()[0].startswith("line,threads,ipc")
        assert len(text.splitlines()) == 5

    def test_write_csv(self, data, tmp_path):
        path = os.path.join(tmp_path, "out.csv")
        write_csv(data, path)
        with open(path) as f:
            assert len(f.readlines()) == 5

    def test_write_csv_empty_rejected(self):
        with pytest.raises(ValueError):
            write_csv({}, "nowhere.csv")

    def test_json_roundtrip(self, data):
        rows = json.loads(to_json(data))
        assert len(rows) == 4
        assert {r["line"] for r in rows} == {"RR.1.8", "ICOUNT.2.8"}


class TestAsciiChart:
    def test_chart_contains_markers_and_legend(self, data):
        chart = ascii_chart(data, title="IPC vs threads")
        assert "IPC vs threads" in chart
        assert "A = RR.1.8" in chart
        assert "B = ICOUNT.2.8" in chart
        assert "(threads)" in chart

    def test_higher_series_plots_higher(self, data):
        chart = ascii_chart(data)
        lines = chart.splitlines()
        # B's 8-thread point (5.2, the peak) should appear above A's 3.5.
        b_rows = [i for i, l in enumerate(lines) if "B" in l and "|" in l]
        a_rows = [i for i, l in enumerate(lines) if "A" in l and "|" in l]
        assert min(b_rows) < min(a_rows)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
