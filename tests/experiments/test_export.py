"""Tests for result export and text charts."""

import json
import os
import tempfile

import pytest

from repro.core.simulator import SimResult, CacheStats
from repro.experiments import export
from repro.experiments.export import (
    ascii_chart,
    csv_text,
    to_json,
    to_rows,
    write_csv,
)
from repro.experiments.runner import ExperimentPoint


def fake_point(label, threads, ipc):
    cache = CacheStats(accesses=100, misses=10, miss_rate=0.1, mpki=5.0)
    result = SimResult(
        config_name=label, n_threads=threads, cycles=1000,
        committed=int(ipc * 1000), ipc=ipc,
        useful_fetch_per_cycle=ipc, fetch_per_cycle=ipc * 1.1,
        wrong_path_fetched_frac=0.1, wrong_path_issued_frac=0.05,
        squashed_optimistic_frac=0.02, int_iq_full_frac=0.2,
        fp_iq_full_frac=0.0, avg_queue_population=25.0,
        out_of_registers_frac=0.03, branch_mispredict_rate=0.08,
        jump_mispredict_rate=0.1, icache=cache, dcache=cache,
        l2=cache, l3=cache,
    )
    return ExperimentPoint(label=label, n_threads=threads, ipc=ipc,
                           results=[result])


@pytest.fixture
def data():
    return {
        "RR.1.8": [fake_point("RR.1.8", 1, 2.0), fake_point("RR.1.8", 8, 3.5)],
        "ICOUNT.2.8": [fake_point("ICOUNT.2.8", 1, 2.0),
                       fake_point("ICOUNT.2.8", 8, 5.2)],
    }


class TestRows:
    def test_one_row_per_point(self, data):
        rows = to_rows(data)
        assert len(rows) == 4

    def test_row_contents(self, data):
        rows = to_rows(data)
        row = next(r for r in rows if r["line"] == "ICOUNT.2.8"
                   and r["threads"] == 8)
        assert row["ipc"] == 5.2
        assert row["dcache_miss_rate"] == 0.1


class TestCsvJson:
    def test_csv_text(self, data):
        text = csv_text(data)
        assert text.splitlines()[0].startswith("line,threads,ipc")
        assert len(text.splitlines()) == 5

    def test_write_csv(self, data, tmp_path):
        path = os.path.join(tmp_path, "out.csv")
        write_csv(data, path)
        with open(path) as f:
            assert len(f.readlines()) == 5

    def test_write_csv_empty_rejected(self):
        with pytest.raises(ValueError):
            write_csv({}, "nowhere.csv")

    def test_json_roundtrip(self, data):
        rows = json.loads(to_json(data))
        assert len(rows) == 4
        assert {r["line"] for r in rows} == {"RR.1.8", "ICOUNT.2.8"}


class TestAsciiChart:
    def test_chart_contains_markers_and_legend(self, data):
        chart = ascii_chart(data, title="IPC vs threads")
        assert "IPC vs threads" in chart
        assert "A = RR.1.8" in chart
        assert "B = ICOUNT.2.8" in chart
        assert "(threads)" in chart

    def test_higher_series_plots_higher(self, data):
        chart = ascii_chart(data)
        lines = chart.splitlines()
        # B's 8-thread point (5.2, the peak) should appear above A's 3.5.
        b_rows = [i for i, l in enumerate(lines) if "B" in l and "|" in l]
        a_rows = [i for i, l in enumerate(lines) if "A" in l and "|" in l]
        assert min(b_rows) < min(a_rows)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})


class TestRunDocument:
    def _small_run(self):
        from repro.core.config import scheme
        from repro.core.histograms import MetricsCollector
        from repro.core.simulator import Simulator
        from repro.core.telemetry import TelemetrySampler
        from repro.workloads.mixes import standard_mix

        sim = Simulator(scheme("ICOUNT", 2, 8, n_threads=2),
                        standard_mix(2, 0))
        metrics = MetricsCollector(sim)
        telemetry = TelemetrySampler(sim, interval=100)
        sim.run(warmup_cycles=200, measure_cycles=600,
                functional_warmup_instructions=2000)
        telemetry.finish()
        return sim.result(), telemetry, metrics

    def test_round_trip(self, tmp_path):
        result, telemetry, metrics = self._small_run()
        path = os.path.join(tmp_path, "run.json")
        written = export.write_run_json(
            path, result, telemetry=telemetry, metrics=metrics)
        loaded = export.load_run_json(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["schema"] == export.RUN_SCHEMA
        assert loaded["schema_version"] == export.SCHEMA_VERSION
        assert loaded["result"]["ipc"] == pytest.approx(result.ipc)
        assert loaded["result"]["fetch_active_frac"] > 0
        assert loaded["result"]["icache_miss_stall_events"] > 0
        assert loaded["telemetry"]["interval"] == 100
        assert len(loaded["telemetry"]["samples"]) == len(telemetry.samples)
        assert any("issue" in name
                   for name in loaded["metrics"]["histograms"])

    def test_telemetry_and_metrics_optional(self, tmp_path):
        result, _, _ = self._small_run()
        path = os.path.join(tmp_path, "bare.json")
        export.write_run_json(path, result)
        loaded = export.load_run_json(path)
        assert "telemetry" not in loaded and "metrics" not in loaded
        assert "policy" not in loaded

    def test_policy_section_round_trips(self, tmp_path):
        """Schema v2: adaptive runs export choice counts and switches."""
        from repro.core.config import scheme
        from repro.core.simulator import Simulator
        from repro.workloads.mixes import standard_mix

        sim = Simulator(
            scheme("BANDIT:interval=100", 2, 8, n_threads=2),
            standard_mix(2, 0),
        )
        sim.run(warmup_cycles=200, measure_cycles=600,
                functional_warmup_instructions=2000)
        path = os.path.join(tmp_path, "adaptive.json")
        export.write_run_json(path, sim.result(),
                              policy=sim.policy_engine.telemetry())
        loaded = export.load_run_json(path)
        policy = loaded["policy"]
        assert policy["adaptive"] is True
        assert policy["spec"] == "BANDIT:interval=100"
        assert sum(policy["choice_counts"].values()) == policy["intervals"]
        assert len(policy["switch_events"]) <= policy["switch_count"]

    def test_wrong_schema_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.json")
        with open(path, "w") as f:
            json.dump({"schema": "repro.experiment", "schema_version": 1}, f)
        with pytest.raises(ValueError, match="expected schema"):
            export.load_run_json(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "old.json")
        with open(path, "w") as f:
            json.dump({"schema": "repro.run", "schema_version": 99}, f)
        with pytest.raises(ValueError, match="version"):
            export.load_run_json(path)

    def test_non_object_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "list.json")
        with open(path, "w") as f:
            json.dump([1, 2, 3], f)
        with pytest.raises(ValueError, match="JSON object"):
            export.load_run_json(path)


class TestViolationDocument:
    def _violation(self):
        from repro.verify.sanitizer import InvariantViolation
        return InvariantViolation(
            "iq-overflow", "queue holds 40 entries", 321, tid=1,
            details={"occupancy": 40, "capacity": 32},
        )

    def test_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "violation.json")
        case = {"seed": 17, "n_threads": 4}
        written = export.write_violation_json(
            path, self._violation(), case=case, context="fuzz seed 17")
        loaded = export.load_violation_json(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["schema"] == export.VIOLATION_SCHEMA
        assert loaded["schema_version"] == export.SCHEMA_VERSION
        assert loaded["violation"]["invariant"] == "iq-overflow"
        assert loaded["violation"]["cycle"] == 321
        assert loaded["case"] == case
        assert loaded["context"] == "fuzz seed 17"

    def test_accepts_prebuilt_dict(self):
        document = export.violation_document(self._violation().to_dict())
        assert document["violation"]["invariant"] == "iq-overflow"

    def test_wrong_schema_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.json")
        with open(path, "w") as f:
            json.dump({"schema": "repro.run", "schema_version": 1}, f)
        with pytest.raises(ValueError, match="expected schema"):
            export.load_violation_json(path)


class TestCampaignDocument:
    def _reports(self):
        from repro.experiments.supervise import CampaignReport, RunFailure
        return [
            CampaignReport(name="fig3", total=10, succeeded=9, failed=1,
                           cache_hits=4, simulated=5, retried=2, skipped=1,
                           elapsed=3.25,
                           slowest=[("ICOUNT/T8/rot0", 1.5)],
                           failures=[RunFailure(kind="timeout", key="abc",
                                                message="hung",
                                                label="ICOUNT/T8/rot1")]),
            CampaignReport(name="fig4", total=4, succeeded=4, elapsed=1.0),
        ]

    def test_document_aggregates_totals(self):
        document = export.campaign_document(self._reports(), name="sweep")
        assert document["schema"] == export.CAMPAIGN_SCHEMA
        assert document["schema_version"] == export.SCHEMA_VERSION
        assert document["name"] == "sweep"
        assert document["totals"]["total"] == 14
        assert document["totals"]["succeeded"] == 13
        assert document["totals"]["failed"] == 1
        assert document["totals"]["retried"] == 2
        assert document["totals"]["interrupted"] is False
        assert len(document["campaigns"]) == 2
        failure = document["campaigns"][0]["failures"][0]
        assert failure["kind"] == "timeout"
        assert failure["label"] == "ICOUNT/T8/rot1"

    def test_write_load_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "campaign.json")
        written = export.write_campaign_json(path, self._reports())
        loaded = export.load_campaign_json(path)
        assert loaded == json.loads(json.dumps(written))

    def test_accepts_prebuilt_dicts(self):
        payloads = [r.to_dict() for r in self._reports()]
        document = export.campaign_document(payloads)
        assert document["totals"]["total"] == 14

    def test_wrong_schema_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.json")
        with open(path, "w") as f:
            json.dump({"schema": "repro.run", "schema_version": 1}, f)
        with pytest.raises(ValueError, match="expected schema"):
            export.load_campaign_json(path)


class TestExperimentDocument:
    def test_export_and_load(self, data, tmp_path):
        paths = export.export_experiment("fig3", data, str(tmp_path))
        assert paths == [os.path.join(tmp_path, "fig3.json"),
                         os.path.join(tmp_path, "fig3.csv")]
        loaded = export.load_experiment_json(paths[0])
        assert loaded["schema"] == export.EXPERIMENT_SCHEMA
        assert loaded["experiment"] == "fig3"
        assert len(loaded["rows"]) == 4
        assert {"fetch_active_frac", "icache_miss_stall_events"} <= set(
            loaded["rows"][0])
        with open(paths[1]) as f:
            assert len(f.readlines()) == 5

    def test_run_artifact_rejected_by_experiment_loader(self, tmp_path):
        path = os.path.join(tmp_path, "run.json")
        with open(path, "w") as f:
            json.dump({"schema": "repro.run", "schema_version": 1}, f)
        with pytest.raises(ValueError, match="expected schema"):
            export.load_experiment_json(path)


class TestAsFigureData:
    def test_dict_of_lists_passes_through(self, data):
        normalised = export.as_figure_data(data)
        assert normalised == data

    def test_bare_list_grouped_by_label(self):
        points = [fake_point("A", 1, 1.0), fake_point("A", 2, 2.0),
                  fake_point("B", 1, 1.5)]
        normalised = export.as_figure_data(points)
        assert sorted(normalised) == ["A", "B"]
        assert len(normalised["A"]) == 2

    def test_dict_of_points_keyed_by_label(self):
        table = {1: fake_point("ICOUNT.2.8", 1, 1.0),
                 8: fake_point("ICOUNT.2.8", 8, 5.0)}
        normalised = export.as_figure_data(table)
        assert list(normalised) == ["ICOUNT.2.8"]
        assert len(normalised["ICOUNT.2.8"]) == 2

    def test_unknown_shape_rejected(self):
        with pytest.raises(TypeError):
            export.as_figure_data(42)


class TestServiceDocuments:
    def _status(self):
        tasks = [
            {"key": "a" * 8, "status": "done", "terminal": True},
            {"key": "b" * 8, "status": "pending", "terminal": False},
        ]
        return export.service_status_document(
            "svc", {"done": 1, "pending": 1}, tasks,
            workers={"w0": "alive"})

    def test_status_document_shape(self):
        document = self._status()
        assert document["schema"] == export.SERVICE_STATUS_SCHEMA
        assert document["schema_version"] == export.SCHEMA_VERSION
        assert document["name"] == "svc"
        assert document["all_terminal"] is False
        assert document["counts"] == {"done": 1, "pending": 1}
        assert document["workers"] == {"w0": "alive"}

    def test_all_terminal_requires_tasks(self):
        empty = export.service_status_document("svc", {}, [])
        assert empty["all_terminal"] is False
        done = export.service_status_document(
            "svc", {"done": 1},
            [{"key": "a", "status": "done", "terminal": True}])
        assert done["all_terminal"] is True

    def test_status_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "status.json")
        with open(path, "w") as f:
            json.dump(self._status(), f)
        assert export.load_service_status_json(path) == self._status()

    def test_stats_round_trip_and_wrong_schema(self, tmp_path):
        document = export.service_stats_document(
            {"directory": "/camp", "draining": False},
            {"submits": 2, "busy_rejects": 0})
        assert document["schema"] == export.SERVICE_STATS_SCHEMA
        assert document["counters"] == {"busy_rejects": 0, "submits": 2}
        path = os.path.join(tmp_path, "stats.json")
        with open(path, "w") as f:
            json.dump(document, f)
        assert export.load_service_stats_json(path) == document
        with pytest.raises(ValueError, match="expected schema"):
            export.load_service_status_json(path)
