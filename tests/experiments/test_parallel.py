"""Determinism tests for the parallel experiment engine.

The engine's contract: results are field-identical no matter how they
were produced — serially, sharded across a worker pool, or replayed
from the persistent cache.
"""

import dataclasses

import pytest

from repro.core.config import SMTConfig, scheme
from repro.experiments import parallel
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunSpec, execute_runs, run_spec
from repro.experiments.runner import RunBudget, run_config

TINY = RunBudget(warmup_cycles=100, measure_cycles=600,
                 functional_warmup_instructions=3000, rotations=2)


def _specs():
    return [
        RunSpec(config=SMTConfig(n_threads=2), rotation=r, budget=TINY)
        for r in range(2)
    ] + [
        RunSpec(config=scheme("ICOUNT", 2, 8, n_threads=2), rotation=0,
                budget=TINY),
    ]


def _fields(result):
    return dataclasses.asdict(result)


@pytest.fixture
def no_cache_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    parallel.configure(jobs=None, use_cache=None)
    yield
    parallel.configure(jobs=None, use_cache=None)


class TestDeterminism:
    def test_parallel_matches_serial(self, no_cache_env):
        specs = _specs()
        serial = execute_runs(specs, jobs=1, use_cache=False)
        pooled = execute_runs(specs, jobs=2, use_cache=False)
        assert [_fields(r) for r in serial] == [_fields(r) for r in pooled]

    def test_cache_round_trip_matches(self, no_cache_env, tmp_path):
        specs = _specs()
        cache = ResultCache(str(tmp_path))
        fresh = execute_runs(specs, jobs=1, cache=cache)
        assert cache.stats()["stores"] == len(specs)
        replayed = execute_runs(specs, jobs=1, cache=cache)
        assert cache.stats()["hits"] == len(specs)
        assert [_fields(r) for r in fresh] == [_fields(r) for r in replayed]

    def test_run_spec_is_pure(self, no_cache_env):
        spec = _specs()[0]
        assert _fields(run_spec(spec)) == _fields(run_spec(spec))

    def test_duplicate_specs_simulated_once(self, no_cache_env, tmp_path):
        spec = _specs()[0]
        cache = ResultCache(str(tmp_path))
        results = execute_runs([spec, spec, spec], jobs=1, cache=cache)
        assert cache.stats()["stores"] == 1
        assert results[0] is results[1] is results[2]

    def test_run_config_uses_cache(self, no_cache_env, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = run_config(SMTConfig(n_threads=1), budget=TINY)
        again = run_config(SMTConfig(n_threads=1), budget=TINY)
        assert first.ipc == again.ipc
        assert len(ResultCache(str(tmp_path))) == TINY.rotations


class TestRunSpecKeys:
    def test_key_is_stable(self):
        a, b = _specs()[0], _specs()[0]
        assert a.key() == b.key()

    def test_key_distinguishes_config(self):
        base = _specs()[0]
        other = dataclasses.replace(base, config=SMTConfig(n_threads=4))
        assert base.key() != other.key()

    def test_key_distinguishes_rotation_and_budget(self):
        base = _specs()[0]
        assert base.key() != dataclasses.replace(base, rotation=5).key()
        bigger = dataclasses.replace(
            base, budget=dataclasses.replace(TINY, measure_cycles=700)
        )
        assert base.key() != bigger.key()

    def test_key_distinguishes_mshr_override(self):
        base = _specs()[0]
        assert base.key() != dataclasses.replace(base, dcache_mshrs=4).key()

    def test_key_distinguishes_checked_runs(self):
        # A cached unchecked result says nothing about whether the run
        # passes the sanitizer, so checked runs get their own identity.
        base = _specs()[0]
        checked = dataclasses.replace(base, check_invariants=True)
        assert base.key() != checked.key()


class TestSanitizedRuns:
    """``check_invariants`` runs are observationally identical to
    unchecked runs — same SimResult, any execution path."""

    def test_sanitizer_does_not_change_results(self, no_cache_env):
        base = _specs()[0]
        checked = dataclasses.replace(base, check_invariants=True)
        assert _fields(run_spec(base)) == _fields(run_spec(checked))

    def test_serial_pool_and_cache_replay_identical(self, no_cache_env,
                                                    tmp_path):
        specs = [
            dataclasses.replace(spec, check_invariants=True)
            for spec in _specs()
        ]
        serial = execute_runs(specs, jobs=1, use_cache=False)
        pooled = execute_runs(specs, jobs=2, use_cache=False)
        cache = ResultCache(str(tmp_path))
        stored = execute_runs(specs, jobs=1, cache=cache)
        replayed = execute_runs(specs, jobs=1, cache=cache)
        assert cache.stats()["hits"] == len(specs)
        reference = [_fields(r) for r in serial]
        for produced in (pooled, stored, replayed):
            assert [_fields(r) for r in produced] == reference

    def test_violation_propagates_from_pool_worker(self, no_cache_env,
                                                   monkeypatch):
        from repro.verify.sanitizer import InvariantViolation
        import repro.experiments.parallel as parallel_module

        def broken_run_spec(spec):
            raise InvariantViolation("iq-overflow", "boom", 7, tid=1)

        monkeypatch.setattr(parallel_module, "run_spec_fast",
                            broken_run_spec)
        with pytest.raises(InvariantViolation) as excinfo:
            execute_runs(_specs()[:1], jobs=1, use_cache=False)
        assert excinfo.value.invariant == "iq-overflow"


class TestKnobs:
    def test_default_jobs_env(self, monkeypatch):
        parallel.configure(jobs=None)
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert parallel.default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS.*garbage"):
            assert parallel.default_jobs() == 1

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        parallel.configure(jobs=2, use_cache=False)
        try:
            assert parallel.default_jobs() == 2
            assert parallel.default_use_cache() is False
        finally:
            parallel.configure(jobs=None, use_cache=None)

    def test_no_cache_env(self, monkeypatch):
        parallel.configure(use_cache=None)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert parallel.default_use_cache() is False

    def test_configured_cache_object_is_used(self, no_cache_env, tmp_path):
        # Benchmarks route an explicit ResultCache through configure()
        # instead of mutating REPRO_CACHE_DIR.  The cache starts empty
        # — and ResultCache defines __len__, so an empty cache is falsy;
        # execute_runs must not discard it for a fresh default cache.
        cache = ResultCache(str(tmp_path))
        assert len(cache) == 0
        parallel.configure(cache=cache)
        try:
            assert parallel.default_cache() is cache
            execute_runs(_specs()[:1], jobs=1)
            assert cache.stats()["stores"] == 1
            execute_runs(_specs()[:1], jobs=1)
            assert cache.stats()["hits"] == 1
        finally:
            parallel.configure(cache=None)
        assert parallel.default_cache() is None

    def test_check_invariants_env_and_configure(self, monkeypatch):
        parallel.configure(check_invariants=None)
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert parallel.default_check_invariants() is False
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert parallel.default_check_invariants() is True
        parallel.configure(check_invariants=False)
        try:
            assert parallel.default_check_invariants() is False
        finally:
            parallel.configure(check_invariants=None)


class TestProgress:
    def test_callback_sees_monotonic_completion(self, no_cache_env):
        specs = _specs()
        snapshots = []
        execute_runs(specs, jobs=1, use_cache=False,
                     progress=snapshots.append)
        # One snapshot after the (empty) cache scan, one per run.
        assert len(snapshots) == len(specs) + 1
        assert snapshots[0].completed == 0
        assert [s.completed for s in snapshots] == list(range(len(specs) + 1))
        assert all(s.total == len(specs) for s in snapshots)
        assert snapshots[-1].completed == snapshots[-1].total
        elapsed = [s.elapsed for s in snapshots]
        assert elapsed == sorted(elapsed)

    def test_callback_reports_cache_hits_on_replay(self, no_cache_env,
                                                   tmp_path):
        specs = _specs()
        cache = ResultCache(str(tmp_path))
        execute_runs(specs, jobs=1, cache=cache)
        snapshots = []
        execute_runs(specs, jobs=1, cache=cache, progress=snapshots.append)
        # Fully cached batch: a single snapshot, everything a hit.
        assert len(snapshots) == 1
        assert snapshots[0].cache_hits == len(specs)
        assert snapshots[0].completed == len(specs)
        assert snapshots[0].simulated == 0

    def test_callback_fires_from_pooled_path(self, no_cache_env):
        specs = _specs()
        snapshots = []
        execute_runs(specs, jobs=2, use_cache=False,
                     progress=snapshots.append)
        assert snapshots[-1].completed == len(specs)

    def test_configured_default_progress(self, no_cache_env):
        snapshots = []
        parallel.configure(progress=snapshots.append)
        try:
            execute_runs(_specs()[:1], jobs=1, use_cache=False)
        finally:
            parallel.configure(progress=None)
        assert snapshots and snapshots[-1].completed == 1

    def test_progress_str_and_printer(self, no_cache_env):
        progress = parallel.BatchProgress(total=6, completed=4,
                                          cache_hits=3, elapsed=1.25)
        assert str(progress) == "4/6 runs (3 cache hits, 1.2s)"
        assert progress.simulated == 1
        import io
        buf = io.StringIO()
        parallel.progress_printer(prefix="fig3: ", stream=buf)(progress)
        assert buf.getvalue() == "fig3: 4/6 runs (3 cache hits, 1.2s)\n"
