"""Tests for the persistent result cache."""

import dataclasses
import json
import os

from repro.core.config import SMTConfig
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cache_enabled_by_default,
    default_cache_dir,
    result_from_dict,
    result_key,
    result_to_dict,
)
from repro.experiments.parallel import RunSpec, execute_runs, run_spec
from repro.experiments.runner import RunBudget

TINY = RunBudget(warmup_cycles=100, measure_cycles=400,
                 functional_warmup_instructions=2000, rotations=1)
SPEC = RunSpec(config=SMTConfig(n_threads=1), rotation=0, budget=TINY)


def _entry_path(cache):
    names = [n for n in os.listdir(cache.directory) if n.endswith(".json")]
    assert len(names) == 1
    return os.path.join(cache.directory, names[0])


class TestSerialization:
    def test_round_trip_is_field_identical(self):
        result = run_spec(SPEC)
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert dataclasses.asdict(rebuilt) == dataclasses.asdict(result)

    def test_per_thread_keys_are_ints(self):
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(run_spec(SPEC))))
        )
        assert all(
            isinstance(k, int) for k in rebuilt.committed_per_thread
        )


class TestResultKey:
    def test_key_is_content_hash(self):
        key = result_key(SPEC.config, 0, TINY)
        assert key == result_key(SMTConfig(n_threads=1), 0, TINY)
        assert len(key) == 64 and int(key, 16) >= 0

    def test_extras_change_key(self):
        assert result_key(SPEC.config, 0, TINY) != result_key(
            SPEC.config, 0, TINY, extras={"dcache_mshrs": 4}
        )


class TestCacheStore:
    def test_put_get(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_spec(SPEC)
        cache.put(SPEC.key(), result)
        assert SPEC.key() in cache
        got = cache.get(SPEC.key())
        assert dataclasses.asdict(got) == dataclasses.asdict(result)

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get("0" * 64) is None

    def test_corrupted_entry_recomputed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        expected = execute_runs([SPEC], jobs=1, cache=cache)[0]
        with open(_entry_path(cache), "w") as fh:
            fh.write("{ not json at all")
        fresh = ResultCache(str(tmp_path))
        recomputed = execute_runs([SPEC], jobs=1, cache=fresh)[0]
        assert fresh.stats()["misses"] == 1
        assert dataclasses.asdict(recomputed) == dataclasses.asdict(expected)
        # The recompute repaired the entry on disk.
        assert ResultCache(str(tmp_path)).get(SPEC.key()) is not None

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        path = _entry_path(cache)
        with open(path) as fh:
            entry = json.load(fh)
        entry["result"]["committed"] = entry["result"]["committed"] + 1
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert ResultCache(str(tmp_path)).get(SPEC.key()) is None
        assert not os.path.exists(path)  # tampered entry evicted

    def test_stale_schema_version_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        path = _entry_path(cache)
        with open(path) as fh:
            entry = json.load(fh)
        entry["version"] = CACHE_SCHEMA_VERSION - 1
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert ResultCache(str(tmp_path)).get(SPEC.key()) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        assert os.listdir(cache.directory) == [f"{SPEC.key()}.json"]


class TestQuarantine:
    def test_garbage_entry_quarantined_not_raised(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        path = _entry_path(cache)
        with open(path, "w") as fh:
            fh.write("{ truncated mid-wri")
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(SPEC.key()) is None
        assert fresh.stats()["quarantined"] == 1
        assert os.path.exists(path + ".corrupt")

    def test_tampered_payload_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        path = _entry_path(cache)
        with open(path) as fh:
            entry = json.load(fh)
        entry["result"]["committed"] += 1
        with open(path, "w") as fh:
            json.dump(entry, fh)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(SPEC.key()) is None
        assert fresh.stats()["quarantined"] == 1
        assert os.path.exists(path + ".corrupt")

    def test_quarantined_entries_invisible(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        with open(_entry_path(cache), "w") as fh:
            fh.write("garbage")
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(SPEC.key()) is None
        assert len(fresh) == 0
        assert SPEC.key() not in fresh

    def test_recompute_repairs_quarantined_slot(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        expected = execute_runs([SPEC], jobs=1, cache=cache)[0]
        with open(_entry_path(cache), "w") as fh:
            fh.write("garbage")
        fresh = ResultCache(str(tmp_path))
        recomputed = execute_runs([SPEC], jobs=1, cache=fresh)[0]
        assert dataclasses.asdict(recomputed) == dataclasses.asdict(expected)
        assert fresh.get(SPEC.key()) is not None
        # The corrupt evidence survives alongside the repaired entry.
        assert any(n.endswith(".corrupt") for n in os.listdir(str(tmp_path)))

    def test_stale_version_deleted_not_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        path = _entry_path(cache)
        with open(path) as fh:
            entry = json.load(fh)
        entry["version"] = CACHE_SCHEMA_VERSION - 1
        with open(path, "w") as fh:
            json.dump(entry, fh)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(SPEC.key()) is None
        assert fresh.stats()["quarantined"] == 0
        assert not os.path.exists(path + ".corrupt")

    def test_clear_removes_quarantined_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(SPEC.key(), run_spec(SPEC))
        with open(_entry_path(cache), "w") as fh:
            fh.write("garbage")
        cache.get(SPEC.key())  # quarantines
        assert ResultCache(str(tmp_path)).clear() == 1
        assert os.listdir(str(tmp_path)) == []


class TestEnvironment:
    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)

    def test_no_cache_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert cache_enabled_by_default() is True
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_enabled_by_default() is False
