"""Tests for the sensitivity-sweep extensions."""

import io
from contextlib import redirect_stdout

from repro.experiments import sensitivity
from repro.experiments.runner import RunBudget

TINY = RunBudget(warmup_cycles=100, measure_cycles=500,
                 functional_warmup_instructions=2000, rotations=1)


class TestSweeps:
    def test_queue_size_sweep(self):
        sweep = sensitivity.queue_size_sweep(budget=TINY, sizes=(16, 32),
                                             n_threads=2)
        assert [v for v, _ in sweep] == [16, 32]
        assert all(p.ipc >= 0 for _, p in sweep)

    def test_pht_size_sweep(self):
        sweep = sensitivity.pht_size_sweep(budget=TINY, sizes=(256, 2048),
                                           n_threads=2)
        assert len(sweep) == 2

    def test_ras_depth_sweep(self):
        sweep = sensitivity.ras_depth_sweep(budget=TINY, depths=(1, 12),
                                            n_threads=2)
        assert len(sweep) == 2

    def test_mshr_sweep(self):
        sweep = sensitivity.mshr_sweep(budget=TINY, counts=(1, 16),
                                       n_threads=2)
        assert [v for v, _ in sweep] == [1, 16]

    def test_contexts_at_register_budget_skips_impossible(self):
        sweep = sensitivity.contexts_at_register_budget(
            budget=TINY, total_registers=100, thread_counts=(1, 2, 4)
        )
        # 4 threads needs > 128 architectural registers: skipped.
        assert [v for v, _ in sweep] == [1, 2]

    def test_print_sweep(self):
        sweep = sensitivity.queue_size_sweep(budget=TINY, sizes=(16,),
                                             n_threads=1)
        buf = io.StringIO()
        with redirect_stdout(buf):
            sensitivity.print_sweep("queues", sweep, " entries")
        assert "best at" in buf.getvalue()
