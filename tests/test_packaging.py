"""Repository-level checks: public API surface, examples, docs."""

import ast
import importlib
import os
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestPublicApi:
    def test_top_level_exports(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro
        assert repro.__version__

    def test_subpackages_import(self):
        for module in (
            "repro.isa", "repro.workloads", "repro.branch", "repro.memory",
            "repro.core", "repro.experiments", "repro.cli",
            "repro.core.trace", "repro.core.histograms",
            "repro.experiments.export", "repro.experiments.sensitivity",
        ):
            importlib.import_module(module)

    def test_quickstart_docstring_snippet_runs(self):
        """The README/package-docstring quickstart must stay valid."""
        from repro import SMTConfig, Simulator, standard_mix
        config = SMTConfig(n_threads=2, fetch_policy="ICOUNT",
                           fetch_threads=2, fetch_per_thread=8)
        sim = Simulator(config, standard_mix(2))
        result = sim.run(warmup_cycles=50, measure_cycles=300,
                         functional_warmup_instructions=2000)
        assert "IPC" in result.summary()


class TestExamples:
    @pytest.mark.parametrize("script", sorted(
        p.name for p in (REPO / "examples").glob("*.py")
    ))
    def test_examples_parse_and_have_main(self, script):
        source = (REPO / "examples" / script).read_text()
        tree = ast.parse(source)
        names = {n.name for n in ast.walk(tree)
                 if isinstance(n, ast.FunctionDef)}
        assert "main" in names, f"{script} lacks a main()"
        assert '__main__' in source

    def test_at_least_four_examples(self):
        assert len(list((REPO / "examples").glob("*.py"))) >= 4


class TestDocs:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
    ])
    def test_required_docs_exist(self, name):
        path = REPO / name
        assert path.exists()
        assert len(path.read_text()) > 1000

    def test_design_lists_every_figure_and_table(self):
        text = (REPO / "DESIGN.md").read_text()
        for item in ("Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                     "Table 3", "Table 4", "Table 5"):
            assert item in text, item

    def test_experiments_records_measurements(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for item in ("Figure 3", "Figure 7", "Table 5", "Section 7"):
            assert item in text, item

    def test_benchmarks_cover_every_figure_and_table(self):
        names = {p.name for p in (REPO / "benchmarks").glob("test_*.py")}
        for required in (
            "test_bench_fig3.py", "test_bench_fig4.py", "test_bench_fig5.py",
            "test_bench_fig6.py", "test_bench_fig7.py",
            "test_bench_table3.py", "test_bench_table4.py",
            "test_bench_table5.py", "test_bench_bottlenecks.py",
        ):
            assert required in names, required
