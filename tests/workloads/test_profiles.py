"""Unit tests for the workload profiles."""

import pytest

from repro.workloads.profiles import PROFILES, WorkloadProfile, profile_names


class TestSuiteComposition:
    """The paper's Section 3 workload: five FP programs, two integer
    programs, and TeX."""

    def test_eight_programs(self):
        assert len(PROFILES) == 8

    def test_paper_program_names(self):
        assert set(profile_names()) == {
            "alvinn", "doduc", "fpppp", "ora", "tomcatv",
            "espresso", "xlisp", "tex",
        }

    def test_names_match_keys(self):
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_fp_programs_have_fp_work(self):
        for name in ("alvinn", "doduc", "fpppp", "ora", "tomcatv"):
            assert PROFILES[name].frac_fp > 0.2

    def test_int_programs_have_no_fp(self):
        for name in ("espresso", "xlisp", "tex"):
            assert PROFILES[name].frac_fp == 0.0

    def test_fpppp_has_huge_blocks(self):
        """fpppp is famous for enormous basic blocks."""
        low, high = PROFILES["fpppp"].block_size
        assert low >= 20

    def test_xlisp_has_recursion_and_chase(self):
        assert PROFILES["xlisp"].recursion_depth > 12  # overflows the RAS
        assert PROFILES["xlisp"].access_pattern == "chase"

    def test_tomcatv_is_the_data_cache_offender(self):
        tomcatv = PROFILES["tomcatv"]
        assert tomcatv.hot_region >= 32 * 1024  # saturates the L1

    def test_switch_programs(self):
        for name in ("espresso", "xlisp", "tex"):
            assert PROFILES[name].switch_cases > 0


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            name="x", text_instructions=100, procedures=2,
            block_size=(2, 4), trip_count=(2, 4),
            frac_fp=0.1, frac_load=0.2, frac_store=0.1, frac_mul=0.0,
            frac_fp_div=0.0, data_branch_prob=0.5, data_branch_bias=0.7,
            dependence_density=0.5, working_set=1 << 14,
            access_pattern="seq",
        )
        kwargs.update(overrides)
        return WorkloadProfile(**kwargs)

    def test_valid_profile(self):
        assert self._base().name == "x"

    def test_working_set_power_of_two(self):
        with pytest.raises(ValueError):
            self._base(working_set=3000)

    def test_access_pattern_checked(self):
        with pytest.raises(ValueError):
            self._base(access_pattern="zigzag")

    def test_mix_fractions_bounded(self):
        with pytest.raises(ValueError):
            self._base(frac_fp=0.5, frac_load=0.4, frac_store=0.2)

    def test_frozen(self):
        profile = self._base()
        with pytest.raises(Exception):
            profile.frac_fp = 0.9
