"""Cross-layer agreement: for every workload, the timing pipeline's
committed stream must exactly prefix the functional emulator's
architectural stream (oracle/pipeline lockstep under squashes,
optimistic replays, and cache chaos)."""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.isa.emulator import Emulator
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import generate_program


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_committed_stream_prefixes_oracle(name):
    program = generate_program(PROFILES[name], seed=0)
    sim = Simulator(SMTConfig(n_threads=1), [program])
    committed = []
    sim.commit_listener = lambda uop: committed.append(uop.pc)
    sim.functional_warmup(4000)
    # The warmup advanced the architectural state; replay an oracle
    # emulator to the same point for comparison.
    oracle = Emulator(program)
    for _ in range(4000):
        oracle.step()
    for _ in range(1500):
        sim.step()
    assert len(committed) > 200, f"{name} barely progressed"
    expected = [oracle.step().pc for _ in range(len(committed))]
    assert committed == expected


@pytest.mark.parametrize("n_threads,policy", [
    (2, "ICOUNT"),
    (4, "ICOUNT"),
    (4, "RR"),
    (8, "ICOUNT"),
])
def test_multithread_committed_streams_prefix_their_oracles(
        n_threads, policy):
    """With threads competing for fetch, issue, and caches, each
    thread's committed stream must still prefix its own architectural
    oracle — squashes and fetch-policy starvation may slow a thread
    down but never corrupt or reorder its stream."""
    names = sorted(PROFILES)[:n_threads]
    programs = [
        generate_program(PROFILES[name], seed=tid)
        for tid, name in enumerate(names)
    ]
    config = SMTConfig(n_threads=n_threads, fetch_policy=policy)
    sim = Simulator(config, programs)
    committed = [[] for _ in range(n_threads)]
    sim.commit_listener = lambda uop: committed[uop.tid].append(uop.pc)
    warmup = 2000
    sim.functional_warmup(warmup)
    oracles = [Emulator(program) for program in programs]
    for oracle in oracles:
        for _ in range(warmup):
            oracle.step()
    for _ in range(1200):
        sim.step()
    assert sum(len(stream) for stream in committed) > 500
    for tid in range(n_threads):
        stream = committed[tid]
        assert stream, f"thread {tid} never committed"
        expected = [oracles[tid].step().pc for _ in range(len(stream))]
        assert stream == expected, f"thread {tid} diverged from its oracle"
