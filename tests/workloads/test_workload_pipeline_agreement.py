"""Cross-layer agreement: for every workload, the timing pipeline's
committed stream must exactly prefix the functional emulator's
architectural stream (oracle/pipeline lockstep under squashes,
optimistic replays, and cache chaos)."""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.isa.emulator import Emulator
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import generate_program


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_committed_stream_prefixes_oracle(name):
    program = generate_program(PROFILES[name], seed=0)
    sim = Simulator(SMTConfig(n_threads=1), [program])
    committed = []
    sim.commit_listener = lambda uop: committed.append(uop.pc)
    sim.functional_warmup(4000)
    # The warmup advanced the architectural state; replay an oracle
    # emulator to the same point for comparison.
    oracle = Emulator(program)
    for _ in range(4000):
        oracle.step()
    for _ in range(1500):
        sim.step()
    assert len(committed) > 200, f"{name} barely progressed"
    expected = [oracle.step().pc for _ in range(len(committed))]
    assert committed == expected
