"""Warm-image capture/restore: bit-identical to a fresh functional warmup.

The whole design of :mod:`repro.workloads.images` rests on one claim —
restoring a captured image into a fresh simulator is indistinguishable
from running functional warmup in it.  These tests hold that claim at
``SimResult`` granularity and pin the store's bookkeeping (keys, LRU
cap, kill switch, engine integration).
"""

import dataclasses

import pytest

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.experiments.parallel import (
    RunSpec,
    execute_runs,
    run_spec,
    run_spec_fast,
    shutdown_pool,
    warm_key,
)
from repro.experiments.runner import RunBudget
from repro.workloads import images
from repro.workloads.mixes import standard_mix

BUDGET = RunBudget(warmup_cycles=200, measure_cycles=1200,
                   functional_warmup_instructions=6000, rotations=1)
WARM = BUDGET.functional_warmup_instructions


@pytest.fixture(autouse=True)
def clean_store():
    images.clear()
    yield
    images.clear()


def _sim(n_threads=4, rotation=0):
    config = scheme("ICOUNT", 2, 8, n_threads=n_threads)
    return Simulator(config, standard_mix(n_threads, rotation))


def _finish(sim):
    return sim.run(warmup_cycles=BUDGET.warmup_cycles,
                   measure_cycles=BUDGET.measure_cycles,
                   functional_warmup_instructions=0)


def _fields(result):
    return dataclasses.asdict(result)


class TestCaptureRestore:
    def test_restore_equals_fresh_warmup(self):
        reference = _sim()
        reference.functional_warmup(WARM)
        image = images.capture(reference, WARM)
        restored = _sim()
        images.restore(restored, image)
        assert _fields(_finish(restored)) == _fields(_finish(reference))

    def test_one_image_serves_many_simulators(self):
        donor = _sim()
        donor.functional_warmup(WARM)
        image = images.capture(donor, WARM)
        results = []
        for _ in range(3):
            sim = _sim()
            images.restore(sim, image)
            results.append(_fields(_finish(sim)))
        assert results[0] == results[1] == results[2]

    def test_restore_rejects_started_simulator(self):
        donor = _sim()
        donor.functional_warmup(WARM)
        image = images.capture(donor, WARM)
        started = _sim()
        started.run_cycles(5)
        with pytest.raises(RuntimeError):
            images.restore(started, image)

    def test_restore_rejects_thread_count_mismatch(self):
        donor = _sim(n_threads=4)
        donor.functional_warmup(WARM)
        image = images.capture(donor, WARM)
        with pytest.raises(ValueError):
            images.restore(_sim(n_threads=8), image)


class TestStore:
    def test_warm_via_image_miss_then_hit(self):
        first = _sim()
        assert images.warm_via_image(first, "k", WARM) is False
        second = _sim()
        assert images.warm_via_image(second, "k", WARM) is True
        assert _fields(_finish(first)) == _fields(_finish(second))

    def test_lru_cap(self):
        donor = _sim()
        donor.functional_warmup(WARM)
        image = images.capture(donor, WARM)
        for i in range(images._MAX_IMAGES + 5):
            images.put(f"k{i}", image)
        assert images.size() == images._MAX_IMAGES
        assert images.lookup("k0") is None  # oldest evicted
        assert images.lookup(f"k{images._MAX_IMAGES + 4}") is not None

    def test_generation_advances_on_put(self):
        donor = _sim()
        donor.functional_warmup(WARM)
        before = images.generation()
        images.put("k", images.capture(donor, WARM))
        assert images.generation() > before

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_WARM_IMAGES", "1")
        assert not images.images_enabled()
        spec = RunSpec(scheme("ICOUNT", 2, 8, n_threads=2), 0, BUDGET)
        result = run_spec_fast(spec)
        assert images.size() == 0  # bypassed the store entirely
        assert _fields(result) == _fields(run_spec(spec))


class TestWarmKey:
    def test_timed_budget_excluded(self):
        # Runs differing only in the timed window share a warm state.
        config = scheme("ICOUNT", 2, 8, n_threads=4)
        a = RunSpec(config, 0, BUDGET)
        b = RunSpec(config, 0, dataclasses.replace(BUDGET,
                                                   measure_cycles=5000))
        assert warm_key(a) == warm_key(b)
        assert a.key() != b.key()

    def test_workload_identity_included(self):
        config = scheme("ICOUNT", 2, 8, n_threads=4)
        base = RunSpec(config, 0, BUDGET)
        assert warm_key(base) != warm_key(dataclasses.replace(base,
                                                              rotation=1))
        assert warm_key(base) != warm_key(dataclasses.replace(base, seed=7))
        other = RunSpec(scheme("RR", 2, 8, n_threads=4), 0, BUDGET)
        assert warm_key(base) != warm_key(other)


class TestEngineIntegration:
    def test_run_spec_fast_equals_reference(self):
        spec = RunSpec(scheme("ICOUNT", 2, 8, n_threads=4), 0, BUDGET)
        reference = run_spec(spec)
        cold = run_spec_fast(spec)   # image miss: warms and captures
        warm = run_spec_fast(spec)   # image hit: restores
        assert images.hits == 1 and images.misses == 1
        assert _fields(cold) == _fields(warm) == _fields(reference)

    def test_pooled_equals_serial_equals_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        specs = [RunSpec(scheme("ICOUNT", 2, 8, n_threads=2), rot, BUDGET)
                 for rot in range(3)]
        reference = [_fields(run_spec(s)) for s in specs]
        serial = execute_runs(specs, jobs=1, use_cache=False)
        pooled = execute_runs(specs, jobs=2, use_cache=False)
        shutdown_pool()
        assert [_fields(r) for r in serial] == reference
        assert [_fields(r) for r in pooled] == reference
