"""Tests for the synthetic benchmark generator."""

import pytest

from repro.isa.emulator import Emulator
from repro.isa.program import DATA_BASE
from repro.workloads.profiles import PROFILES
from repro.workloads.synthetic import (
    _AUX_CASETAB,
    _AUX_FLAGS,
    _N_FLAGS,
    generate_program,
)


@pytest.fixture(scope="module", params=sorted(PROFILES))
def generated(request):
    name = request.param
    return name, generate_program(PROFILES[name], seed=0)


class TestGeneration:
    def test_deterministic(self):
        a = generate_program(PROFILES["espresso"], seed=3)
        b = generate_program(PROFILES["espresso"], seed=3)
        assert len(a) == len(b)
        assert all(str(x) == str(y) for x, y in
                   zip(a.instructions, b.instructions))
        assert a.data.words == b.data.words

    def test_seeds_differ(self):
        a = generate_program(PROFILES["espresso"], seed=0)
        b = generate_program(PROFILES["espresso"], seed=1)
        assert any(str(x) != str(y) for x, y in
                   zip(a.instructions, b.instructions))

    def test_text_size_near_target(self, generated):
        name, program = generated
        target = PROFILES[name].text_instructions
        assert 0.8 * target <= len(program) <= 2.0 * target

    def test_runs_long_without_halting(self, generated):
        _, program = generated
        emulator = Emulator(program)
        emulator.run(max_instructions=30000)
        assert emulator.instret == 30000
        assert not emulator.halted


class TestDynamicCharacter:
    @pytest.fixture(scope="class")
    def traces(self):
        out = {}
        for name, profile in PROFILES.items():
            emulator = Emulator(generate_program(profile, seed=0))
            counts = dict(cond=0, taken=0, mem=0, fp=0, calls=0, indirect=0)
            n = 30000
            for _ in range(n):
                record = emulator.step()
                instr = record.instr
                if instr.is_cond_branch:
                    counts["cond"] += 1
                    counts["taken"] += record.taken
                if instr.is_mem:
                    counts["mem"] += 1
                if instr.is_fp:
                    counts["fp"] += 1
                if instr.is_call:
                    counts["calls"] += 1
                if instr.is_indirect:
                    counts["indirect"] += 1
            counts["n"] = n
            out[name] = counts
        return out

    def test_branch_frequencies_realistic(self, traces):
        for name, c in traces.items():
            freq = c["cond"] / c["n"]
            if name == "fpppp":
                assert freq < 0.06   # famous straight-line code
            else:
                assert 0.04 < freq < 0.30, f"{name}: {freq}"

    def test_memory_frequencies(self, traces):
        for name, c in traces.items():
            freq = c["mem"] / c["n"]
            assert 0.05 < freq < 0.45, f"{name}: {freq}"

    def test_fp_presence_matches_profile(self, traces):
        for name, c in traces.items():
            if PROFILES[name].frac_fp > 0:
                assert c["fp"] / c["n"] > 0.08, name
            else:
                assert c["fp"] == 0, name

    def test_calls_and_returns_present(self, traces):
        for name, c in traces.items():
            assert c["calls"] > 0, name

    def test_taken_fraction_realistic(self, traces):
        for name, c in traces.items():
            if c["cond"]:
                taken = c["taken"] / c["cond"]
                assert 0.35 < taken < 0.99, f"{name}: {taken}"


class TestDataInitialisation:
    def test_flags_bias(self):
        profile = PROFILES["espresso"]
        program = generate_program(profile, seed=0)
        aux = DATA_BASE + profile.working_set
        bits = [
            program.data.words[aux + _AUX_FLAGS + 8 * i] & 1
            for i in range(_N_FLAGS)
        ]
        observed = sum(bits) / len(bits)
        # 128 samples of a persistent Markov chain have high
        # variance; the check is a coarse sanity bound.
        assert abs(observed - profile.data_branch_bias) < 0.2

    def test_flags_persistence(self):
        profile = PROFILES["alvinn"]  # persistence 0.92
        program = generate_program(profile, seed=0)
        aux = DATA_BASE + profile.working_set
        bits = [
            program.data.words[aux + _AUX_FLAGS + 8 * i] & 1
            for i in range(_N_FLAGS)
        ]
        same = sum(a == b for a, b in zip(bits, bits[1:]))
        assert same / (len(bits) - 1) > 0.75

    def test_case_table_points_at_case_labels(self):
        profile = PROFILES["espresso"]
        program = generate_program(profile, seed=0)
        aux = DATA_BASE + profile.working_set
        target = program.data.words[aux + _AUX_CASETAB]
        assert program.symbols["case_0_0"] == target
        assert program.in_text(target)

    def test_chase_permutation_is_one_cycle(self):
        profile = PROFILES["xlisp"]
        program = generate_program(profile, seed=0)
        n_nodes = profile.working_set // 16
        seen = set()
        node = DATA_BASE
        for _ in range(n_nodes):
            assert node not in seen, "chase chain revisits a node early"
            seen.add(node)
            node = program.data.words[node]
        assert node == DATA_BASE  # full cycle
        assert len(seen) == n_nodes

    def test_cursor_phases_within_hot_region(self):
        for name, profile in PROFILES.items():
            program = generate_program(profile, seed=0)
            aux = DATA_BASE + profile.working_set
            for k in range(profile.procedures):
                phase = program.data.words.get(aux + 8 * k, 0)
                assert phase < profile.hot_region + 8
