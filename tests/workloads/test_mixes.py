"""Tests for the multiprogrammed mix rotation (paper Section 3)."""

import pytest

from repro.workloads.mixes import benchmark_rotation, standard_mix
from repro.workloads.profiles import profile_names


class TestRotation:
    def test_full_eight(self):
        assert benchmark_rotation(8, 0) == list(profile_names())

    def test_rotation_shifts(self):
        names = profile_names()
        assert benchmark_rotation(4, 0) == list(names[:4])
        assert benchmark_rotation(4, 1) == list(names[1:5])

    def test_wraps(self):
        names = profile_names()
        rotated = benchmark_rotation(4, 7)
        assert rotated == [names[7], names[0], names[1], names[2]]

    def test_each_run_uses_distinct_combination(self):
        combos = {tuple(benchmark_rotation(4, r)) for r in range(8)}
        assert len(combos) == 8

    def test_bad_thread_count(self):
        with pytest.raises(ValueError):
            benchmark_rotation(0, 0)
        with pytest.raises(ValueError):
            benchmark_rotation(9, 0)


class TestStandardMix:
    def test_returns_programs(self):
        programs = standard_mix(2, 0)
        assert len(programs) == 2
        assert programs[0].name == "alvinn"
        assert programs[1].name == "doduc"

    def test_caching_returns_same_objects(self):
        a = standard_mix(2, 0)
        b = standard_mix(2, 0)
        assert a[0] is b[0]

    def test_distinct_seeds_not_cached_together(self):
        a = standard_mix(1, 0, seed=0)
        b = standard_mix(1, 0, seed=1)
        assert a[0] is not b[0]
