"""The asyncio campaign server: verbs, auth, backpressure, drain.

Each test stands up a real server (event loop thread, Unix socket) and
talks to it through the sync client — the exact production stack minus
the network between machines.
"""

import socket
import threading
import time

import pytest

from repro.experiments.export import (
    SERVICE_STATS_SCHEMA,
    SERVICE_STATUS_SCHEMA,
    fabric_report_bytes,
)
from repro.sched.campaign import (
    CampaignConfig,
    campaign_report,
    status_document,
    submit_specs,
)
from repro.sched.state import load_state
from repro.sched.worker import Worker
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL_VERSION


def unix_address(handle):
    return handle.endpoints[0][1]


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached within timeout")


def drain_with_worker(directory, stub_run_fn, worker_id="w0"):
    worker = Worker(directory, worker_id=worker_id, run_fn=stub_run_fn,
                    poll_interval=0.05)
    return worker.serve(drain=True, install_signals=False)


class TestBasicVerbs:
    def test_ping_and_server_info(self, server_factory):
        handle = server_factory()
        client = ServiceClient(unix_address(handle))
        assert client.ping()["pong"] is True
        info = client.server_info()
        assert info["protocol_version"] == PROTOCOL_VERSION
        assert info["auth_required"] is False
        assert info["draining"] is False
        assert SERVICE_STATUS_SCHEMA in info["schemas"]

    def test_submit_is_idempotent_and_content_addressed(
            self, server_factory, tiny_specs):
        handle = server_factory()
        client = ServiceClient(unix_address(handle))
        config = CampaignConfig(name="svc", lease_ttl=5.0)
        first = client.submit(tiny_specs, config)
        assert (first["added"], first["total"]) == (3, 3)
        assert sorted(first["keys"]) == \
            sorted(spec.key() for spec in tiny_specs)
        again = client.submit(tiny_specs, config)
        assert again["added"] == 0
        overlap = client.submit(tiny_specs[1:], config)
        assert overlap["added"] == 0

    def test_status_matches_the_filesystem_document_builder(
            self, server_factory, tiny_specs):
        handle = server_factory()
        client = ServiceClient(unix_address(handle))
        client.submit(tiny_specs, CampaignConfig(name="svc"))
        from_socket = client.status()
        from_fs = status_document(load_state(handle.server.directory))
        assert from_socket == from_fs
        assert from_socket["schema"] == SERVICE_STATUS_SCHEMA
        assert from_socket["counts"]["pending"] == 3

    def test_cancel_pending_tasks(self, server_factory, tiny_specs):
        handle = server_factory()
        client = ServiceClient(unix_address(handle))
        client.submit(tiny_specs, CampaignConfig(name="svc"))
        keys = [tiny_specs[0].key()]
        assert client.cancel(keys) == keys
        assert client.cancel(keys) == []  # already terminal
        remaining = client.cancel()
        assert sorted(remaining) == \
            sorted(spec.key() for spec in tiny_specs[1:])
        doc = client.status()
        assert doc["counts"]["failed"] == 3
        assert all(row["failure_kind"] == "cancelled"
                   for row in doc["tasks"])

    def test_stats_document(self, server_factory, tiny_specs):
        handle = server_factory()
        client = ServiceClient(unix_address(handle))
        client.submit(tiny_specs, CampaignConfig(name="svc"))
        client.status()
        stats = client.stats()
        assert stats["schema"] == SERVICE_STATS_SCHEMA
        counters = stats["counters"]
        assert counters["submits"] == 1
        assert counters["submitted_tasks"] == 3
        assert counters["status_served"] == 1
        assert counters["followers_active"] == 0
        assert counters["follower_lag_bytes"] == 0
        assert counters["connections_total"] >= 3
        assert stats["server"]["draining"] is False

    def test_bad_submit_payloads_are_structured_errors(
            self, server_factory):
        handle = server_factory()
        client = ServiceClient(unix_address(handle), retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit([])
        assert excinfo.value.kind == "bad-request"
        with pytest.raises(ServiceError) as excinfo:
            client.submit([{"not": "a spec"}])
        assert excinfo.value.kind == "bad-request"
        with pytest.raises(ServiceError) as excinfo:
            client._request("submit", specs=[{}], config={"bogus": 1})
        assert excinfo.value.kind == "bad-request"


class TestEndToEnd:
    def test_socket_submission_report_is_byte_identical_to_filesystem(
            self, tmp_path, server_factory, tiny_specs, stub_run_fn):
        config = CampaignConfig(name="identical", lease_ttl=5.0)

        handle = server_factory()
        client = ServiceClient(unix_address(handle))
        client.submit(tiny_specs, config)
        assert drain_with_worker(handle.server.directory, stub_run_fn) == 3
        socket_bytes = client.report_bytes()

        fs_dir = str(tmp_path / "fs-camp")
        submit_specs(fs_dir, tiny_specs, config)
        assert drain_with_worker(fs_dir, stub_run_fn) == 3
        fs_bytes = fabric_report_bytes(
            campaign_report(fs_dir, run_fn=stub_run_fn))

        assert socket_bytes == fs_bytes

    def test_follow_streams_deltas_until_terminal(
            self, server_factory, tiny_specs, stub_run_fn):
        handle = server_factory(follow_poll=0.02)
        client = ServiceClient(unix_address(handle))
        client.submit(tiny_specs, CampaignConfig(name="svc",
                                                 lease_ttl=5.0))
        frames = []
        result = {}

        def watch():
            result["final"] = client.follow(on_frame=frames.append)

        follower = threading.Thread(target=watch)
        follower.start()
        drain_with_worker(handle.server.directory, stub_run_fn)
        follower.join(timeout=30)
        assert not follower.is_alive()
        document, reason = result["final"]
        assert reason == "terminal"
        assert document["all_terminal"] is True
        assert document["counts"]["done"] == 3
        # first frame is the full snapshot; at least one delta follows
        assert frames[0]["stream"] is True
        assert frames[-1]["done"] is True
        assert any("changed" in frame for frame in frames[1:])


class TestAuth:
    def test_requests_without_token_are_rejected(self, server_factory):
        handle = server_factory(token="hunter2")
        client = ServiceClient(unix_address(handle), token="", retries=2)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.kind == "auth"
        wrong = ServiceClient(unix_address(handle), token="hunter3",
                              retries=0)
        with pytest.raises(ServiceError) as excinfo:
            wrong.ping()
        assert excinfo.value.kind == "auth"
        assert handle.server.counters["auth_rejects"] == 2

    def test_matching_token_is_accepted(self, server_factory):
        handle = server_factory(token="hunter2")
        client = ServiceClient(unix_address(handle), token="hunter2")
        assert client.ping()["pong"] is True
        info = client.server_info()
        assert info["auth_required"] is True

    def test_env_token_reaches_server_and_client(self, tmp_path,
                                                 monkeypatch):
        from repro.service.server import ServerThread

        monkeypatch.setenv("REPRO_SERVE_TOKEN", "from-env")
        sock = str(tmp_path / "env.sock")
        handle = ServerThread(str(tmp_path / "camp"),
                              unix_path=sock).start()
        try:
            assert ServiceClient(sock).ping()["pong"] is True
            monkeypatch.setenv("REPRO_SERVE_TOKEN", "different")
            with pytest.raises(ServiceError):
                ServiceClient(sock, retries=0).ping()
        finally:
            handle.stop()


class TestBackpressure:
    def test_submit_over_the_inflight_limit_is_busy(
            self, server_factory, tiny_specs):
        handle = server_factory(max_inflight_submits=2)
        # Pin the counter at the limit: the next submit must be refused
        # with a structured transient error, not queued or dropped.
        handle.server._inflight_submits = 2
        client = ServiceClient(unix_address(handle), retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(tiny_specs, CampaignConfig(name="svc"))
        assert excinfo.value.kind == "busy"
        assert excinfo.value.transient
        assert handle.server.counters["busy_rejects"] == 1
        # other verbs are unaffected by submit backpressure
        assert client.ping()["pong"] is True

    def test_client_retry_rides_out_a_busy_window(
            self, server_factory, tiny_specs):
        handle = server_factory(max_inflight_submits=1)
        handle.server._inflight_submits = 1

        def release(_delay):
            handle.server._inflight_submits = 0

        client = ServiceClient(unix_address(handle), retries=2,
                               backoff=0.01, sleep=release)
        ack = client.submit(tiny_specs, CampaignConfig(name="svc"))
        assert ack["added"] == 3
        assert handle.server.counters["busy_rejects"] == 1


class TestDrain:
    def test_drain_notifies_followers_and_refuses_new_connections(
            self, tmp_path, tiny_specs, stub_run_fn):
        from repro.service.server import ServerThread

        sock = str(tmp_path / "drain.sock")
        handle = ServerThread(str(tmp_path / "camp"), unix_path=sock,
                              run_fn=stub_run_fn,
                              follow_poll=0.02).start()
        client = ServiceClient(sock)
        client.submit(tiny_specs, CampaignConfig(name="svc"))
        result = {}

        def watch():
            result["final"] = client.follow()

        follower = threading.Thread(target=watch)
        follower.start()
        wait_until(lambda: handle.server._followers)
        # No worker is draining the campaign: the follower can only end
        # because the server said so.
        handle.stop(timeout=30)
        follower.join(timeout=10)
        assert not follower.is_alive()
        _document, reason = result["final"]
        assert reason == "draining"
        # listeners are closed: a fresh connection is refused
        with pytest.raises(ServiceError):
            ServiceClient(sock, retries=0, timeout=0.5).ping()

    def test_drain_is_idempotent(self, server_factory):
        handle = server_factory()
        assert ServiceClient(unix_address(handle)).ping()["pong"] is True
        handle.stop()
        handle.stop()  # second stop must be a no-op, not a crash


class TestWireHygiene:
    def test_half_written_request_is_dropped_and_counted(
            self, server_factory):
        handle = server_factory()
        path = unix_address(handle)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.connect(path)
            sock.sendall(b'{"proto": 1, "verb": "sub')  # no newline, EOF
        client = ServiceClient(path)
        assert client.ping()["pong"] is True  # server is unharmed
        wait_until(lambda: handle.server.counters["half_frames"] == 1)

    def test_unparseable_frame_gets_structured_bad_request(
            self, server_factory):
        handle = server_factory()
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.connect(unix_address(handle))
            sock.sendall(b"this is not json\n")
            reply = sock.makefile("rb").readline()
        assert b'"bad-request"' in reply
